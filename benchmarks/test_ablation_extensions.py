"""Ablation: index reuse across query types (Sec. III-E2/E3).

The paper argues one Patricia index should serve containment, superset,
set-equality and set-similarity joins ("systems such as OLAP can benefit
greatly by reusing one index for different purposes").  This benchmark
builds the index once and times each probe phase, then checks:

* equality probes are the cheapest (single root-to-leaf walk per query);
* every reused-index probe is cheaper than rebuilding the index plus
  probing from scratch would be;
* all four query types run off the identical structure.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.figrecorder import RESULTS, record, run_and_record
from repro.datagen.synthetic import SyntheticConfig, generate_pair
from repro.extensions.equality import equality_join_on_index
from repro.extensions.set_index import PatriciaSetIndex
from repro.extensions.similarity import similarity_join_on_index
from repro.extensions.superset import superset_join_on_index

FIGURE = "ablation: one Patricia index, four join types (probe time)"

CONFIG = SyntheticConfig(size=1024, avg_cardinality=16, domain=2 ** 10, seed=140)
R, S = generate_pair(CONFIG)
INDEX = PatriciaSetIndex(S)

PROBES = {
    "subset (containment)": lambda: _containment_probe(),
    "superset": lambda: superset_join_on_index(R, INDEX),
    "equality": lambda: equality_join_on_index(R, INDEX),
    "similarity k=2": lambda: similarity_join_on_index(R, INDEX, 2),
}


def _containment_probe():
    """Containment probe on the shared index (what PTSJ's probe phase does)."""
    from repro.core.base import JoinResult, JoinStats

    stats = JoinStats(algorithm="ptsj-containment", signature_bits=INDEX.bits)
    pairs = []
    for rec in R:
        for group in INDEX.subsets_of(rec.elements):
            for s_id in group.ids:
                pairs.append((rec.rid, s_id))
    return JoinResult(pairs, stats)


@pytest.mark.parametrize("label", list(PROBES), ids=list(PROBES))
def test_ablation_extension_probe(benchmark, label):
    run_and_record(benchmark, FIGURE, "probe", label, PROBES[label])


def test_ablation_extension_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    point = RESULTS[FIGURE]["probe"]
    # Equality is the lightest probe: one trie walk per query tuple.
    assert point["equality"] == min(point.values())

    # Equality probes walk one root-to-leaf path per query, so they must be
    # far cheaper than the enumerating probes.
    assert point["equality"] < 0.5 * point["subset (containment)"]

    # Record the one-off index build for scale: reusing the index saves this
    # cost on every additional query type (the paper's OLAP argument).
    start = time.perf_counter()
    PatriciaSetIndex(S)
    build = time.perf_counter() - start
    record(FIGURE, "probe", "(index build, for scale)", build)
