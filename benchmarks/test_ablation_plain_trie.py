"""Ablation: plain binary trie (Algorithm 4 / TSJ) vs Patricia trie (PTSJ).

Sec. III-A claims Algorithm 4 "performs slower than SHJ" because
single-branch chains must all be allocated, enqueued and visited, and the
paper therefore excludes it from its empirical study.  This benchmark
keeps it in: same signature length, same data, only the trie differs.

Reproduced claims:

* TSJ visits far more trie nodes than PTSJ for the same queries;
* TSJ allocates far more index nodes (the k(b - lg k) + 2k blow-up);
* TSJ is slower than PTSJ end to end, and not faster than SHJ.
"""

from __future__ import annotations

import pytest

from benchmarks.figrecorder import RESULTS, run_and_record
from repro.bench.harness import dataset_pair
from repro.core.registry import make_algorithm
from repro.datagen.synthetic import SyntheticConfig

FIGURE = "ablation: plain trie (TSJ, paper Alg. 4) vs Patricia (PTSJ) vs SHJ"

CONFIG = SyntheticConfig(size=1024, avg_cardinality=16, domain=2 ** 12, seed=130,
                         name="|R|=2^10 c=2^4")
STATS: dict[str, object] = {}


@pytest.mark.parametrize("algorithm", ["tsj", "ptsj", "shj"])
def test_ablation_plain_trie(benchmark, algorithm):
    r, s = dataset_pair(CONFIG)

    def run():
        result = make_algorithm(algorithm).join(r, s)
        STATS[algorithm] = result.stats
        return result

    run_and_record(benchmark, FIGURE, CONFIG.name, algorithm, run)


def test_ablation_plain_trie_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    point = RESULTS[FIGURE][CONFIG.name]
    tsj_stats, ptsj_stats = STATS["tsj"], STATS["ptsj"]
    # Same output size, wildly different structure costs.
    assert tsj_stats.pairs == ptsj_stats.pairs
    assert tsj_stats.node_visits > 3 * ptsj_stats.node_visits
    assert tsj_stats.index_nodes > 3 * ptsj_stats.index_nodes
    # The paper's verdict: the plain trie loses to Patricia and to SHJ.
    assert point["tsj"] > point["ptsj"]
    assert point["tsj"] > point["shj"]
