"""Ablation: partitioning strategies for out-of-core execution.

Compares, on one workload, the three executions the repository offers for
data that exceeds memory:

* the monolithic in-memory PTSJ (baseline);
* the paper's Sec. III-E4 quadratic nested loop over disk partitions;
* the PSJ/APSJ-family pick partitioning ([11], [12]) where every
  S-partition is joined exactly once against a replicated R-partition.

Expected shape: pick partitioning loads each partition pair once, so it
beats the quadratic nested loop as the partition count grows, at the cost
of R replication (reported in the stats); both return exactly the
baseline's output.
"""

from __future__ import annotations

import pytest

from benchmarks.figrecorder import RESULTS, run_and_record
from repro.core.registry import make_algorithm
from repro.datagen.synthetic import SyntheticConfig, generate_pair
from repro.exec.disk import DiskPartitionedJoin
from repro.external.psj import PickPartitionedSetJoin

FIGURE = "ablation: out-of-core strategies (in-memory vs Sec. III-E4 nested loop vs PSJ pick partitioning)"

CONFIG = SyntheticConfig(size=2048, avg_cardinality=16, domain=2 ** 11, seed=180)
R, S = generate_pair(CONFIG)
PARTITIONS = 8
RUNS: dict[str, object] = {}


def test_psj_in_memory_baseline(benchmark):
    def run():
        result = make_algorithm("ptsj").join(R, S)
        RUNS["in-memory ptsj"] = result
        return result

    run_and_record(benchmark, FIGURE, "strategy", "in-memory ptsj", run)


def test_psj_nested_loop(benchmark):
    def run():
        result = DiskPartitionedJoin(
            algorithm="ptsj", max_tuples=len(S) // PARTITIONS
        ).join(R, S)
        RUNS["nested-loop 8x8"] = result
        return result

    run_and_record(benchmark, FIGURE, "strategy", "nested-loop 8x8", run)


@pytest.mark.parametrize("inner", ["shj", "ptsj"])
def test_psj_pick_partitioning(benchmark, inner):
    label = f"psj-{inner} (8 parts)"

    def run():
        result = PickPartitionedSetJoin(partitions=PARTITIONS, algorithm=inner).join(R, S)
        RUNS[label] = result
        return result

    run_and_record(benchmark, FIGURE, "strategy", label, run)


def test_psj_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    baseline = RUNS["in-memory ptsj"]
    for label, result in RUNS.items():
        assert result.pair_set() == baseline.pair_set(), label
    point = RESULTS[FIGURE]["strategy"]
    # One pass per S-partition beats the quadratic partition-pair loop.
    assert point["psj-ptsj (8 parts)"] < point["nested-loop 8x8"]
    # Replication factor is bounded by the partition count and > 1.
    factor = RUNS["psj-ptsj (8 parts)"].stats.extras["replication_factor"]
    assert 1.0 < factor <= PARTITIONS
