"""Fig. 6a: main-memory consumption per tuple versus set cardinality.

Paper findings reproduced here (Sec. V-C1):

* memory grows basically linearly with set cardinality for all algorithms;
* PRETTI needs by far the most memory (the paper reports ~10x; Python's
  boxed objects compress the gap, so we assert a conservative 2x over
  PRETTI+ at the top cardinality);
* PRETTI+ consumes the least of the trie-based algorithms — the Patricia
  compression pay-off that makes it "always a better choice than PRETTI".
"""

from __future__ import annotations

import pytest

from benchmarks.figrecorder import RESULTS, record
from repro.bench.experiments import ALL_ALGORITHMS, fig6c_configs
from repro.bench.harness import dataset_pair
from repro.bench.memory import memory_per_tuple

FIGURE = "fig6a: index memory per tuple vs set cardinality"
CONFIGS = fig6c_configs(base=512)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
@pytest.mark.parametrize("config", CONFIGS, ids=[c.name for c in CONFIGS])
def test_fig6a_memory(benchmark, config, algorithm):
    r, s = dataset_pair(config)
    per_tuple = benchmark.pedantic(
        lambda: memory_per_tuple(algorithm, r, s), rounds=1, iterations=1
    )
    record(FIGURE, config.name, algorithm, per_tuple, unit="bytes")
    assert per_tuple > 0


def test_fig6a_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_label = RESULTS[FIGURE]
    top = by_label["c=2^8"]
    # PRETTI is the memory hog; PRETTI+ the leanest trie algorithm.
    assert top["pretti"] == max(top.values())
    assert top["pretti"] > 2.0 * top["pretti+"]
    # Memory grows with cardinality for every algorithm (linear trend).
    for name in ALL_ALGORITHMS:
        curve = [by_label[cfg.name][name] for cfg in CONFIGS]
        assert curve == sorted(curve)
