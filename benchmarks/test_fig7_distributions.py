"""Fig. 7: skewed distributions on set cardinality and elements (Sec. V-C5).

Four panels — Poisson/Zipf applied to either the set-cardinality or the
set-element axis.  Paper findings reproduced here:

* 7a (Poisson on cardinality): PTSJ performs best across the sweep —
  the cardinality spread hurts the trie-on-elements algorithms;
* 7b (Poisson on elements): behaves like the uniform Fig. 6c — no
  significant change for any algorithm;
* 7c (Zipf on cardinality): most sets are small (the paper: median 17 at
  max 2^9), so PRETTI+ becomes the best solution on all settings;
* 7d (Zipf on elements): mild effect; PRETTI/PRETTI+ benefit slightly
  because frequent elements sit near the trie root.
"""

from __future__ import annotations

import pytest

from benchmarks.figrecorder import RESULTS, run_and_record
from repro.bench.experiments import ALL_ALGORITHMS, fig7_configs
from repro.bench.harness import dataset_pair
from repro.core.registry import make_algorithm

PANELS = {
    "fig7a: poisson on set cardinality": fig7_configs("cardinality", "poisson", base=1024),
    "fig7b: poisson on set elements": fig7_configs("element", "poisson", base=1024),
    "fig7c: zipf on set cardinality (x = max c)": fig7_configs("cardinality", "zipf", base=1024),
    "fig7d: zipf on set elements": fig7_configs("element", "zipf", base=1024),
}

CASES = [(figure, config) for figure, configs in PANELS.items() for config in configs]


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
@pytest.mark.parametrize(
    "figure,config", CASES,
    ids=[f"{fig[:5]}-{cfg.name}" for fig, cfg in CASES],
)
def test_fig7_distributions(benchmark, figure, config, algorithm):
    r, s = dataset_pair(config)
    run_and_record(
        benchmark, figure, config.name, algorithm,
        lambda: make_algorithm(algorithm).join(r, s),
    )


def test_fig7_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # 7c: Zipf cardinality -> mostly tiny sets -> PRETTI+ wins everywhere
    # (10% noise allowance: at the smallest max-c the PTSJ point can tie).
    zipf_card = RESULTS["fig7c: zipf on set cardinality (x = max c)"]
    for label, point in zipf_card.items():
        assert point["pretti+"] <= 1.1 * min(point.values()), label
        assert point["pretti+"] < point["pretti"], label

    # 7a: Poisson cardinality at the top of the sweep: the signature
    # algorithms (led by PTSJ) beat PRETTI, which suffers most.
    poisson_card = RESULTS["fig7a: poisson on set cardinality"]
    top = poisson_card["c=2^7"]
    assert top["ptsj"] < top["pretti"]

    # A paper contribution wins — or ties within 20% — at every point of
    # every panel.  (At low cardinality PRETTI and PRETTI+ converge: the
    # Patricia trie degenerates towards the plain trie, so hair-thin
    # PRETTI "wins" there are measurement noise, not a regime change.)
    for figure, by_label in RESULTS.items():
        if not figure.startswith("fig7"):
            continue
        for label, point in by_label.items():
            best = min(point.values())
            contribution_best = min(point["ptsj"], point["pretti+"])
            assert contribution_best <= 1.5 * best, (figure, label, point)
