"""Table III: statistics of the four real-world dataset surrogates.

The paper's Table III reports |R|, average c, median c and d for flickr,
orkut, twitter and webbase.  The surrogates are scaled down (DESIGN.md §3)
but must preserve the published *shape*: the cardinality ordering
flickr < orkut < twitter < webbase, each dataset's mean/median ratio, the
pruning minima, and twitter's anomalously small domain.
"""

from __future__ import annotations

import pytest

from benchmarks.figrecorder import record
from repro.bench.experiments import fig8_datasets
from repro.datagen.realworld import SURROGATE_SPECS
from repro.relations.stats import compute_stats

DATASETS = fig8_datasets(base=192, seed=3)


@pytest.mark.parametrize("name,r,s", DATASETS, ids=[d[0] for d in DATASETS])
def test_table3_shape(benchmark, name, r, s):
    stats = benchmark.pedantic(lambda: compute_stats(r), rounds=1, iterations=1)
    spec = SURROGATE_SPECS[name]
    record("table3: avg set cardinality (paper: 5.36 / 57.2 / 66.0 / 462.6)",
           name, "avg c", stats.avg_cardinality, unit="plain")
    assert stats.min_cardinality >= spec.min_cardinality
    assert abs(stats.avg_cardinality - spec.mean_cardinality) < 0.3 * spec.mean_cardinality
    assert abs(stats.median_cardinality - spec.median_cardinality) <= max(
        3.0, 0.3 * spec.median_cardinality
    )


def test_table3_cardinality_ordering(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    means = [compute_stats(r).avg_cardinality for _, r, _ in DATASETS]
    assert means == sorted(means)


def test_table3_twitter_domain_small(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    twitter_stats = compute_stats(DATASETS[2][1])
    webbase_stats = compute_stats(DATASETS[3][1])
    assert twitter_stats.domain_cardinality < webbase_stats.domain_cardinality
    assert twitter_stats.domain_cardinality < 20 * twitter_stats.avg_cardinality


def test_table3_relative_sizes(benchmark):
    """|flickr| : |orkut| : |twitter| : |webbase| = 21 : 10.9 : 2.2 : 1."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sizes = [len(r) for _, r, _ in DATASETS]
    assert sizes == sorted(sizes, reverse=True)
    assert sizes[0] / sizes[3] == pytest.approx(3_550_000 / 169_000, rel=0.05)
