"""Fig. 6b: scalability with respect to domain cardinality (Sec. V-C2).

Paper findings reproduced here:

* signature-based algorithms (SHJ, PTSJ) are *insensitive* to domain
  cardinality — they operate in signature space;
* IR-based algorithms (PRETTI, PRETTI+) get *faster* as the domain grows,
  because inverted lists shorten and list intersections cheapen.
"""

from __future__ import annotations

import pytest

from benchmarks.figrecorder import RESULTS, run_and_record
from repro.bench.experiments import ALL_ALGORITHMS, fig6b_configs
from repro.bench.harness import dataset_pair
from repro.core.registry import make_algorithm

FIGURE = "fig6b: join time vs domain cardinality"
CONFIGS = fig6b_configs(base=1024)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
@pytest.mark.parametrize("config", CONFIGS, ids=[c.name for c in CONFIGS])
def test_fig6b_domain(benchmark, config, algorithm):
    r, s = dataset_pair(config)
    run_and_record(
        benchmark, FIGURE, config.name, algorithm,
        lambda: make_algorithm(algorithm).join(r, s),
    )


def test_fig6b_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_label = RESULTS[FIGURE]

    def half_means(name: str) -> tuple[float, float]:
        curve = [by_label[cfg.name][name] for cfg in CONFIGS]
        mid = len(curve) // 2
        return sum(curve[:mid]) / mid, sum(curve[-mid:]) / mid

    # PRETTI+ improves with a larger domain (shorter inverted lists);
    # comparing half-means keeps the check robust to per-point noise.
    small_d, large_d = half_means("pretti+")
    assert large_d < 0.9 * small_d, "pretti+"
    # PRETTI shows the same trend in the paper's Java implementation; in
    # pure Python its cost is bound by per-trie-node interpreter overhead
    # (which grows slightly with d as prefix sharing drops), not by list
    # merges, so we only assert it does not blow up.  See EXPERIMENTS.md.
    small_d, large_d = half_means("pretti")
    assert large_d < 1.5 * small_d, "pretti"
    # Signature algorithms stay within noise (no systematic blow-up).
    for name in ("shj", "ptsj"):
        small_d, large_d = half_means(name)
        assert large_d < 2.0 * small_d, name
