"""Table I: the paper's worked example, as a sanity benchmark.

Verifies every algorithm returns the published result
{(u1, p1), (u1, p2), (u2, p3)} and measures the (trivial) cost, so the
bench suite fails loudly if the build is miswired before the long runs.
"""

from __future__ import annotations

import pytest

from repro.core.registry import make_algorithm
from repro.relations.relation import Relation

PROFILES = Relation.from_sets([{1, 3, 5, 6}, {0, 2, 7}, {0, 2, 3}], name="profiles")
PREFERENCES = Relation.from_sets([{1, 3}, {1, 5, 6}, {0, 2, 7}], name="preferences")
EXPECTED = {(0, 0), (0, 1), (1, 2)}


@pytest.mark.parametrize("algorithm", ["shj", "pretti", "ptsj", "pretti+", "tsj"])
def test_table1(benchmark, algorithm):
    def run():
        return make_algorithm(algorithm).join(PROFILES, PREFERENCES)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.pair_set() == EXPECTED
