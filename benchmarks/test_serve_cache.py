"""Bench gate: a resident index must make warm probes much cheaper.

The join server's reason to exist is the build-once/probe-many
asymmetry: the first ``probe`` request for an S pays plan + index build
+ probe, every later request against the same resident index (via the
``s_ref`` handle from the first reply) pays probe alone.  This gate
drives a real server over a socket and requires the warm-probe p50 to
be at least 5x better than the cold build+probe — if a refactor ever
makes the cache miss (fingerprint instability, key drift, eviction
bug), the warm path degrades to the cold path and this gate fails long
before a production trace would show it.

Server-side request seconds are compared (the reply's ``seconds``
field), so the gate measures the serving path — framing, admission,
governance install, cache, probe — without client-side socket noise.
"""

from __future__ import annotations

import statistics

from repro.bench.harness import dataset_pair
from repro.datagen.synthetic import SyntheticConfig
from repro.relations.relation import Relation
from repro.serve import JoinClient, JoinServer

#: A build-heavy S (large, high cardinality) against a tiny probe R: the
#: regime the serving layer exists for.
S_CONFIG = SyntheticConfig(size=3000, avg_cardinality=24, domain=2 ** 9,
                           seed=421, name="serve-cache S")
PROBE_RECORDS = 16
WARM_REPEATS = 9

#: Required cold/warm advantage.  The build scans 3000 records and the
#: warm probe scans 16, so the structural ratio is far larger; 5x keeps
#: headroom for socket and framing overhead on slow CI machines.
MIN_SPEEDUP = 5.0


def test_cached_probe_p50_at_least_5x_better_than_cold():
    _, s = dataset_pair(S_CONFIG)
    r = Relation((rec for rec in list(s)[:PROBE_RECORDS]), name="probe-r")

    with JoinServer(cache_capacity=4) as server:
        with JoinClient(address=server.address) as client:
            cold = client.probe(r, s, algorithm="ptsj")
            assert cold["cache_hit"] is False
            warm_seconds = []
            for _ in range(WARM_REPEATS):
                warm = client.probe(r, s_ref=cold["s_key"], algorithm="ptsj")
                assert warm["cache_hit"] is True
                assert warm["pairs"] == cold["pairs"]
                warm_seconds.append(warm["seconds"])
            # Re-shipping the full S payload must still hit the resident
            # index (content fingerprinting, not handles, is the keying).
            refetch = client.probe(r, s, algorithm="ptsj")
            assert refetch["cache_hit"] is True
        snapshot = server.registry.snapshot()

    cold_seconds = cold["seconds"]
    warm_p50 = statistics.median(warm_seconds)
    speedup = cold_seconds / warm_p50
    print(f"\nserve-cache gate: cold={cold_seconds * 1e3:.2f}ms "
          f"warm p50={warm_p50 * 1e3:.2f}ms speedup={speedup:.1f}x "
          f"(gate >= {MIN_SPEEDUP}x)")
    assert snapshot["cache.hits"] == WARM_REPEATS + 1  # handles + the re-ship
    assert snapshot["cache.misses"] == 1
    assert speedup >= MIN_SPEEDUP, (
        f"resident index only {speedup:.1f}x faster than cold build+probe "
        f"(cold {cold_seconds:.4f}s, warm p50 {warm_p50:.4f}s); the cache "
        "is not delivering the build-once/probe-many asymmetry"
    )
