"""Fig. 6c: scalability with respect to set cardinality (Sec. V-C3).

The paper's central regime plot.  Findings reproduced here:

* below c ~ 2^5 PRETTI+ is the best algorithm;
* above the crossover PTSJ takes over;
* PRETTI degrades worst with growing cardinality (it loses to PRETTI+
  everywhere and by an order of magnitude at c = 2^8);
* at every point one of the paper's two contributions (PTSJ / PRETTI+)
  is the overall winner.
"""

from __future__ import annotations

import pytest

from benchmarks.figrecorder import RESULTS, run_and_record
from repro.bench.experiments import ALL_ALGORITHMS, fig6c_configs
from repro.bench.harness import dataset_pair
from repro.core.registry import make_algorithm

FIGURE = "fig6c: join time vs set cardinality"
CONFIGS = fig6c_configs()  # default base 2^11, domain 2^9


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
@pytest.mark.parametrize("config", CONFIGS, ids=[c.name for c in CONFIGS])
def test_fig6c_setcard(benchmark, config, algorithm):
    r, s = dataset_pair(config)
    run_and_record(
        benchmark, FIGURE, config.name, algorithm,
        lambda: make_algorithm(algorithm).join(r, s),
    )


def test_fig6c_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_label = RESULTS[FIGURE]
    low, high = by_label["c=2^2"], by_label["c=2^8"]
    # Low cardinality: PRETTI+ decisively beats the signature methods and
    # stays within noise of PRETTI (the two converge when sets are tiny —
    # the paper's Fig. 6c curves overlap at c=2^2 too).
    assert low["pretti+"] < low["ptsj"]
    assert low["pretti+"] < low["shj"]
    assert low["pretti+"] <= 1.5 * min(low.values())
    # Mid-low cardinality: PRETTI+ is the outright winner.
    mid = by_label["c=2^4"]
    assert mid["pretti+"] == min(mid.values())
    # High cardinality: PTSJ is the best choice.
    assert high["ptsj"] == min(high.values())
    # PRETTI degrades hardest: order-of-magnitude slower than PTSJ at 2^8.
    assert high["pretti"] > 4.0 * high["ptsj"]
    # A paper contribution wins — or ties within 50% — at every
    # cardinality (at c=2^2 PRETTI and PRETTI+ converge; see above).
    for config in CONFIGS:
        point = by_label[config.name]
        contribution_best = min(point["ptsj"], point["pretti+"])
        assert contribution_best <= 1.5 * min(point.values()), config.name
