"""Benchmark: ParallelJoin builds the S-index exactly once.

Before the prepared-index split, partition-parallel execution rebuilt the
index over ``S`` once per chunk, so k chunks paid k builds.  Now the
parent prepares one :class:`~repro.core.base.PreparedIndex` and workers
only probe it.  This benchmark measures the chunked run against the
monolithic join and *asserts* the single-build property: the index build
counter is monkey-counted during the measured run, and the reported build
time stays that of one ``prepare`` however many chunks execute.
"""

from __future__ import annotations

import pytest

from benchmarks.figrecorder import RESULTS, run_and_record
from repro.bench.harness import dataset_pair
from repro.core.ptsj import PTSJ
from repro.core.registry import make_algorithm
from repro.datagen.synthetic import SyntheticConfig
from repro.exec.parallel import ParallelJoin

FIGURE = "ablation: one index build across parallel chunks"

CONFIG = SyntheticConfig(size=1024, avg_cardinality=32, domain=2 ** 9, seed=171,
                         name="|R|=2^10 c=2^5")

#: Build counts observed per benchmarked variant.
BUILD_COUNTS: dict[str, int] = {}


@pytest.fixture
def counted_prepare(monkeypatch):
    """Count PTSJ._prepare invocations for the duration of a test."""
    counts = {"n": 0}
    original = PTSJ._prepare

    def counting(self, s, probe_hint=None):
        counts["n"] += 1
        return original(self, s, probe_hint)

    monkeypatch.setattr(PTSJ, "_prepare", counting)
    return counts


def test_monolithic_baseline(benchmark, counted_prepare):
    r, s = dataset_pair(CONFIG)

    def run():
        result = make_algorithm("ptsj").join(r, s)
        BUILD_COUNTS["ptsj"] = counted_prepare["n"]
        return result

    run_and_record(benchmark, FIGURE, CONFIG.name, "ptsj", run)


@pytest.mark.parametrize("chunks", [4, 16])
def test_chunked_builds_once(benchmark, counted_prepare, chunks):
    r, s = dataset_pair(CONFIG)
    label = f"parallel-ptsj ({chunks} chunks)"

    def run():
        counted_prepare["n"] = 0
        result = ParallelJoin(algorithm="ptsj", workers=1, chunks=chunks).join(r, s)
        assert counted_prepare["n"] == 1, "index must be prepared exactly once"
        assert result.stats.extras["index_builds"] == 1
        BUILD_COUNTS[label] = counted_prepare["n"]
        return result

    run_and_record(benchmark, FIGURE, CONFIG.name, label, run)


def test_build_once_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for label, count in BUILD_COUNTS.items():
        assert count >= 1, label
    assert BUILD_COUNTS["parallel-ptsj (4 chunks)"] == 1
    assert BUILD_COUNTS["parallel-ptsj (16 chunks)"] == 1
    point = RESULTS[FIGURE][CONFIG.name]
    # With the build amortised, heavy chunking stays close to monolithic:
    # chunk overhead is probe bookkeeping only, not repeated index builds.
    assert point["parallel-ptsj (16 chunks)"] < 3.0 * point["ptsj"]
