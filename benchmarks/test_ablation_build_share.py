"""Ablation: index-build share of total runtime (Sec. V-A3).

The paper reports that index construction is a negligible share of SHJ's
and PTSJ's runtime (< 1% and < 5% respectively) but dominates PRETTI's
(> 70%) and is substantial for PRETTI+ (> 20%).  Thresholds shift at this
reproduction's scale, so the assertions target the *ordering*: the
IR-based algorithms spend a much larger fraction of their time building
indexes than the signature-based ones do.
"""

from __future__ import annotations

import pytest

from benchmarks.figrecorder import record, run_and_record
from repro.bench.experiments import ALL_ALGORITHMS
from repro.core.registry import make_algorithm
from repro.datagen.synthetic import SyntheticConfig, generate_pair

FIGURE = "ablation: total join time (build-share experiment)"
FIGURE_FRACTION = "ablation: index-build fraction of runtime (paper Sec. V-A3)"

CONFIG = SyntheticConfig(size=2048, avg_cardinality=16, domain=2 ** 11, seed=160)
R, S = generate_pair(CONFIG)
FRACTIONS: dict[str, float] = {}


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_ablation_build_share(benchmark, algorithm):
    def run():
        result = make_algorithm(algorithm).join(R, S)
        FRACTIONS[algorithm] = result.stats.build_fraction
        return result

    run_and_record(benchmark, FIGURE, "total time", algorithm, run)
    record(FIGURE_FRACTION, "build fraction", algorithm, FRACTIONS[algorithm], unit="plain")


def test_ablation_build_share_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Signature joins barely notice index construction...
    assert FRACTIONS["ptsj"] < 0.35
    assert FRACTIONS["shj"] < 0.35
    # ...while the IR joins' trie + inverted index dominate their runtime.
    assert FRACTIONS["pretti"] > FRACTIONS["ptsj"]
    assert FRACTIONS["pretti+"] > FRACTIONS["shj"]
