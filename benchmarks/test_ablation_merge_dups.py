"""Ablation: the merge-identical-sets extension (Sec. III-E1).

"Maintaining a mapping list of tuples that have the same set elements ...
works well without introducing noticeable overhead while creating the
trie, and saves quite some comparisons while performing joins, especially
for real-world datasets."

The flickr surrogate is duplicate-heavy (low-cardinality Zipf tags repeat
whole sets, like real photo-tag data), making it the paper's motivating
case.  Reproduced claims: identical output, significantly fewer exact set
verifications with merging on, and no meaningful build-time overhead.
"""

from __future__ import annotations

import pytest

from benchmarks.figrecorder import RESULTS, run_and_record
from repro.core.ptsj import PTSJ
from repro.datagen.realworld import flickr_surrogate

FIGURE = "ablation: PTSJ merge-identical-sets on/off (duplicate-heavy flickr shape)"

R = flickr_surrogate(size=2500, seed=40)
S = flickr_surrogate(size=2500, seed=41)
STATS: dict[str, object] = {}


@pytest.mark.parametrize("merge", [True, False], ids=["merge-on", "merge-off"])
def test_ablation_merge(benchmark, merge):
    label = "merge-on" if merge else "merge-off"

    def run():
        result = PTSJ(merge_identical=merge).join(R, S)
        STATS[label] = result.stats
        return result

    run_and_record(benchmark, FIGURE, "flickr-2500", label, run)


def test_ablation_merge_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    on, off = STATS["merge-on"], STATS["merge-off"]
    assert on.pairs == off.pairs
    # Duplicated sets collapse into groups: one comparison settles many ids.
    assert on.verifications < 0.8 * off.verifications
    # No noticeable index-build overhead (allow generous 1.5x noise).
    assert on.build_seconds < 1.5 * off.build_seconds + 0.05
