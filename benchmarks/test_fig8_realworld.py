"""Fig. 8: algorithm comparison on real-world dataset (surrogates).

The paper plots, per dataset, each algorithm's running time as a ratio of
the best algorithm's.  Findings reproduced here:

* flickr / orkut (low-to-medium cardinality): PRETTI+ is the clear winner
  and signature methods trail;
* twitter (medium cardinality): PTSJ wins;
* webbase (high cardinality): PTSJ beats both PRETTI variants.  One
  honest deviation at this scale: the paper's 9.7x SHJ deficit on webbase
  is driven by |S| = 169k (per-probe hash-bucket scans grow linearly in
  |S|); on a 320-tuple surrogate SHJ's bucket scans are still trivial, so
  SHJ remains within ~2x of PTSJ.  The |S|-scaling mechanism itself is
  demonstrated by Figs. 6d-f.

Absolute sizes are scaled down (webbase base 320, others proportional per
Table III); the ratio chart is the reproduction target.
"""

from __future__ import annotations

import pytest

from benchmarks.figrecorder import RESULTS, run_and_record
from repro.bench.experiments import ALL_ALGORITHMS, fig8_datasets
from repro.core.registry import make_algorithm

FIGURE = "fig8: time over best algorithm per dataset (paper: PRETTI+ wins flickr/orkut, PTSJ wins twitter/webbase)"

DATASETS = fig8_datasets(base=320, seed=7)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
@pytest.mark.parametrize(
    "name,r,s", DATASETS, ids=[d[0] for d in DATASETS]
)
def test_fig8_realworld(benchmark, name, r, s, algorithm):
    # Median of 3 rounds: the smaller surrogates (twitter, webbase) are
    # noisy enough at this scale that single-shot rankings can flip.
    run_and_record(
        benchmark, FIGURE, name, algorithm,
        lambda: make_algorithm(algorithm).join(r, s),
        rounds=3,
    )
    # Tag the figure as a ratio chart (Fig. 8's y-axis).
    from benchmarks.figrecorder import UNITS

    UNITS[FIGURE] = "ratio"


def test_fig8_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_label = RESULTS[FIGURE]
    # Low-cardinality datasets: PRETTI+ wins (10% noise allowance against
    # PRETTI, which converges with it on tiny sets) and decisively beats
    # the signature methods.
    for dataset in ("flickr", "orkut"):
        point = by_label[dataset]
        assert point["pretti+"] <= 1.1 * min(point.values()), dataset
        assert point["pretti+"] < 0.8 * point["shj"], dataset
        assert point["pretti+"] < 0.8 * point["ptsj"], dataset
    # Twitter (medium cardinality): PTSJ is the best algorithm (10% noise
    # allowance against SHJ, the only close competitor at this scale).
    twitter = by_label["twitter"]
    assert twitter["ptsj"] <= 1.1 * min(twitter.values())
    assert twitter["ptsj"] < twitter["pretti"]
    assert twitter["ptsj"] < twitter["pretti+"]
    # Webbase (high cardinality): PTSJ beats PRETTI and stays competitive
    # with the best (see the module docstring for why SHJ's paper-scale
    # 9.7x deficit needs |S| ~ 169k to materialise; PRETTI+ also trails
    # PTSJ only once per-partition trie sizes grow beyond this surrogate).
    webbase = by_label["webbase"]
    assert webbase["ptsj"] < webbase["pretti"]
    assert webbase["ptsj"] <= 3.0 * min(webbase.values())
