"""Bench gate: the numpy kernel must beat the python kernel by >= 2x.

The batch signature filter (``filter_subset_batch`` over a relation-wide
:class:`~repro.kernels.base.SignaturePack`) is the numpy backend's whole
reason to exist: one vectorized ``(n, words)`` uint64 bit-op per probe
instead of ``n`` arbitrary-precision Python int ops.  This gate times
both backends on the paper's Fig. 6 workload shape — a few thousand
moderately-dense sets over a 2^9 domain, the default-size regime of the
scalability experiments — and fails if the vectorized path stops paying
for itself (a packing regression, an accidental per-row Python loop, a
dtype change that silently falls back to object arrays).

Parity rides along: both backends must admit identical rows for every
probe before any timing counts.

Skipped (not failed) on hosts without numpy — the gate is about the
numpy backend, and the forced-python CI leg proves the fallback path
separately.
"""

from __future__ import annotations

from time import perf_counter

import pytest

from repro.bench.harness import dataset_pair
from repro.datagen.synthetic import SyntheticConfig
from repro.kernels import available_backends, get_backend
from repro.signatures import ModuloScheme

#: Fig. 6 default shape: |S| in the thousands, ~16 elements per set,
#: domain 2^9.  512 signature bits = 8 packed uint64 words per row.
S_CONFIG = SyntheticConfig(size=4000, avg_cardinality=16, domain=2 ** 9,
                           seed=607, name="kernel-speedup S")
BITS = 512
PROBES = 200
REPEATS = 3

#: Required python/numpy advantage.  The structural ratio (per-row
#: Python big-int ops vs one vectorized matrix op) is an order of
#: magnitude; 2x keeps headroom for slow or loaded CI machines.
MIN_SPEEDUP = 2.0


@pytest.mark.skipif("numpy" not in available_backends(),
                    reason="numpy backend not available on this host")
def test_numpy_batch_filter_at_least_2x_python():
    _, s = dataset_pair(S_CONFIG)
    scheme = ModuloScheme(BITS)
    signatures = [scheme.signature(rec.elements) for rec in s]
    probe_sigs = [scheme.signature(rec.elements)
                  for rec in list(s)[:PROBES]]

    def run(backend_name: str) -> tuple[float, list[list[int]]]:
        backend = get_backend(backend_name)
        pack = backend.pack_signatures(signatures, BITS)
        best = float("inf")
        rows: list[list[int]] = []
        for _ in range(REPEATS):
            start = perf_counter()
            rows = [backend.filter_subset_batch(pack, sig)
                    for sig in probe_sigs]
            best = min(best, perf_counter() - start)
        return best, rows

    python_seconds, python_rows = run("python")
    numpy_seconds, numpy_rows = run("numpy")

    assert numpy_rows == python_rows, (
        "backends disagree on admitted rows; timing a broken kernel is "
        "meaningless (see docs/KERNELS.md parity contract)"
    )
    assert any(python_rows), "degenerate workload: no probe admitted any row"

    speedup = python_seconds / numpy_seconds
    print(f"\nkernel gate: python={python_seconds * 1e3:.1f}ms "
          f"numpy={numpy_seconds * 1e3:.1f}ms speedup={speedup:.1f}x "
          f"(gate >= {MIN_SPEEDUP}x; {len(signatures)} rows x {PROBES} probes "
          f"at {BITS} bits)")
    assert speedup >= MIN_SPEEDUP, (
        f"numpy batch filter only {speedup:.1f}x faster than python "
        f"(python {python_seconds:.4f}s, numpy {numpy_seconds:.4f}s) on "
        f"{len(signatures)} x {BITS}-bit rows; the vectorized path is not "
        "paying for itself"
    )
