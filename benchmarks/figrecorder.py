"""Figure recorder shared by all benchmark files.

Lives in its own module (not ``conftest.py``) so the test modules and the
pytest-registered conftest see the *same* module instance: pytest imports
``conftest.py`` through its own loader, and a ``from benchmarks.conftest
import ...`` in a test would otherwise create a second copy with its own
(empty) result store.
"""

from __future__ import annotations

import gc
from collections import OrderedDict

from repro.bench.reporting import fmt_bytes, fmt_seconds, format_ratios, format_series

__all__ = ["RESULTS", "UNITS", "record", "run_and_record", "render_figures"]

#: figure -> x-label -> algorithm -> measured value (seconds or bytes).
RESULTS: "OrderedDict[str, OrderedDict[str, OrderedDict[str, float]]]" = OrderedDict()

#: figure -> unit: "seconds" (default), "bytes", "ratio" or "plain".
UNITS: dict[str, str] = {}


def record(figure: str, label: str, algorithm: str, value: float, unit: str = "seconds") -> None:
    """Register one measured point of a paper figure."""
    UNITS.setdefault(figure, unit)
    if unit != "seconds":
        UNITS[figure] = unit
    RESULTS.setdefault(figure, OrderedDict()).setdefault(label, OrderedDict())[algorithm] = value


def run_and_record(benchmark, figure: str, label: str, algorithm: str, fn,
                   rounds: int = 1) -> None:
    """Benchmark ``fn`` (pedantic, ``rounds`` rounds) and record the median.

    The paper runs each point 10 times in Java; a single round is the right
    trade-off for pure Python where each point costs 0.1-15 s and variance
    is small relative to the order-of-magnitude effects under study.

    The cyclic GC is suspended around the measured call: every figure's
    module-level datasets stay live for the whole session, so gen-2
    collections otherwise charge multi-hundred-millisecond pauses to
    whichever (allocation-heavy) algorithm happens to trigger them.
    """

    def presweep():
        # Runs untimed before the measured round: sweep garbage left by
        # earlier figures, then keep the collector out of the measurement.
        gc.collect()
        gc.disable()

    try:
        benchmark.pedantic(fn, setup=presweep, rounds=rounds, iterations=1)
    finally:
        gc.enable()
    record(figure, label, algorithm, benchmark.stats.stats.median)


def render_figures() -> list[str]:
    """Format every recorded figure as an ASCII series table."""
    blocks: list[str] = []
    for figure, by_label in RESULTS.items():
        labels = list(by_label)
        algorithms: list[str] = []
        for algos in by_label.values():
            for name in algos:
                if name not in algorithms:
                    algorithms.append(name)
        series = {
            name: [by_label[label].get(name) for label in labels]
            for name in algorithms
        }
        unit = UNITS.get(figure, "seconds")
        if unit == "bytes":
            blocks.append(format_series(figure, "config", labels, series,
                                        value_format=fmt_bytes))
        elif unit == "ratio":
            blocks.append(format_ratios(figure, labels, series))
        elif unit == "plain":
            blocks.append(format_series(figure, "config", labels, series,
                                        value_format=lambda v: f"{v:.2f}"))
        else:
            blocks.append(format_series(figure, "config", labels, series,
                                        value_format=fmt_seconds))
    return blocks
