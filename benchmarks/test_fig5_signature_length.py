"""Fig. 5: PTSJ performance versus signature length (Sec. V-B).

The paper varies the ratio b/c over {2..64} while sweeping, one at a time,
domain cardinality (5a), set cardinality (5b) and relation size (5c), and
finds the best performance at ratios 16-32 — validating the Sec. III-D
selection strategy.  These benchmarks reproduce all three panels at reduced
scale and assert the paper's headline claims:

* very short signatures (ratio 2) are never the best point (5b shape);
* the strategy's default ratio is within 3x of the measured optimum;
* domain cardinality barely affects the optimal ratio (5a conclusion).
"""

from __future__ import annotations

import pytest

from benchmarks.figrecorder import RESULTS, run_and_record
from repro.bench.experiments import SIGNATURE_RATIOS, fig5a_grid, fig5b_grid, fig5c_grid
from repro.bench.harness import dataset_pair
from repro.core.ptsj import PTSJ

GRID_A = fig5a_grid(base=512)
GRID_B = fig5b_grid(base=512)
GRID_C = fig5c_grid(base=512)


def _bits_for(ratio: int, config) -> int:
    return min(max(ratio * config.avg_cardinality, 8), config.domain)


def _bench_panel(benchmark, figure: str, label: str, config, ratio: int) -> None:
    r, s = dataset_pair(config)
    bits = _bits_for(ratio, config)
    run_and_record(
        benchmark, figure, f"b/c={ratio}", label,
        lambda: PTSJ(bits=bits).join(r, s),
    )


@pytest.mark.parametrize("ratio", SIGNATURE_RATIOS)
@pytest.mark.parametrize("label,config", GRID_A, ids=[g[0] for g in GRID_A])
def test_fig5a_domain_cardinality(benchmark, label, config, ratio):
    _bench_panel(benchmark, "fig5a: PTSJ time vs b/c (domain sweep)", label, config, ratio)


@pytest.mark.parametrize("ratio", SIGNATURE_RATIOS)
@pytest.mark.parametrize("label,config", GRID_B, ids=[g[0] for g in GRID_B])
def test_fig5b_set_cardinality(benchmark, label, config, ratio):
    _bench_panel(benchmark, "fig5b: PTSJ time vs b/c (cardinality sweep)", label, config, ratio)


@pytest.mark.parametrize("ratio", SIGNATURE_RATIOS)
@pytest.mark.parametrize("label,config", GRID_C, ids=[g[0] for g in GRID_C])
def test_fig5c_relation_size(benchmark, label, config, ratio):
    _bench_panel(benchmark, "fig5c: PTSJ time vs b/c (relation-size sweep)", label, config, ratio)


def _panel_series(figure: str) -> dict[str, dict[int, float]]:
    """Recorded timings as {dataset_label: {ratio: seconds}}."""
    by_label = RESULTS.get(figure, {})
    out: dict[str, dict[int, float]] = {}
    for ratio_label, algos in by_label.items():
        ratio = int(ratio_label.split("=")[1])
        for dataset_label, seconds in algos.items():
            out.setdefault(dataset_label, {})[ratio] = seconds
    return out


def test_fig5_shape_strategy_validated(benchmark):
    """Sec. V-B: a ratio in [16, 32] is (near-)optimal across panels."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    checked = 0
    for figure in list(RESULTS):
        if not figure.startswith("fig5"):
            continue
        for dataset_label, curve in _panel_series(figure).items():
            if len(curve) < len(SIGNATURE_RATIOS):
                continue
            best_ratio = min(curve, key=curve.get)
            strategy_time = min(curve[16], curve[32])
            # The strategy's pick must be within 3x of the measured optimum
            # (the paper reports order-of-magnitude swings across ratios).
            assert strategy_time <= 3.0 * curve[best_ratio], (
                f"{figure} / {dataset_label}: strategy point far from optimum"
            )
            checked += 1
    assert checked > 0, "fig5 shape test ran before the panel benchmarks"
