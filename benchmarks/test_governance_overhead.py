"""Bench gate: governance must be (nearly) free when it is off.

Every algorithm loop now carries ``gov = governor(phase)`` plus an
``if gov is not None`` guard per record — the whole governance-off cost.
This file gates that cost two ways:

* **First principles** — the per-iteration price of the ``None`` guard,
  measured in isolation (median of interleaved repeats), must stay
  under 5% of the median per-record probe cost.  Both sides are
  measured in the same process back-to-back, so the ratio is stable
  where absolute nanoseconds are not.
* **End to end** — an *ungoverned* probe-heavy join is benchmarked
  against the same join under an active policy at the default poll
  cadence; the governed run must stay within 1.5x (the tick call per
  record is real Python work, but 1/1024 polls must stay invisible).
"""

from __future__ import annotations

import statistics
from time import perf_counter

from benchmarks.figrecorder import RESULTS, run_and_record
from repro.bench.harness import dataset_pair
from repro.core.registry import prepare_index, set_containment_join
from repro.datagen.synthetic import SyntheticConfig
from repro.governance import Deadline, GovernancePolicy, govern, governor

FIGURE = "governance: probe overhead"

CONFIG = SyntheticConfig(size=2048, avg_cardinality=32, domain=2 ** 9, seed=191,
                         name="|R|=2^11 c=2^5")

#: Iterations for the guard microbenchmark; large enough that loop setup
#: vanishes, small enough to keep the gate under a second.
GUARD_ITERS = 200_000


def _median_seconds(fn, repeats: int = 7) -> float:
    samples = []
    for _ in range(repeats):
        start = perf_counter()
        fn()
        samples.append(perf_counter() - start)
    return statistics.median(samples)


def test_none_guard_is_under_5pct_of_probe_work():
    r, s = dataset_pair(CONFIG)
    index = prepare_index(s, algorithm="ptsj")

    gov = governor("probe")
    assert gov is None  # ungoverned: the guard is the entire cost

    def guarded_loop():
        for _ in range(GUARD_ITERS):
            if gov is not None:
                gov.tick()

    def bare_loop():
        for _ in range(GUARD_ITERS):
            pass

    # Interleave the two loops across repeats so frequency scaling and
    # scheduler noise hit both sides alike.
    guard_cost = max(
        0.0,
        (_median_seconds(guarded_loop) - _median_seconds(bare_loop)) / GUARD_ITERS,
    )
    per_record_probe = _median_seconds(lambda: index.probe_many(r)) / len(r)
    assert guard_cost <= 0.05 * per_record_probe, (
        f"governance-off guard costs {guard_cost * 1e9:.1f}ns/record against "
        f"{per_record_probe * 1e9:.1f}ns/record of probe work"
    )


def test_ungoverned_probe(benchmark):
    r, s = dataset_pair(CONFIG)
    run_and_record(
        benchmark, FIGURE, CONFIG.name, "ungoverned",
        lambda: set_containment_join(r, s, algorithm="ptsj"), rounds=3,
    )


def test_governed_probe_default_cadence(benchmark):
    r, s = dataset_pair(CONFIG)
    policy = GovernancePolicy(deadline=Deadline.after(3600.0))

    def run():
        with govern(policy):
            return set_containment_join(r, s, algorithm="ptsj")

    run_and_record(benchmark, FIGURE, CONFIG.name, "governed (1/1024)", run,
                   rounds=3)


def test_governance_overhead_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    point = RESULTS[FIGURE][CONFIG.name]
    # Ticking a governor per record is bounded Python work; the polls
    # themselves (1/1024 records) must not be measurable at all.
    assert point["governed (1/1024)"] < 1.5 * point["ungoverned"]
