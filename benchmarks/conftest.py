"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``test_fig*.py`` file reproduces one table or figure of the paper's
evaluation (Sec. V).  Benchmark points register their measured wall time
through :func:`benchmarks.figrecorder.record`; the terminal-summary hook
below assembles them into the figure-shaped ASCII tables quoted by
``EXPERIMENTS.md``, so ``pytest benchmarks/ --benchmark-only`` prints both
pytest-benchmark's per-point statistics and the per-figure series.
"""

from __future__ import annotations

import pytest

from benchmarks.figrecorder import RESULTS, render_figures, run_and_record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every recorded figure and persist the machine-readable series."""
    if not RESULTS:
        return
    tr = terminalreporter
    tr.write_sep("=", "paper figure reproductions")
    for block in render_figures():
        tr.write_line("")
        tr.write_line(block)
    tr.write_line("")
    try:
        from benchmarks.figrecorder import UNITS
        from repro.bench.results_io import save_series_json

        out_path = config.rootpath / "benchmark_results.json"
        save_series_json(RESULTS, out_path, units=UNITS)
        tr.write_line(f"figure series written to {out_path}")
    except OSError as exc:  # pragma: no cover - read-only checkouts
        tr.write_line(f"(could not persist figure series: {exc})")


@pytest.fixture(scope="session")
def recorder():
    """Expose :func:`run_and_record` to benchmark files as a fixture."""
    return run_and_record
