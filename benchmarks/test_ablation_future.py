"""Ablation: the Sec. VI future-work directions against PTSJ.

The paper's conclusion proposes multi-way tries, trie-trie joins and
multi-core execution as follow-ups.  This benchmark puts the three
implementations (:mod:`repro.future`) next to PTSJ on one mid-range
workload to show where each stands:

* MWTSJ (16-ary trie) — competitive with PTSJ; trades Patricia path
  compression for fan-out;
* trie-trie — amortises shared probe prefixes but pays a pair-frontier;
* parallel PTSJ (1 worker, k chunks) — overhead-only ceiling check: the
  chunked run must stay close to the monolithic one, since speed-up on
  real cores is outside a single-process benchmark's reach.

Correctness of all variants against the same output is asserted.
"""

from __future__ import annotations

import pytest

from benchmarks.figrecorder import RESULTS, run_and_record
from repro.bench.harness import dataset_pair
from repro.core.registry import make_algorithm
from repro.datagen.synthetic import SyntheticConfig
from repro.exec.parallel import ParallelJoin

FIGURE = "ablation: future-work variants (Sec. VI) vs PTSJ"

CONFIG = SyntheticConfig(size=1024, avg_cardinality=32, domain=2 ** 9, seed=170,
                         name="|R|=2^10 c=2^5")
OUTPUTS: dict[str, frozenset] = {}


@pytest.mark.parametrize("algorithm", ["ptsj", "mwtsj", "trie-trie"])
def test_ablation_future_algorithms(benchmark, algorithm):
    r, s = dataset_pair(CONFIG)

    def run():
        result = make_algorithm(algorithm).join(r, s)
        OUTPUTS[algorithm] = result.pair_set()
        return result

    run_and_record(benchmark, FIGURE, CONFIG.name, algorithm, run)


def test_ablation_future_parallel(benchmark):
    r, s = dataset_pair(CONFIG)

    def run():
        result = ParallelJoin(algorithm="ptsj", workers=1, chunks=4).join(r, s)
        OUTPUTS["parallel-ptsj"] = result.pair_set()
        return result

    run_and_record(benchmark, FIGURE, CONFIG.name, "parallel-ptsj (1 worker, 4 chunks)", run)


def test_ablation_future_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    reference = OUTPUTS["ptsj"]
    for name, pairs in OUTPUTS.items():
        assert pairs == reference, name
    point = RESULTS[FIGURE][CONFIG.name]
    # Chunked execution costs at most ~2x the monolithic run (the S index
    # is prepared once and shared; real speed-up needs real cores).
    assert point["parallel-ptsj (1 worker, 4 chunks)"] < 3.0 * point["ptsj"]
