"""Sharded-executor scaling smoke: shard counts, strategies, and regret.

Two questions, one file:

* **Does sharding scale sanely?**  The same join is timed at increasing
  shard counts (workers fixed), recording a figure of seconds per shard
  count.  Pure-Python process pools carry real constant costs, so no
  speedup is asserted — only correctness at every point and that the
  figure lands in the report.
* **Does the planner-regret gate cover sharded plans?**  A workload that
  forces a sharded plan is run through the same ``run_planned`` /
  ``planner_regret`` machinery as the regime smoke in
  ``test_planner_regret.py``: the sharded plan's wall time (median of 3)
  must stay within ``MAX_REGRET`` (3x) of the best directly-run
  algorithm on the same data.  That bounds the total overhead the
  executor layer (pool spin-up, payload pickling, routing) is allowed to
  add at bench scale — the dataset is sized so real join work dominates
  those constants, otherwise the gate would measure fork latency.

CI runs this file inside the ``planner-regret`` job.
"""

from __future__ import annotations

from time import perf_counter

import pytest

from benchmarks.figrecorder import record
from repro.bench.harness import dataset_pair, planner_regret, run_algorithm, run_planned
from repro.core.registry import make_algorithm
from repro.datagen.synthetic import SyntheticConfig
from repro.exec.sharded import ShardedJoin
from repro.planner import AUTO_CANDIDATES, Workload

FIGURE = "sharded executor: wall time vs shard count"

#: Big enough that real join work (~0.3 s inline) dominates pool spin-up.
CONFIG = SyntheticConfig(size=6144, avg_cardinality=24, domain=2 ** 9, seed=500)

SHARD_COUNTS = (1, 2, 4)

#: Maximum tolerated slowdown of the sharded plan vs the measured best
#: in-process algorithm (same bound as the regime-regret smoke).
MAX_REGRET = 3.0


@pytest.fixture(scope="module")
def rs_pair():
    return dataset_pair(CONFIG)


@pytest.fixture(scope="module")
def expected_pairs(rs_pair):
    r, s = rs_pair
    return sorted(make_algorithm("pretti+").join(r, s).pairs)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("strategy", ("element", "signature"))
def test_shard_count_scaling(rs_pair, expected_pairs, shards, strategy):
    r, s = rs_pair
    join = ShardedJoin(algorithm="pretti+", workers=2, shards=shards, strategy=strategy)
    start = perf_counter()
    result = join.join(r, s)
    elapsed = perf_counter() - start
    assert sorted(result.pairs) == expected_pairs
    assert result.stats.extras["fallback_shards"] == 0
    record(FIGURE, f"{shards} shard(s)", f"sharded/{strategy}", elapsed, unit="seconds")


def test_sharded_plan_regret_within_bound(rs_pair):
    r, s = rs_pair
    workload = Workload(workers=2, shards=2)
    planned = run_planned(r, s, workload=workload, repeats=3)
    assert planned.plan is not None and planned.plan.executor == "sharded"

    alternatives = [
        run_algorithm(name, r, s, repeats=3) for name in AUTO_CANDIDATES
    ]
    for alt in alternatives:
        assert alt.pairs == planned.pairs, (
            f"sharded plan disagrees with {alt.algorithm} on output size"
        )

    regret = planner_regret(planned, alternatives)
    record("planner regret: sharded plan vs best measured algorithm",
           "2 shards / 2 workers", "regret", regret, unit="plain")
    assert regret <= MAX_REGRET, (
        f"sharded plan ran {regret:.2f}x slower than the best in-process "
        f"algorithm ({planned.seconds:.4f}s planned)"
    )
