"""Planner-regret smoke: the planner must stay near the best algorithm.

For each cardinality regime of Sec. V-C3 the auto-planned join is timed
against every production-candidate algorithm run directly on the same
data.  *Regret* is ``planned_seconds / best_seconds`` (1.0 = the planner
picked the fastest).  The gate — regret <= 3.0 — is deliberately loose:
it catches a planner that routes a regime to the wrong family (an
order-of-magnitude mistake on these datasets) without flaking on machine
noise.  CI runs exactly this file as the ``planner-regret`` job.
"""

from __future__ import annotations

import pytest

from benchmarks.figrecorder import record
from repro.bench.harness import planner_regret, run_algorithm, run_planned
from repro.datagen.synthetic import SyntheticConfig, generate_pair
from repro.planner import AUTO_CANDIDATES

FIGURE = "planner regret: auto plan vs best measured algorithm"

#: The measured alternatives: the paper's production pair plus the PRETTI
#: baseline, i.e. every algorithm the planner could plausibly have meant.
CANDIDATE_POOL = (*AUTO_CANDIDATES, "pretti")

#: Maximum tolerated slowdown of the planner's pick vs the measured best.
MAX_REGRET = 3.0

REGIMES = {
    "low-cardinality (pretti+ regime)": SyntheticConfig(
        size=768, avg_cardinality=8, domain=2 ** 10, seed=400
    ),
    # Long posting lists (d = 2^9) keep PRETTI+'s intersection cost honest;
    # at pure-Python bench scale PRETTI+ still edges out PTSJ here (the
    # paper's crossover needs millions of tuples), which is exactly what
    # the loose 3x gate tolerates while still catching a mis-routed regime.
    "high-cardinality (ptsj regime)": SyntheticConfig(
        size=1536, avg_cardinality=64, domain=2 ** 9, seed=401
    ),
}


@pytest.mark.parametrize("regime", sorted(REGIMES))
def test_planner_regret_within_bound(regime):
    r, s = generate_pair(REGIMES[regime])
    planned = run_planned(r, s, repeats=3)
    assert planned.plan is not None
    assert planned.plan.algorithm in CANDIDATE_POOL

    alternatives = [
        run_algorithm(name, r, s, repeats=3) for name in CANDIDATE_POOL
    ]
    # Identical output everywhere before timing is compared.
    for alt in alternatives:
        assert alt.pairs == planned.pairs, (
            f"{alt.algorithm} disagrees on output size in regime {regime!r}"
        )

    regret = planner_regret(planned, alternatives)
    record(FIGURE, regime, "regret", regret, unit="plain")
    best = min(alternatives, key=lambda rec: rec.seconds)
    assert regret <= MAX_REGRET, (
        f"planner chose {planned.plan.algorithm} ({planned.seconds:.4f}s) but "
        f"{best.algorithm} ran {regret:.2f}x faster ({best.seconds:.4f}s) in "
        f"regime {regime!r}"
    )
