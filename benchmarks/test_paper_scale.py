"""Optional paper-scale run (opt-in: set ``REPRO_PAPER_SCALE=1``).

The default grids are scaled for pure Python (DESIGN.md §3).  This module
re-runs the central Fig. 6c sweep at 8x the default relation size —
|R| = 2^14, the closest practical point to the paper's 2^17 — so the
regime claims can be checked nearer to paper scale when an hour of CPU is
available.  Skipped by default; run with::

    REPRO_PAPER_SCALE=1 pytest benchmarks/test_paper_scale.py --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from benchmarks.figrecorder import RESULTS, run_and_record
from repro.bench.harness import dataset_pair
from repro.core.registry import make_algorithm
from repro.datagen.synthetic import SyntheticConfig

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_PAPER_SCALE") != "1",
    reason="paper-scale run is opt-in (REPRO_PAPER_SCALE=1); takes ~1h",
)

FIGURE = "paper-scale fig6c: |R|=2^14, d=2^12"

CONFIGS = [
    SyntheticConfig(size=2 ** 14, avg_cardinality=2 ** exp, domain=2 ** 12,
                    seed=190 + exp, name=f"c=2^{exp}")
    for exp in (2, 4, 6, 8)
]

ALGORITHMS = ("shj", "pretti", "ptsj", "pretti+")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("config", CONFIGS, ids=[c.name for c in CONFIGS])
def test_paper_scale_fig6c(benchmark, config, algorithm):
    r, s = dataset_pair(config)
    run_and_record(
        benchmark, FIGURE, config.name, algorithm,
        lambda: make_algorithm(algorithm).join(r, s),
    )


def test_paper_scale_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_label = RESULTS[FIGURE]
    low, high = by_label["c=2^2"], by_label["c=2^8"]
    assert low["pretti+"] <= 1.1 * min(low.values())
    assert high["ptsj"] == min(high.values())
    # At this scale the order-of-magnitude SHJ/PRETTI gap should open up.
    assert high["pretti"] > 5.0 * high["ptsj"]
