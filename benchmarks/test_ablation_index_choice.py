"""Ablation: signature index vs element-space index per cardinality regime.

The paper's regime result (PRETTI+ below c ~ 2^5, PTSJ above) is a
statement about *joins*; this ablation checks that the same economics
govern single-query workloads over the two reusable indexes this library
offers:

* :class:`~repro.extensions.set_index.PatriciaSetIndex` — PTSJ's
  signature trie (verifying probes);
* :class:`~repro.extensions.set_trie_index.SetTrieIndex` — PRETTI+'s
  element-space Patricia trie (exact probes).

Measured: total time for a batch of *subset* probes (the single-query
analogue of the containment join: given r, find every s with s ⊆ r) at
low and high set cardinality.  Expected shape: the element-space index
wins the low-cardinality regime outright, and the signature index gains
relative ground as cardinality grows (the fig. 6c crossover mechanism,
compressed by the small scale) — with identical ids everywhere.
"""

from __future__ import annotations

import pytest

from benchmarks.figrecorder import RESULTS, run_and_record
from repro.bench.harness import dataset_pair
from repro.datagen.synthetic import SyntheticConfig
from repro.extensions.set_index import PatriciaSetIndex
from repro.extensions.set_trie_index import SetTrieIndex

FIGURE = "ablation: batch subset probes — signature index vs set-trie index"

CONFIGS = {
    "low c (2^3)": SyntheticConfig(size=1024, avg_cardinality=8, domain=2 ** 9, seed=200),
    "high c (2^7)": SyntheticConfig(size=1024, avg_cardinality=128, domain=2 ** 9, seed=201),
}
ANSWERS: dict[tuple[str, str], list[frozenset]] = {}


def _probe_batch(index_kind: str, label: str):
    config = CONFIGS[label]
    r, s = dataset_pair(config)
    queries = [rec.elements for rec in r[: len(r) // 4]]
    if index_kind == "signature":
        index = PatriciaSetIndex(s)
        results = [
            frozenset(i for g in index.subsets_of(q) for i in g.ids)
            for q in queries
        ]
    else:
        index = SetTrieIndex(s)
        results = [frozenset(index.subsets_of(q)) for q in queries]
    ANSWERS[(index_kind, label)] = results
    return results


@pytest.mark.parametrize("index_kind", ["signature", "set-trie"])
@pytest.mark.parametrize("label", list(CONFIGS), ids=list(CONFIGS))
def test_index_choice(benchmark, label, index_kind):
    run_and_record(
        benchmark, FIGURE, label, index_kind,
        lambda: _probe_batch(index_kind, label),
    )


def test_index_choice_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Identical answers on both regimes.
    for label in CONFIGS:
        assert ANSWERS[("signature", label)] == ANSWERS[("set-trie", label)], label
    point_low = RESULTS[FIGURE]["low c (2^3)"]
    point_high = RESULTS[FIGURE]["high c (2^7)"]
    # Low cardinality: the element-space index wins (the PRETTI+ regime).
    assert point_low["set-trie"] < point_low["signature"]
    # The signature index gains relative ground as cardinality grows —
    # the fig. 6c crossover mechanism at query level.
    low_ratio = point_low["signature"] / point_low["set-trie"]
    high_ratio = point_high["signature"] / point_high["set-trie"]
    assert high_ratio < low_ratio
