"""Ablation: disk-based partitioned nested-loop join (Sec. III-E4).

Reproduced claims:

* the partition-pair loop performs quadratically many partition loads;
* PTSJ is well-suited to the strategy (its per-partition index is cheap
  to rebuild), staying within a modest factor of the in-memory run;
* results are identical to the in-memory join at every partition size.
"""

from __future__ import annotations

import pytest

from benchmarks.figrecorder import RESULTS, run_and_record
from repro.core.registry import make_algorithm
from repro.datagen.synthetic import SyntheticConfig, generate_pair
from repro.exec.disk import DiskPartitionedJoin

FIGURE = "ablation: disk-partitioned PTSJ vs in-memory (partition-size sweep)"

CONFIG = SyntheticConfig(size=1024, avg_cardinality=16, domain=2 ** 10, seed=150)
R, S = generate_pair(CONFIG)
RUNS: dict[str, object] = {}


def test_ablation_disk_in_memory_baseline(benchmark):
    def run():
        result = make_algorithm("ptsj").join(R, S)
        RUNS["in-memory"] = result
        return result

    run_and_record(benchmark, FIGURE, "in-memory", "ptsj", run)


@pytest.mark.parametrize("max_tuples", [512, 256, 128], ids=["2x2", "4x4", "8x8"])
def test_ablation_disk_partitioned(benchmark, max_tuples):
    label = f"{1024 // max_tuples}x{1024 // max_tuples} partitions"

    def run():
        result = DiskPartitionedJoin(algorithm="ptsj", max_tuples=max_tuples).join(R, S)
        RUNS[label] = result
        return result

    run_and_record(benchmark, FIGURE, label, "ptsj", run)


def test_ablation_disk_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    baseline = RUNS["in-memory"]
    for label, result in RUNS.items():
        if label == "in-memory":
            continue
        assert result.pair_set() == baseline.pair_set(), label
    # Quadratic I/O: 8x8 partitioning loads s parts once + r parts per s part.
    extras = RUNS["8x8 partitions"].stats.extras
    assert extras["partition_loads"] == 8 + 8 * 8
    # Finer partitioning costs more (quadratic behaviour, Sec. III-E4).
    point = RESULTS[FIGURE]
    assert point["8x8 partitions"]["ptsj"] > point["in-memory"]["ptsj"]
