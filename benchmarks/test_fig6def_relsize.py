"""Figs. 6d-f: scalability with respect to relation size (Sec. V-C4).

Three panels at c = 2^4 (6d), 2^6 (6e) and 2^8 (6f).  Paper findings
reproduced here:

* 6d (low cardinality): PRETTI+ is the clear winner at every size;
* 6f (high cardinality): PTSJ wins, and its advantage grows with |R|;
* every algorithm scales super-linearly but none explodes at these sizes.
"""

from __future__ import annotations

import pytest

from benchmarks.figrecorder import RESULTS, run_and_record
from repro.bench.experiments import ALL_ALGORITHMS, fig6def_configs
from repro.bench.harness import dataset_pair
from repro.core.registry import make_algorithm

PANELS = {
    "fig6d: join time vs |R| (c=2^4)": fig6def_configs(2 ** 4),
    "fig6e: join time vs |R| (c=2^6)": fig6def_configs(2 ** 6),
    "fig6f: join time vs |R| (c=2^8)": fig6def_configs(2 ** 8),
}

CASES = [
    (figure, config)
    for figure, configs in PANELS.items()
    for config in configs
]


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
@pytest.mark.parametrize(
    "figure,config", CASES,
    ids=[f"{fig[:5]}-{cfg.name}" for fig, cfg in CASES],
)
def test_fig6def_relsize(benchmark, figure, config, algorithm):
    r, s = dataset_pair(config)
    run_and_record(
        benchmark, figure, config.name, algorithm,
        lambda: make_algorithm(algorithm).join(r, s),
    )


def test_fig6def_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    panel_d = RESULTS["fig6d: join time vs |R| (c=2^4)"]
    panel_f = RESULTS["fig6f: join time vs |R| (c=2^8)"]
    d_configs = PANELS["fig6d: join time vs |R| (c=2^4)"]
    f_configs = PANELS["fig6f: join time vs |R| (c=2^8)"]

    # 6d: PRETTI+ wins (or ties within 20%) at every relation size in the
    # low-c regime, and beats the signature methods outright at the top.
    for config in d_configs:
        point = panel_d[config.name]
        assert point["pretti+"] <= 1.2 * min(point.values()), config.name
    top_d = panel_d[d_configs[-1].name]
    assert top_d["pretti+"] < top_d["ptsj"]
    assert top_d["pretti+"] < top_d["shj"]

    # 6f: PTSJ wins at the largest high-c sizes, beating PRETTI clearly.
    largest = panel_f[f_configs[-1].name]
    assert largest["ptsj"] == min(largest.values())
    assert largest["pretti"] > 3.0 * largest["ptsj"]

    # Times grow with |R| for every algorithm (sanity of the sweep).
    for figure, configs in PANELS.items():
        for name in ALL_ALGORITHMS:
            curve = [RESULTS[figure][cfg.name][name] for cfg in configs]
            assert curve[-1] > curve[0], (figure, name)
