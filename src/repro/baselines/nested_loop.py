"""Naive nested-loop set-containment join — the correctness oracle.

Compares every ``(r, s)`` pair directly with Python's frozenset ``>=``.
Quadratic and index-free, so it is never competitive, but its output is
trivially correct; every other algorithm's tests compare against it.

One cheap, safe refinement is applied: a pair is skipped when
``|s.set| > |r.set|`` (a larger set cannot be contained in a smaller one),
which does not change the output.
"""

from __future__ import annotations

from repro.core.base import JoinStats, SetContainmentJoin
from repro.relations.relation import Relation

__all__ = ["NestedLoopJoin", "nested_loop_join_pairs"]


def nested_loop_join_pairs(r: Relation, s: Relation) -> list[tuple[int, int]]:
    """All ``(r_id, s_id)`` with ``r.set ⊇ s.set``, by exhaustive comparison."""
    pairs: list[tuple[int, int]] = []
    s_records = list(s)
    for r_rec in r:
        r_set = r_rec.elements
        r_card = len(r_set)
        for s_rec in s_records:
            if s_rec.cardinality <= r_card and s_rec.elements <= r_set:
                pairs.append((r_rec.rid, s_rec.rid))
    return pairs


class NestedLoopJoin(SetContainmentJoin):
    """Exhaustive nested-loop join (oracle baseline)."""

    name = "nested-loop"

    def __init__(self) -> None:
        self._s: Relation | None = None

    def _build(self, r: Relation, s: Relation, stats: JoinStats) -> None:
        self._s = s

    def _probe(self, r: Relation, stats: JoinStats) -> list[tuple[int, int]]:
        assert self._s is not None
        pairs = nested_loop_join_pairs(r, self._s)
        stats.verifications += len(r) * len(self._s)
        stats.candidates += len(r) * len(self._s)
        return pairs
