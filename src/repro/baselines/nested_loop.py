"""Naive nested-loop set-containment join — the correctness oracle.

Compares every ``(r, s)`` pair directly with Python's frozenset ``>=``.
Quadratic and index-free, so it is never competitive, but its output is
trivially correct; every other algorithm's tests compare against it.  Its
"prepared index" is simply the materialised record list of ``S``, which
makes it the simplest illustration of the build-once/probe-many contract.

One cheap, safe refinement is applied: a pair is skipped when
``|s.set| > |r.set|`` (a larger set cannot be contained in a smaller one),
which does not change the output.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.base import JoinStats, PreparedIndex, SetContainmentJoin
from repro.governance.policy import governor
from repro.relations.relation import Relation, SetRecord

__all__ = ["NestedLoopJoin", "NestedLoopPreparedIndex", "nested_loop_join_pairs"]


def nested_loop_join_pairs(r: Relation, s: Relation) -> list[tuple[int, int]]:
    """All ``(r_id, s_id)`` with ``r.set ⊇ s.set``, by exhaustive comparison."""
    pairs: list[tuple[int, int]] = []
    s_records = list(s)
    for r_rec in r:
        r_set = r_rec.elements
        r_card = len(r_set)
        for s_rec in s_records:
            if s_rec.cardinality <= r_card and s_rec.elements <= r_set:
                pairs.append((r_rec.rid, s_rec.rid))
    return pairs


class NestedLoopPreparedIndex(PreparedIndex):
    """The oracle's 'index': the S records themselves, scanned per probe."""

    def __init__(self, records: tuple[SetRecord, ...], relation: Relation) -> None:
        super().__init__("nested-loop", relation)
        self._records = records

    def probe(self, record: SetRecord, stats: JoinStats | None = None) -> Iterator[int]:
        """Stream s-ids via one full scan, verifying every record exactly."""
        stats = self._target(stats)
        r_set = record.elements
        r_card = len(r_set)
        gov = governor("probe", stats)
        for s_rec in self._records:
            if gov is not None:
                gov.tick()
            stats.candidates += 1
            stats.verifications += 1
            if s_rec.cardinality <= r_card and s_rec.elements <= r_set:
                yield s_rec.rid

    def memory_objects(self, probe_relation: Relation | None = None) -> list[Any]:
        return [self._records]


class NestedLoopJoin(SetContainmentJoin):
    """Exhaustive nested-loop join (oracle baseline)."""

    name = "nested-loop"

    def _prepare(self, s: Relation, probe_hint: Relation | None = None) -> NestedLoopPreparedIndex:
        records: list[SetRecord] = []
        append = records.append
        gov = governor("build")
        for rec in s:
            if gov is not None:
                gov.tick()
            append(rec)
        return NestedLoopPreparedIndex(tuple(records), s)
