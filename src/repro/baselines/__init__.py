"""State-of-the-art baselines the paper compares against (all implemented).

* :class:`~repro.baselines.shj.SHJ` — Signature Hash Join (Sec. II-A).
* :class:`~repro.baselines.pretti.PRETTI` — prefix-tree set join (Sec. II-B).
* :class:`~repro.baselines.tsj.TSJ` — Algorithm 4's plain-trie join
  (ablation; the paper shows it loses to SHJ).
* :class:`~repro.baselines.nested_loop.NestedLoopJoin` — correctness oracle.
"""

from repro.baselines.nested_loop import NestedLoopJoin, nested_loop_join_pairs
from repro.baselines.pretti import PRETTI
from repro.baselines.shj import SHJ, iter_submasks, optimal_shj_bits
from repro.baselines.tsj import TSJ

__all__ = [
    "SHJ",
    "PRETTI",
    "TSJ",
    "NestedLoopJoin",
    "nested_loop_join_pairs",
    "iter_submasks",
    "optimal_shj_bits",
]
