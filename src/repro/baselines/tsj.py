"""TSJ — signature join over a *plain* binary trie (paper Sec. III-A, Alg. 4).

The paper's intermediate design: replace SHJ's hash map with an
uncompressed binary trie so that only signatures actually present in ``S``
are enumerated.  The idea is right but the structure is wrong — single-
branch chains mean ``k (b - lg2 k) + 2k`` nodes get allocated *and walked*,
and the paper reports Algorithm 4 measuring slower than SHJ, excluding it
from the empirical study.  It is kept here as an ablation baseline
(``benchmarks/test_ablation_plain_trie.py`` reproduces the claim) and as
the stepping stone to PTSJ.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.base import CandidateGroup, JoinStats
from repro.core.framework import SignatureJoinBase, insert_into_groups
from repro.governance.policy import governor
from repro.relations.relation import Relation
from repro.tries.binary_trie import BinaryTrie

__all__ = ["TSJ"]


class TSJ(SignatureJoinBase):
    """Trie-based Signature Join over an uncompressed binary trie.

    Same interface and defaults as :class:`repro.core.ptsj.PTSJ` (including
    the Sec. III-D signature-length strategy and merge-identical-sets),
    differing only in the underlying trie — which is the entire point of
    the ablation.

    Args:
        bits: Signature length; default per Sec. III-D.
        merge_identical: Merge tuples with identical sets in the leaves.
    """

    name = "tsj"

    def __init__(self, bits: int | None = None, merge_identical: bool = True, **kwargs) -> None:
        super().__init__(bits=bits, **kwargs)
        self.merge_identical = merge_identical
        self.trie: BinaryTrie | None = None

    def _build_index(self, s: Relation, stats: JoinStats) -> None:
        assert self.scheme is not None
        trie = BinaryTrie(self.scheme.bits)
        signature = self.scheme.signature
        gov = governor("build", stats)
        if self.merge_identical:
            for rec in s:
                if gov is not None:
                    gov.tick()
                insert_into_groups(trie.insert(signature(rec.elements)), rec)
        else:
            for rec in s:
                if gov is not None:
                    gov.tick()
                trie.insert(signature(rec.elements)).append(
                    CandidateGroup(rec.elements, rec.rid)
                )
        self.trie = trie
        stats.index_nodes = trie.node_count()

    def _enumerate_groups(self, signature: int, stats: JoinStats) -> Iterator[list[CandidateGroup]]:
        """TRIEENUM (Algorithm 4): level-synchronous trie walk."""
        trie = self.trie
        assert trie is not None
        leaves = trie.subset_leaves(signature)
        stats.node_visits += trie.visits_last_query
        for leaf in leaves:
            yield leaf.items  # type: ignore[misc]
