"""PRETTI — PREfix Tree based seT joIn (Jampani & Pudi; paper Sec. II-B).

The state-of-the-art IR baseline.  PRETTI builds a prefix tree over the
sorted sets of ``S`` and an inverted index over ``R``, then performs one
depth-first traversal of the trie: at every node the running candidate
list (R-tuples containing all elements on the path so far) is intersected
with the inverted list of the node's element; tuples resident at the node
are joined with the whole list (Algorithm 3).  No verification step is
needed — the candidate list is exact by construction — and results
computed high in the trie are *reused* by all descendants.

Weaknesses the paper targets with PRETTI+ (Sec. II-B): the one-element-
per-node trie explodes in memory for high set cardinality, and the trie
height equals the set cardinality, so traversal cost grows with ``c``.
"""

from __future__ import annotations

from repro.core.base import JoinStats, SetContainmentJoin
from repro.index.inverted import InvertedIndex
from repro.relations.relation import Relation
from repro.tries.set_trie import SetTrie

__all__ = ["PRETTI"]


class PRETTI(SetContainmentJoin):
    """Prefix-tree set-containment join (Algorithm 3).

    Example:
        >>> from repro.relations import Relation
        >>> profiles = Relation.from_sets([{1, 3, 5, 6}, {0, 2, 7}, {0, 2, 3}])
        >>> prefs = Relation.from_sets([{1, 3}, {1, 5, 6}, {0, 2, 7}])
        >>> sorted(PRETTI().join(profiles, prefs).pairs)
        [(0, 0), (0, 1), (1, 2)]
    """

    name = "pretti"

    def __init__(self) -> None:
        self.trie: SetTrie | None = None
        self.index: InvertedIndex | None = None

    def _build(self, r: Relation, s: Relation, stats: JoinStats) -> None:
        trie = SetTrie()
        for rec in s:
            trie.insert(rec.sorted_elements(), rec.rid)
        self.trie = trie
        self.index = InvertedIndex(r)
        stats.index_nodes = trie.node_count()

    def _probe(self, r: Relation, stats: JoinStats) -> list[tuple[int, int]]:
        """One DFS over the trie (the paper's PRETTIJOIN, made iterative).

        Branches whose candidate list empties are pruned: no descendant can
        produce output because descendants only ever *shrink* the list.
        """
        trie, index = self.trie, self.index
        assert trie is not None and index is not None
        pairs: list[tuple[int, int]] = []
        intersections_before = index.intersection_count
        visits = 0
        stack: list[tuple] = [(trie.root, index.all_ids)]
        while stack:
            node, current = stack.pop()
            visits += 1
            if node.tuples:
                for s_id in node.tuples:
                    for r_id in current:
                        pairs.append((r_id, s_id))
            for child in node.children.values():
                child_list = index.refine(current, child.label)
                if child_list:
                    stack.append((child, child_list))
        stats.node_visits += visits
        stats.intersections += index.intersection_count - intersections_before
        return pairs
