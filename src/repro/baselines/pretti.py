"""PRETTI — PREfix Tree based seT joIn (Jampani & Pudi; paper Sec. II-B).

The state-of-the-art IR baseline.  PRETTI builds a prefix tree over the
sorted sets of ``S`` and an inverted index over ``R``, then performs one
depth-first traversal of the trie: at every node the running candidate
list (R-tuples containing all elements on the path so far) is intersected
with the inverted list of the node's element; tuples resident at the node
are joined with the whole list (Algorithm 3).  No verification step is
needed — the candidate list is exact by construction — and results
computed high in the trie are *reused* by all descendants.

Only the prefix tree depends on ``S``: :meth:`PRETTI._prepare` builds it
once into a :class:`PrettiPreparedIndex`, and the inverted file — pure
probe-side state — is rebuilt per probe batch inside ``probe_many``.
Single-record probes skip the inverted file entirely and walk the trie
with plain set-membership tests, streaming matches as nodes are reached.

Weaknesses the paper targets with PRETTI+ (Sec. II-B): the one-element-
per-node trie explodes in memory for high set cardinality, and the trie
height equals the set cardinality, so traversal cost grows with ``c``.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.base import JoinStats, PreparedIndex, SetContainmentJoin
from repro.governance.policy import governor
from repro.index.inverted import InvertedIndex
from repro.obs.tracer import current_tracer
from repro.relations.relation import Relation, SetRecord
from repro.tries.set_trie import SetTrie

__all__ = ["PRETTI", "PrettiPreparedIndex"]


class PrettiPreparedIndex(PreparedIndex):
    """A prepared PRETTI prefix tree over ``S``.

    Batch probes (:meth:`probe_many`) run the paper's Algorithm 3: build
    an inverted file over the probe relation, then one DFS with a running
    candidate list.  Single-record probes walk the trie directly, pruning
    subtrees whose element is absent from the probe set.
    """

    def __init__(self, trie: SetTrie, relation: Relation) -> None:
        super().__init__("pretti", relation)
        self.trie = trie

    def probe(self, record: SetRecord, stats: JoinStats | None = None) -> Iterator[int]:
        """Stream s-ids whose set is contained in ``record``'s set.

        A subtree is entered only when its element occurs in the probe set,
        so the walk touches exactly the trie paths spelled by subsets of
        the probe — no candidate lists, no intersections.
        """
        stats = self._target(stats)
        elements = record.elements
        gov = governor("probe", stats)
        stack = [self.trie.root]
        while stack:
            if gov is not None:
                gov.tick()
            node = stack.pop()
            stats.node_visits += 1
            if node.tuples:
                yield from node.tuples
            for child in node.children.values():
                if child.label in elements:
                    stack.append(child)

    def _probe_all(self, r: Relation, stats: JoinStats) -> list[tuple[int, int]]:
        """One DFS over the trie (the paper's PRETTIJOIN, made iterative).

        Branches whose candidate list empties are pruned: no descendant can
        produce output because descendants only ever *shrink* the list.

        Under an active tracer the two probe-side phases — building the
        inverted file over ``R`` (``invert``) and the trie walk itself
        (``traverse``) — are reported as child spans of ``probe``.
        """
        tracer = current_tracer()
        with tracer.span("invert"):
            index = InvertedIndex(r)
            if tracer.enabled:
                tracer.count("inverted_records", len(index.all_ids))
        pairs: list[tuple[int, int]] = []
        intersections_before = index.intersection_count
        visits = 0
        with tracer.span("traverse"):
            gov = governor("probe", stats)
            stack: list[tuple] = [(self.trie.root, index.all_ids)]
            while stack:
                if gov is not None:
                    gov.tick()
                node, current = stack.pop()
                visits += 1
                if node.tuples:
                    for s_id in node.tuples:
                        for r_id in current:
                            pairs.append((r_id, s_id))
                for child in node.children.values():
                    child_list = index.refine(current, child.label)
                    if child_list:
                        stack.append((child, child_list))
            if tracer.enabled:
                tracer.count("node_visits", visits)
                tracer.count(
                    "intersections", index.intersection_count - intersections_before
                )
        stats.node_visits += visits
        stats.intersections += index.intersection_count - intersections_before
        return pairs

    def memory_objects(self, probe_relation: Relation | None = None) -> list[Any]:
        objs: list[Any] = [self.trie]
        if probe_relation is not None:
            objs.append(InvertedIndex(probe_relation))
        return objs


class PRETTI(SetContainmentJoin):
    """Prefix-tree set-containment join (Algorithm 3).

    Example:
        >>> from repro.relations import Relation
        >>> profiles = Relation.from_sets([{1, 3, 5, 6}, {0, 2, 7}, {0, 2, 3}])
        >>> prefs = Relation.from_sets([{1, 3}, {1, 5, 6}, {0, 2, 7}])
        >>> sorted(PRETTI().join(profiles, prefs).pairs)
        [(0, 0), (0, 1), (1, 2)]
    """

    name = "pretti"

    def __init__(self) -> None:
        self.trie: SetTrie | None = None

    def _prepare(self, s: Relation, probe_hint: Relation | None = None) -> PrettiPreparedIndex:
        trie = SetTrie()
        gov = governor("build")
        for rec in s:
            if gov is not None:
                gov.tick()
            trie.insert(rec.sorted_elements(), rec.rid)
        self.trie = trie
        index = PrettiPreparedIndex(trie, s)
        index.index_nodes = trie.node_count()
        return index
