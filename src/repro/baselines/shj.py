"""SHJ — Signature Hash Join (Helmer & Moerkotte; paper Sec. II-A, Alg. 2).

The state-of-the-art signature baseline.  SHJ hashes every S-tuple into a
hash map keyed by its signature, then, per probe tuple, *enumerates all
subset signatures* of the probe signature and looks each one up (Alg. 2).

The enumeration is exponential in the number of set bits, so — as the
paper stresses (Sec. III) — "only part of the signature is used for
enumeration purposes (and for creating hash map entries)" and "this partial
signature length cannot even reach 20 bits".  This implementation follows
that real-cases design:

* the hash map is keyed by the first ``partial_bits`` bits of the
  signature (``partial_bits <= 20``);
* probing enumerates every submask of the probe's partial signature with
  the classic ``sub = (sub - 1) & mask`` loop;
* bucket entries keep the *full* signature for a second-stage ``⊑`` filter
  before the exact set comparison.

The full signature length defaults to the optimum of Helmer & Moerkotte's
analysis, ``b ≈ c / ln 2`` bits (signature weight ~50%), clamped to a sane
range; the partial length defaults to ``min(partial_cap, log2 |S| + 2)`` so
buckets stay near-singleton as the relation grows — the growth that caps
SHJ's scalability in the paper's Figs. 6d–f.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.core.base import CandidateGroup, JoinStats
from repro.core.framework import SignatureJoinBase
from repro.errors import AlgorithmError
from repro.governance.policy import governor
from repro.kernels import KernelBackend, SignaturePack, get_backend
from repro.relations.relation import Relation
from repro.signatures.bitmap import bit_segment

__all__ = ["SHJ", "optimal_shj_bits", "iter_submasks"]

#: Hard cap on the enumerated partial signature (paper: "cannot even reach 20").
MAX_PARTIAL_BITS = 20


def optimal_shj_bits(avg_cardinality: float, minimum: int = 16, maximum: int = 4096) -> int:
    """Helmer & Moerkotte's optimal signature length, ``b = c / ln 2``.

    At this length a signature's expected weight (fraction of 1-bits) is
    about 50%, which minimises false-drop probability per bit spent.
    """
    if avg_cardinality <= 0:
        raise AlgorithmError(f"average cardinality must be positive, got {avg_cardinality}")
    return max(minimum, min(maximum, math.ceil(avg_cardinality / math.log(2))))


def iter_submasks(mask: int) -> Iterator[int]:
    """Enumerate every submask of ``mask``, including ``mask`` and 0.

    The standard descending enumeration: ``sub = (sub - 1) & mask``.
    Yields ``2 ** popcount(mask)`` values.

    >>> sorted(iter_submasks(0b101))
    [0, 1, 4, 5]
    """
    sub = mask
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & mask


class _Entry:
    """One hash-map entry: an S-tuple's full signature plus its group.

    SHJ as published does not merge identical sets, so every entry holds a
    singleton :class:`CandidateGroup` (kept in group form so the shared
    Algorithm 1 verify loop applies unchanged).
    """

    __slots__ = ("signature", "group")

    def __init__(self, signature: int, group: CandidateGroup) -> None:
        self.signature = signature
        self.group = group


class SHJ(SignatureJoinBase):
    """Signature Hash Join with partial-signature subset enumeration.

    Args:
        bits: Full signature length; default ``optimal_shj_bits(c)``.
        partial_bits: Enumerated/hashed prefix length; default grows as
            ``log2 |S| + 2`` up to ``partial_cap``.
        partial_cap: Upper bound on ``partial_bits`` (default 16, hard
            maximum 20 per the paper's observation).

    Raises:
        AlgorithmError: If ``partial_bits``/``partial_cap`` exceed 20 or
            are not positive.
    """

    name = "shj"

    def __init__(
        self,
        bits: int | None = None,
        partial_bits: int | None = None,
        partial_cap: int = 16,
        **kwargs,
    ) -> None:
        super().__init__(bits=bits, **kwargs)
        if partial_cap <= 0 or partial_cap > MAX_PARTIAL_BITS:
            raise AlgorithmError(f"partial_cap must be in [1, {MAX_PARTIAL_BITS}]")
        if partial_bits is not None and not 0 < partial_bits <= MAX_PARTIAL_BITS:
            raise AlgorithmError(f"partial_bits must be in [1, {MAX_PARTIAL_BITS}]")
        self.requested_partial = partial_bits
        self.partial_cap = partial_cap
        self.partial_bits = 0
        self.buckets: dict[int, list[_Entry]] = {}
        self.bucket_packs: dict[int, SignaturePack] = {}
        self._kernel: KernelBackend | None = None

    def _choose_bits(self, r: Relation | None, s: Relation) -> int:
        if self.requested_bits is not None:
            return self.requested_bits
        cards = [rec.cardinality for rec in s]
        if r is not None:
            cards += [rec.cardinality for rec in r]
        avg_c = max(sum(cards) / len(cards), 1.0) if cards else 1.0
        return optimal_shj_bits(avg_c)

    def _resolve_partial(self, s_size: int, bits: int) -> int:
        if self.requested_partial is not None:
            return min(self.requested_partial, bits)
        grown = int(math.log2(s_size)) + 2 if s_size > 0 else 1
        return max(1, min(self.partial_cap, grown, bits))

    def _build_index(self, s: Relation, stats: JoinStats) -> None:
        assert self.scheme is not None
        bits = self.scheme.bits
        self.partial_bits = self._resolve_partial(len(s), bits)
        stats.extras["partial_bits"] = self.partial_bits
        buckets: dict[int, list[_Entry]] = {}
        signature = self.scheme.signature
        gov = governor("build", stats)
        for rec in s:
            if gov is not None:
                gov.tick()
            sig = signature(rec.elements)
            key = bit_segment(sig, 0, self.partial_bits, bits)
            entry = _Entry(sig, CandidateGroup(rec.elements, rec.rid))
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [entry]
            else:
                bucket.append(entry)
        self.buckets = buckets
        # Pack each bucket's full signatures once: probing then filters a
        # whole bucket with one kernel call instead of a per-entry loop.
        # The backend is captured here so the index stays internally
        # consistent even if the process default changes later.
        kernel = get_backend()
        self._kernel = kernel
        self.bucket_packs = {
            key: kernel.pack_signatures([e.signature for e in bucket], bits)
            for key, bucket in buckets.items()
        }
        stats.index_nodes = len(buckets)

    def _enumerate_groups(self, signature: int, stats: JoinStats) -> Iterator[list[CandidateGroup]]:
        """SHJENUM (Algorithm 2): submask enumeration + bucket filtering.

        Every submask of the probe's partial signature is looked up; each
        hit bucket's packed full signatures then pass the batched ``⊑``
        kernel filter (one call per bucket, not one check per entry)
        before the shared verify loop compares actual sets.  Counters and
        yield order are bit-identical to the historical per-entry loop:
        ``bucket_entries_scanned`` counts every entry of every hit bucket
        and survivors come out in entry order.
        """
        bits = self.scheme.bits  # type: ignore[union-attr]
        mask = bit_segment(signature, 0, self.partial_bits, bits)
        buckets = self.buckets
        packs = self.bucket_packs
        kernel = self._kernel
        assert kernel is not None
        filter_batch = kernel.filter_subset_batch
        enumerations = 0
        filtered = 0
        for sub in iter_submasks(mask):
            enumerations += 1
            bucket = buckets.get(sub)
            if bucket is None:
                continue
            filtered += len(bucket)
            for idx in filter_batch(packs[sub], signature):
                yield [bucket[idx].group]
        stats.extras["submask_enumerations"] = stats.extras.get("submask_enumerations", 0) + enumerations
        stats.extras["bucket_entries_scanned"] = stats.extras.get("bucket_entries_scanned", 0) + filtered
