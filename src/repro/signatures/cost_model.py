"""Analytical cost model for PTSJ (paper Sec. III-C).

The paper decomposes PTSJ's cost as

    C_PTSJ = C_create_PT + C_query_PT + C_compare_set

and derives closed-form estimates for the two data-dependent quantities:

* ``N`` — the expected number of S-tuples surviving the signature filter per
  R-tuple, which drives ``C_compare_set = N * c * |R|``;
* ``V`` — the expected number of Patricia-trie nodes visited per query,
  which drives ``C_query_PT <= |R| * V * (b / (H * Int) + 1)``.

These estimates justify the signature-length strategy of Sec. III-D and are
exercised by the unit tests (monotonicity in each parameter) and by the
``benchmarks/test_fig5_signature_length.py`` sweep, which compares the
model's preferred region with measured running times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SignatureError

__all__ = [
    "expected_candidates",
    "expected_candidates_uniform_cardinality",
    "expected_visited_nodes",
    "expected_trie_height",
    "query_cost_upper_bound",
    "PTSJCostEstimate",
    "estimate_ptsj_cost",
]


def _check_positive(**params: float) -> None:
    for name, value in params.items():
        if value <= 0:
            raise SignatureError(f"{name} must be positive, got {value}")


def expected_candidates(
    s_size: int,
    data_cardinality: float,
    query_cardinality: float,
    bits: int,
) -> float:
    """Estimate ``N``: S-tuples whose signature is ⊑ one query signature.

    Paper derivation: each element of a data set lands on one of ``b`` bits
    uniformly; for the data signature to be contained in the query signature
    every data element must land on one of the query's ``c_q`` set positions,
    with probability ``c_q / b`` each.  Hence

        N = |S| * (c_q / b) ** c_d
    """
    _check_positive(s_size=s_size, data_cardinality=data_cardinality,
                    query_cardinality=query_cardinality, bits=bits)
    p = min(query_cardinality / bits, 1.0)
    return s_size * p ** data_cardinality


def expected_candidates_uniform_cardinality(
    s_size: int,
    max_data_cardinality: int,
    query_cardinality: float,
    bits: int,
) -> float:
    """The paper's refinement when ``c_d`` is uniform on ``[1, c_d_max]``.

    Averages ``p ** k`` over ``k = 1..c_d_max`` (a finite geometric series):

        N = |S| * (p + p^2 + ... + p^cd) / cd = |S| * p(1 - p^cd) / (cd (1 - p))
    """
    _check_positive(s_size=s_size, max_data_cardinality=max_data_cardinality,
                    query_cardinality=query_cardinality, bits=bits)
    p = min(query_cardinality / bits, 1.0)
    cd = max_data_cardinality
    if p >= 1.0:
        return float(s_size)
    series = p * (1.0 - p ** cd) / (1.0 - p)
    return s_size * series / cd


def expected_trie_height(s_size: int) -> float:
    """Average Patricia-trie height ``H ~ log2(2 |S|)`` for a balanced trie.

    Sec. III-C2: with higher cardinalities the trie is near balanced, so the
    height approaches ``log2`` of the node count (at most ``2|S|`` nodes).
    """
    _check_positive(s_size=s_size)
    return math.log2(2 * s_size)


def expected_visited_nodes(
    s_size: int,
    set_cardinality: float,
    bits: int,
) -> float:
    """Estimate ``V``: Patricia-trie nodes visited per query (formula 2).

    Paper formula (2): with ``x = (1 - c/b) * H`` single-branch levels at the
    bottom of the trie,

        V = (1 + H (1 - c/b)) * 2 ** (H * c / b)   <=   (1 + H) * |S| ** (c/b)
    """
    _check_positive(s_size=s_size, set_cardinality=set_cardinality, bits=bits)
    h = expected_trie_height(s_size)
    ratio = min(set_cardinality / bits, 1.0)
    return (1.0 + h * (1.0 - ratio)) * 2.0 ** (h * ratio)


def query_cost_upper_bound(
    r_size: int,
    s_size: int,
    set_cardinality: float,
    bits: int,
    int_bits: int = 32,
) -> float:
    """Upper bound on ``C_query_PT`` in integer comparisons (formula 1).

        C_query_PT <= |R| * V * (b / (H * Int) + 1)
    """
    _check_positive(r_size=r_size, int_bits=int_bits)
    v = expected_visited_nodes(s_size, set_cardinality, bits)
    h = expected_trie_height(s_size)
    return r_size * v * (bits / (h * int_bits) + 1.0)


@dataclass(frozen=True, slots=True)
class PTSJCostEstimate:
    """A full Sec. III-C cost breakdown for one workload configuration.

    All quantities are *model units* (expected counts of elementary
    operations), not seconds.

    Attributes:
        candidates_per_query: ``N``.
        visited_nodes_per_query: ``V``.
        trie_height: ``H``.
        create_cost: Trie construction bound ``|S| * b`` bit steps.
        query_cost: ``C_query_PT`` upper bound (integer comparisons).
        compare_cost: ``C_compare_set = N * c * |R|`` element comparisons.
    """

    candidates_per_query: float
    visited_nodes_per_query: float
    trie_height: float
    create_cost: float
    query_cost: float
    compare_cost: float

    @property
    def total(self) -> float:
        """Sum of the three cost components (model units)."""
        return self.create_cost + self.query_cost + self.compare_cost


def estimate_ptsj_cost(
    r_size: int,
    s_size: int,
    set_cardinality: float,
    bits: int,
    int_bits: int = 32,
) -> PTSJCostEstimate:
    """Evaluate the whole Sec. III-C model at one configuration.

    The model's qualitative predictions (checked in tests):

    * ``N`` shrinks as ``b`` grows and grows with ``|S|``;
    * ``V`` grows with ``|S|`` and ``c``, shrinks as ``b`` grows;
    * the total has an interior minimum in ``b`` — the basis for the
      Sec. III-D sweet spot.
    """
    n = expected_candidates(s_size, set_cardinality, set_cardinality, bits)
    v = expected_visited_nodes(s_size, set_cardinality, bits)
    h = expected_trie_height(s_size)
    return PTSJCostEstimate(
        candidates_per_query=n,
        visited_nodes_per_query=v,
        trie_height=h,
        create_cost=float(s_size) * bits,
        query_cost=query_cost_upper_bound(r_size, s_size, set_cardinality, bits, int_bits),
        compare_cost=n * set_cardinality * r_size,
    )
