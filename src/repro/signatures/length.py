"""Signature-length selection (paper Sec. III-D).

PTSJ accepts signatures of thousands of bits because its Patricia trie never
enumerates the exponential subset space.  The paper derives three constraints
on the length ``b``:

* **Upper bound** ``b <= d`` (domain cardinality): at ``b = d`` the signature
  *is* an exact bitmap of the set, so longer signatures add nothing.
* **Lower bound** ``b >= c`` (set cardinality): below ``c`` most signatures
  saturate to all-ones and filter nothing.
* **Sweet spot** ``c/2 * Int <= b <= c * Int`` where ``Int`` is the machine
  word size in bits (32 in the paper's Java implementation), i.e. a ratio
  ``b/c`` between 16 and 32 — validated by the paper's Fig. 5 and by this
  repository's ``benchmarks/test_fig5_signature_length.py``.
* **Cap** ``b <= 256 * Int`` to bound memory.

The final strategy is ``b = min(d, (c/2) * Int, 256 * Int)`` using the lower
end of the sweet spot, clamped below by ``c``.
"""

from __future__ import annotations

import math

from repro.errors import SignatureError

__all__ = ["SignatureLengthStrategy", "choose_signature_length"]

#: Word size the paper's analysis assumes (Java ``int``).
DEFAULT_INT_BITS = 32

#: The paper caps signatures at 256 machine words.
DEFAULT_MAX_WORDS = 256


class SignatureLengthStrategy:
    """The Sec. III-D signature-length rule, as a reusable object.

    Args:
        int_bits: Machine word size ``Int`` in bits.  The paper uses 32.
        max_words: Hard cap expressed in words (paper: 256).
        ratio: Target ``b/c`` ratio divided by ``int_bits``; the paper uses
            the lower bound of the sweet spot, i.e. ``ratio = 0.5`` giving
            ``b = (c/2) * Int`` (ratio ``b/c = 16`` when ``Int = 32``).

    Raises:
        SignatureError: On non-positive parameters.
    """

    __slots__ = ("int_bits", "max_words", "ratio")

    def __init__(
        self,
        int_bits: int = DEFAULT_INT_BITS,
        max_words: int = DEFAULT_MAX_WORDS,
        ratio: float = 0.5,
    ) -> None:
        if int_bits <= 0 or max_words <= 0 or ratio <= 0:
            raise SignatureError("int_bits, max_words and ratio must be positive")
        self.int_bits = int_bits
        self.max_words = max_words
        self.ratio = ratio

    def choose(self, set_cardinality: float, domain_cardinality: int) -> int:
        """Pick ``b`` for a dataset with average cardinality ``c`` and domain ``d``.

        Implements ``b = min(d, ratio * c * Int, max_words * Int)`` and then
        clamps to ``b >= max(c, 1)`` (the paper's lower bound) and ``b >= 8``
        so degenerate datasets still get a usable signature.

        Args:
            set_cardinality: Average set cardinality ``c`` (may be fractional).
            domain_cardinality: Domain size ``d``.

        Raises:
            SignatureError: If either argument is non-positive.
        """
        if set_cardinality <= 0:
            raise SignatureError(f"set cardinality must be positive, got {set_cardinality}")
        if domain_cardinality <= 0:
            raise SignatureError(f"domain cardinality must be positive, got {domain_cardinality}")
        target = int(math.ceil(self.ratio * set_cardinality * self.int_bits))
        lower = max(int(math.ceil(set_cardinality)), 8)
        cap = self.max_words * self.int_bits
        # Respect the b >= c lower bound first, then let the hard caps win:
        # the 256-word cap bounds memory absolutely, and b = d is an exact
        # bitmap (no false positives), so exceeding d is never useful.
        return min(max(target, lower), cap, domain_cardinality)

    def __repr__(self) -> str:
        return (
            f"<SignatureLengthStrategy Int={self.int_bits} "
            f"cap={self.max_words} words ratio={self.ratio}>"
        )


def choose_signature_length(
    set_cardinality: float,
    domain_cardinality: int,
    int_bits: int = DEFAULT_INT_BITS,
    max_words: int = DEFAULT_MAX_WORDS,
) -> int:
    """Functional shortcut for :class:`SignatureLengthStrategy` with defaults.

    >>> choose_signature_length(16, 2 ** 14)   # (c/2) * 32 = 256 bits
    256
    >>> choose_signature_length(16, 100)       # capped by the domain
    100
    """
    return SignatureLengthStrategy(int_bits=int_bits, max_words=max_words).choose(
        set_cardinality, domain_cardinality
    )
