"""Fixed-length signature bitmaps backed by Python ints.

A *signature* (Sec. II-A of the paper) is a ``b``-bit string.  We store it in
an arbitrary-precision Python int, which gives the same bit-parallel AND/NOT
kernels the paper gets from arrays of Java ints.

Bit-order convention (used by every trie in this package):
    Logical bit position ``i`` (``0 <= i < b``), where position 0 is the
    *first* bit examined at the trie root, lives at int shift ``b - 1 - i``.
    In other words signatures read MSB-first, so integer comparison order
    equals root-to-leaf trie order and slicing a bit segment is a single
    shift-and-mask.

The containment relation between signatures (paper notation ``sig1 ⊑ sig2``)
is ``sig1 & ~sig2 == 0``: every set bit of ``sig1`` is set in ``sig2``.

Scalar ops live here; their *batch* forms (filter a whole packed array
of signatures against one probe in a single call) route through the
swappable kernel layer (:mod:`repro.kernels`) so a vectorized backend
can serve them — see :func:`pack_signatures` / :func:`filter_subset_batch`.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SignatureError
from repro.kernels import SignaturePack, get_backend

__all__ = [
    "is_subset_sig",
    "is_superset_sig",
    "popcount",
    "hamming",
    "get_bit",
    "bit_segment",
    "set_bit",
    "sig_to_bits",
    "bits_to_sig",
    "full_mask",
    "validate_signature",
    "pack_signatures",
    "filter_subset_batch",
    "filter_superset_batch",
    "popcount_batch",
]


def validate_signature(sig: int, bits: int) -> None:
    """Check that ``sig`` is a valid ``bits``-wide signature.

    Raises:
        SignatureError: If ``bits`` is not positive, ``sig`` is negative, or
            ``sig`` has bits set beyond position ``bits - 1``.
    """
    if bits <= 0:
        raise SignatureError(f"signature length must be positive, got {bits}")
    if sig < 0:
        raise SignatureError(f"signature must be non-negative, got {sig}")
    if sig >> bits:
        raise SignatureError(f"signature 0x{sig:x} does not fit in {bits} bits")


def full_mask(bits: int) -> int:
    """The all-ones signature of width ``bits``."""
    if bits <= 0:
        raise SignatureError(f"signature length must be positive, got {bits}")
    return (1 << bits) - 1


def is_subset_sig(sub: int, sup: int) -> bool:
    """The paper's ``sub ⊑ sup``: every 1-bit of ``sub`` is set in ``sup``.

    This is the signature filter used by every signature-based join: if
    ``t1.set ⊆ t2.set`` then ``sig(t1) ⊑ sig(t2)`` (but not conversely).
    """
    return sub & ~sup == 0


def is_superset_sig(sup: int, sub: int) -> bool:
    """True iff ``sup`` covers ``sub`` (alias with operands swapped)."""
    return sub & ~sup == 0


def popcount(sig: int) -> int:
    """Number of set bits (Python 3.8+: constant-time C implementation)."""
    return sig.bit_count()


def hamming(a: int, b: int) -> int:
    """Hamming distance between two equal-width signatures."""
    return (a ^ b).bit_count()


def get_bit(sig: int, position: int, bits: int) -> int:
    """Logical bit ``position`` of ``sig`` under the MSB-first convention.

    ``position`` 0 is the bit the trie root branches on.
    """
    return (sig >> (bits - 1 - position)) & 1


def set_bit(sig: int, position: int, bits: int) -> int:
    """Return ``sig`` with logical bit ``position`` set to 1."""
    if not 0 <= position < bits:
        raise SignatureError(f"bit position {position} outside [0, {bits})")
    return sig | (1 << (bits - 1 - position))


def bit_segment(sig: int, start: int, stop: int, bits: int) -> int:
    """Extract logical bits ``[start, stop)`` of ``sig`` as an int.

    The returned value has ``stop - start`` significant bits, MSB-first —
    the representation Patricia-trie nodes store their merged prefix in.

    >>> bit_segment(0b0111, 1, 3, 4)   # bits '11' of '0111'
    3
    """
    if not 0 <= start <= stop <= bits:
        raise SignatureError(f"segment [{start}, {stop}) outside [0, {bits}]")
    width = stop - start
    if width == 0:
        return 0
    return (sig >> (bits - stop)) & ((1 << width) - 1)


def sig_to_bits(sig: int, bits: int) -> str:
    """Render ``sig`` as a ``bits``-character binary string (MSB first).

    Matches the paper's figures, e.g. signature 0111 for tuple ``u1``.
    """
    validate_signature(sig, bits)
    return format(sig, f"0{bits}b")


def pack_signatures(
    signatures: Sequence[int], bits: int, backend: str | None = None
) -> SignaturePack:
    """Pack many signatures for batch filtering (kernel-layer entry point).

    Args:
        signatures: ``bits``-wide ints, in the order row indices should
            refer to.
        bits: Signature width.
        backend: Kernel backend name, or ``None`` for the process default.

    The pack remembers which backend built it; the batch filters below
    always dispatch to that backend, so a pack built at index time keeps
    working even if the process default changes later.
    """
    return get_backend(backend).pack_signatures(signatures, bits)


def filter_subset_batch(pack: SignaturePack, probe: int) -> list[int]:
    """Batch ``⊑``: ascending rows ``i`` of ``pack`` with ``pack[i] ⊑ probe``.

    One call replaces a per-candidate :func:`is_subset_sig` loop — the
    signature filter of every containment join, vectorized when the
    pack's backend supports it.
    """
    return get_backend(pack.backend).filter_subset_batch(pack, probe)


def filter_superset_batch(pack: SignaturePack, probe: int) -> list[int]:
    """Batch superset filter: rows ``i`` with ``probe ⊑ pack[i]``."""
    return get_backend(pack.backend).filter_superset_batch(pack, probe)


def popcount_batch(pack: SignaturePack) -> list[int]:
    """Per-row :func:`popcount` of a pack, in packing order."""
    return get_backend(pack.backend).popcount_batch(pack)


def bits_to_sig(text: str) -> int:
    """Parse a binary string (as printed in the paper's figures) to an int.

    Raises:
        SignatureError: If ``text`` is empty or has non-binary characters.
    """
    if not text or any(ch not in "01" for ch in text):
        raise SignatureError(f"not a binary string: {text!r}")
    return int(text, 2)
