"""Signature bitmaps: hashing, bit algebra, length selection, cost model.

This package is the substrate of every signature-based join (SHJ, TSJ, PTSJ):

* :mod:`repro.signatures.bitmap` — bit algebra on int-backed signatures.
* :mod:`repro.signatures.hashing` — set -> signature hash schemes.
* :mod:`repro.signatures.length` — the Sec. III-D length strategy.
* :mod:`repro.signatures.cost_model` — the Sec. III-C analytical model.
"""

from repro.signatures.bitmap import (
    bit_segment,
    bits_to_sig,
    full_mask,
    get_bit,
    hamming,
    is_subset_sig,
    is_superset_sig,
    popcount,
    set_bit,
    sig_to_bits,
    validate_signature,
)
from repro.signatures.cost_model import (
    PTSJCostEstimate,
    estimate_ptsj_cost,
    expected_candidates,
    expected_candidates_uniform_cardinality,
    expected_trie_height,
    expected_visited_nodes,
    query_cost_upper_bound,
)
from repro.signatures.hashing import (
    ModuloScheme,
    ScrambleScheme,
    SignatureScheme,
    signature_of,
)
from repro.signatures.length import SignatureLengthStrategy, choose_signature_length

__all__ = [
    "is_subset_sig",
    "is_superset_sig",
    "popcount",
    "hamming",
    "get_bit",
    "set_bit",
    "bit_segment",
    "sig_to_bits",
    "bits_to_sig",
    "full_mask",
    "validate_signature",
    "SignatureScheme",
    "ModuloScheme",
    "ScrambleScheme",
    "signature_of",
    "SignatureLengthStrategy",
    "choose_signature_length",
    "PTSJCostEstimate",
    "estimate_ptsj_cost",
    "expected_candidates",
    "expected_candidates_uniform_cardinality",
    "expected_trie_height",
    "expected_visited_nodes",
    "query_cost_upper_bound",
]
