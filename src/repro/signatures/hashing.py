"""Signature hash functions: set values -> fixed-length bitmaps.

Sec. II-A defines a signature hash ``h`` as any function with the soundness
property ``t1.set ⊆ t2.set  ⇒  h(t1.set) ⊑ h(t2.set)``.  The paper's
"straightforward implementation" sets, for every element ``x`` of the set,
bit ``x mod b`` of a ``b``-bit string.  Any *per-element* hash keeps the
soundness property, so this module also offers a scrambled variant that
decorrelates adjacent domain values (useful when the domain is clustered).

All functions honour the MSB-first bit convention of
:mod:`repro.signatures.bitmap`: element ``x`` sets *logical* position
``x mod b``, i.e. int bit ``b - 1 - (x mod b)``.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import SignatureError

__all__ = [
    "SignatureScheme",
    "ModuloScheme",
    "ScrambleScheme",
    "signature_of",
]

# splitmix64 constants; the scrambled scheme uses the full finalizer —
# a single multiply-xor-shift leaves low bits of consecutive inputs
# correlated, which is fatal when ``bits`` is a power of two.
_SCRAMBLE_INCREMENT = 0x9E3779B97F4A7C15
_SCRAMBLE_MULT_1 = 0xBF58476D1CE4E5B9
_SCRAMBLE_MULT_2 = 0x94D049BB133111EB
_SCRAMBLE_MASK = (1 << 64) - 1


class SignatureScheme:
    """Base class for signature hash functions.

    A scheme fixes the signature length ``bits`` and maps each element to one
    bit position via :meth:`bit_of`.  Subclasses override :meth:`bit_of`
    only; :meth:`signature` implements the shared fold.

    Args:
        bits: Signature length ``b`` in bits (positive).

    Raises:
        SignatureError: If ``bits`` is not positive.
    """

    __slots__ = ("bits",)

    def __init__(self, bits: int) -> None:
        if bits <= 0:
            raise SignatureError(f"signature length must be positive, got {bits}")
        self.bits = bits

    def bit_of(self, element: int) -> int:
        """Logical bit position (0-based, MSB-first) for ``element``."""
        raise NotImplementedError

    def signature(self, elements: Iterable[int]) -> int:
        """Fold a set of elements into one signature int.

        The empty set maps to signature 0, which is ``⊑`` every signature —
        consistent with the empty set being a subset of every set.
        """
        bits = self.bits
        sig = 0
        for x in elements:
            sig |= 1 << (bits - 1 - self.bit_of(x))
        return sig

    def __repr__(self) -> str:
        return f"<{type(self).__name__} b={self.bits}>"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.bits == other.bits  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.bits))


class ModuloScheme(SignatureScheme):
    """The paper's scheme: element ``x`` sets bit ``x mod b``."""

    __slots__ = ()

    def bit_of(self, element: int) -> int:
        return element % self.bits


class ScrambleScheme(SignatureScheme):
    """Multiplicative scrambling before the modulo.

    Elements that are numerically adjacent (common after dictionary
    encoding) land on decorrelated bits, which reduces signature collisions
    on clustered domains.  Still a per-element hash, so the soundness
    property of Sec. II-A holds.
    """

    __slots__ = ()

    def bit_of(self, element: int) -> int:
        z = (element + _SCRAMBLE_INCREMENT) & _SCRAMBLE_MASK
        z = ((z ^ (z >> 30)) * _SCRAMBLE_MULT_1) & _SCRAMBLE_MASK
        z = ((z ^ (z >> 27)) * _SCRAMBLE_MULT_2) & _SCRAMBLE_MASK
        z ^= z >> 31
        return z % self.bits


def signature_of(
    elements: Iterable[int],
    bits: int,
    scheme: Callable[[int], SignatureScheme] = ModuloScheme,
) -> int:
    """One-shot helper: build a scheme and hash ``elements``.

    Prefer constructing a :class:`SignatureScheme` once when hashing many
    sets; this helper exists for examples and tests.
    """
    return scheme(bits).signature(elements)
