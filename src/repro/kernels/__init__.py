"""Swappable batch probe kernels behind a backend registry.

The per-record Python probe loop is the system's hot path; this package
factors its two inner operations — batch signature containment filters
and sorted posting-list intersection — into a small ABI
(:class:`~repro.kernels.base.KernelBackend`) with interchangeable
implementations:

* ``python`` — pure stdlib, always available, defines the reference
  bit-for-bit semantics;
* ``numpy`` — packed ``uint64`` signature matrices with vectorized
  bit-ops; optional import, auto-selected when importable.

Selection order (mirrors the dux ``native_scanner``/``python_scanner``
dual-backend pattern):

1. An explicit ``set_default_backend(name)`` call (the CLI's
   ``--backend`` flag goes through this).
2. The ``REPRO_KERNEL`` environment variable — forcing an unavailable
   backend raises :class:`KernelUnavailableError` loudly rather than
   silently falling back (CI relies on this to prove the forced-python
   leg really ran pure Python).
3. Auto-selection down :data:`AUTO_ORDER`: the first constructible
   backend wins (``numpy`` when installed, else ``python``).

Resolution is lazy (first ``get_backend()`` call) and cached; backends
are stateless singletons and pickle by name, so prepared indexes that
captured one at build time reconnect to the worker process's instance.

See ``docs/KERNELS.md`` for the ABI and the cross-backend parity
contract.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.analysis.concurrency import tracked_lock
from repro.kernels.base import KernelBackend, KernelUnavailableError, SignaturePack
from repro.kernels.numpy_backend import NumpyKernel
from repro.kernels.python_backend import PythonKernel

__all__ = [
    "AUTO_ORDER",
    "ENV_VAR",
    "KernelBackend",
    "KernelUnavailableError",
    "SignaturePack",
    "active_backend_name",
    "available_backends",
    "backend_source",
    "get_backend",
    "register_backend",
    "registered_backends",
    "set_default_backend",
    "use_backend",
]

#: Environment variable forcing a backend for the whole process.
ENV_VAR = "REPRO_KERNEL"

#: Auto-selection preference, best first.
AUTO_ORDER = ("numpy", "python")

# Registry lock: guards the factory/instance tables and default
# resolution.  Tracked under REPRO_RACEDETECT; it must stay a leaf in the
# documented lock order (docs/ANALYSIS.md) — nothing under it may call
# back out of the registry.
_lock = tracked_lock("kernels.registry")
_factories: dict[str, Callable[[], KernelBackend]] = {}
_instances: dict[str, KernelBackend] = {}
#: Resolved default backend name, or None if not yet resolved.
_active: str | None = None
#: How the active backend was chosen: "explicit", "env" or "auto".
_source: str = "auto"


def register_backend(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register a backend constructor under ``name``.

    The factory may raise :class:`KernelUnavailableError` (or
    ``ImportError``) when the backend cannot run on this host; such
    backends are simply absent from :func:`available_backends`.
    Re-registering a name replaces the factory and drops any cached
    instance (useful for tests injecting probes).
    """
    with _lock:
        _factories[name] = factory
        _instances.pop(name, None)


def _construct(name: str) -> KernelBackend:
    """Build (or fetch the cached) instance for ``name``; may raise."""
    instance = _instances.get(name)
    if instance is None:
        try:
            factory = _factories[name]
        except KeyError:
            known = ", ".join(sorted(_factories))
            raise KernelUnavailableError(
                f"unknown kernel backend {name!r} (registered: {known})"
            ) from None
        try:
            instance = factory()
        except (KernelUnavailableError, ImportError) as exc:
            raise KernelUnavailableError(
                f"kernel backend {name!r} is not available on this host: {exc}"
            ) from exc
        _instances[name] = instance
    return instance


def registered_backends() -> tuple[str, ...]:
    """Every registered backend name, available on this host or not.

    Order follows :data:`AUTO_ORDER` first, then extra registrations
    alphabetically — the same order :func:`available_backends` uses.
    """
    with _lock:
        ordered = [n for n in AUTO_ORDER if n in _factories]
        ordered += sorted(n for n in _factories if n not in AUTO_ORDER)
        return tuple(ordered)


def available_backends() -> tuple[str, ...]:
    """Names of the registered backends that construct on this host.

    Order follows :data:`AUTO_ORDER` first (selection preference), then
    any additionally registered names sorted alphabetically.
    """
    with _lock:
        ordered = [n for n in AUTO_ORDER if n in _factories]
        ordered += sorted(n for n in _factories if n not in AUTO_ORDER)
        out = []
        for name in ordered:
            try:
                _construct(name)
            except KernelUnavailableError:
                continue
            out.append(name)
        return tuple(out)


def _resolve_default_locked() -> str:
    """Resolve the process default backend name (caller holds ``_lock``)."""
    global _active, _source
    if _active is not None:
        return _active
    forced = os.environ.get(ENV_VAR)
    if forced:
        _construct(forced)  # raises loudly if the forced backend is broken
        _active, _source = forced, "env"
        return _active
    for name in AUTO_ORDER:
        if name not in _factories:
            continue
        try:
            _construct(name)
        except KernelUnavailableError:
            continue
        _active, _source = name, "auto"
        return _active
    raise KernelUnavailableError(
        "no kernel backend is available (not even 'python'); "
        "the registry has been tampered with"
    )


def get_backend(name: str | None = None) -> KernelBackend:
    """Return a backend instance.

    Args:
        name: Explicit backend name, or ``None`` for the process default
            (explicit setting, else ``REPRO_KERNEL``, else auto).

    Raises:
        KernelUnavailableError: Unknown name, or the backend cannot be
            constructed on this host.
    """
    # Lock-free fast path for the hot probe loop: once the default is
    # resolved its instance is cached, and CPython dict reads are atomic.
    target = _active if name is None else name
    if target is not None:
        instance = _instances.get(target)
        if instance is not None and (name is not None or _active == target):
            return instance
    with _lock:
        if name is None:
            name = _resolve_default_locked()
        return _construct(name)


def active_backend_name() -> str:
    """Name of the process-default backend (resolving it if needed)."""
    with _lock:
        return _resolve_default_locked()


def backend_source() -> str:
    """How the default was chosen: ``"explicit"``, ``"env"`` or ``"auto"``.

    Resolves the default first, so the answer is never stale.
    """
    with _lock:
        _resolve_default_locked()
        return _source


def set_default_backend(name: str) -> str:
    """Set the process-default backend; returns the *previous* default.

    The backend is constructed eagerly so a bad name fails here, not in
    the middle of a join.
    """
    global _active, _source
    with _lock:
        previous = _resolve_default_locked()
        _construct(name)
        _active, _source = name, "explicit"
        return previous


@contextmanager
def use_backend(name: str) -> Iterator[KernelBackend]:
    """Temporarily make ``name`` the process default (tests, benchmarks).

    Not safe to nest across threads that resolve backends concurrently —
    the default is process-global by design (prepared indexes capture
    their backend at build time, so in-flight probes are unaffected).
    """
    global _active, _source
    with _lock:
        prev_active, prev_source = _resolve_default_locked(), _source
        instance = _construct(name)
        _active, _source = name, "explicit"
    try:
        yield instance
    finally:
        with _lock:
            _active, _source = prev_active, prev_source


register_backend("python", PythonKernel)
register_backend("numpy", NumpyKernel)
