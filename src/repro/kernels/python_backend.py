"""The pure-stdlib kernel backend — the reference semantics.

This backend *is* the behaviour every other backend must reproduce
bit-for-bit: arbitrary-precision-int signature filtering
(``sub & ~sup == 0``) and the adaptive merge/galloping sorted-list
intersection that previously lived in :mod:`repro.index.inverted`.
It has no dependencies beyond the standard library, so it is always
available and serves as the auto-selection fallback.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from repro.kernels.base import KernelBackend, SignaturePack

__all__ = [
    "GALLOP_RATIO",
    "PythonKernel",
    "PythonSignaturePack",
    "gallop_intersect",
    "merge_intersect",
]

#: Below this length ratio the plain linear merge wins over galloping
#: ("Fast Set Intersection in Memory": galloping pays off only when one
#: list is much shorter than the other).
GALLOP_RATIO = 8


def gallop_intersect(small: Sequence[int], large: Sequence[int]) -> list[int]:
    """Intersect two ascending lists where ``small`` is much shorter.

    For each item of ``small``, binary-search ``large`` within a window
    that only moves forward — O(|small| * log |large|).
    """
    out: list[int] = []
    lo = 0
    hi = len(large)
    for value in small:
        lo = bisect_left(large, value, lo, hi)
        if lo == hi:
            break
        if large[lo] == value:
            out.append(value)
            lo += 1
    return out


def merge_intersect(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Classic two-pointer merge intersection of ascending lists."""
    out: list[int] = []
    i = j = 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        x, y = a[i], b[j]
        if x == y:
            out.append(x)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return out


class PythonSignaturePack(SignaturePack):
    """Packed form for the pure backend: just the signature tuple."""

    __slots__ = ("signatures",)

    def __init__(self, signatures: Sequence[int], bits: int) -> None:
        super().__init__("python", bits, len(signatures))
        self.signatures = tuple(signatures)


class PythonKernel(KernelBackend):
    """Pure-Python kernels; always available, defines the parity contract."""

    name = "python"

    def pack_signatures(self, signatures: Sequence[int], bits: int) -> PythonSignaturePack:
        return PythonSignaturePack(signatures, bits)

    def filter_subset_batch(self, pack: SignaturePack, probe: int) -> list[int]:
        assert isinstance(pack, PythonSignaturePack)
        mask = ~probe
        return [i for i, sig in enumerate(pack.signatures) if sig & mask == 0]

    def filter_superset_batch(self, pack: SignaturePack, probe: int) -> list[int]:
        assert isinstance(pack, PythonSignaturePack)
        return [i for i, sig in enumerate(pack.signatures) if probe & ~sig == 0]

    def popcount_batch(self, pack: SignaturePack) -> list[int]:
        assert isinstance(pack, PythonSignaturePack)
        return [sig.bit_count() for sig in pack.signatures]

    def intersect_sorted(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Adaptive strategy: lists within a factor ``GALLOP_RATIO`` of
        each other in length take the linear merge; otherwise galloping
        on the longer list wins."""
        if not a or not b:
            return []
        if len(a) > len(b):
            a, b = b, a
        if len(b) > GALLOP_RATIO * len(a):
            return gallop_intersect(a, b)
        return merge_intersect(a, b)
