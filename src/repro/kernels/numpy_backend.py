"""The numpy kernel backend: packed ``uint64`` signature matrices.

Signatures are packed MSB-first into ``ceil(bits / 64)`` 64-bit words
per row, so an ``[n, words]`` ``uint64`` matrix holds a whole bucket
(or relation) and one vectorized ``&``/``== 0`` pass answers the
containment filter for every row at once — the batch form of
``sub & ~sup == 0``.

numpy is an *optional* dependency of this module alone (lint rule
RPR010 keeps it from leaking anywhere else outside ``repro/kernels/``
and the data-generation layer).  When numpy is missing, constructing
:class:`NumpyKernel` raises :class:`KernelUnavailableError` and the
registry's auto-selection falls back to the pure-Python backend.

Parity: all outputs are plain Python ints in the same order the
``python`` backend produces, which the backend-parametrized
differential and golden suites verify bit-for-bit.
"""

from __future__ import annotations

from typing import Sequence

from repro.kernels.base import KernelBackend, KernelUnavailableError, SignaturePack
from repro.kernels.python_backend import PythonKernel

try:  # pragma: no cover - exercised implicitly by backend availability
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less hosts
    _np = None  # type: ignore[assignment]

__all__ = ["NumpyKernel", "NumpySignaturePack"]

#: Below this size the numpy call overhead loses to the pure merge, so
#: ``intersect_sorted`` delegates tiny inputs to the python kernels.
#: Purely a performance crossover: both paths return identical lists.
_SMALL_INTERSECT = 64


def _to_matrix(signatures: Sequence[int], bits: int, np) -> "tuple":
    """Pack ints into an ``[n, words]`` native-endian uint64 matrix."""
    words = max(1, (bits + 63) // 64)
    if not signatures:
        return np.empty((0, words), dtype=np.uint64), words
    buf = b"".join(sig.to_bytes(words * 8, "big") for sig in signatures)
    matrix = (
        np.frombuffer(buf, dtype=">u8")
        .reshape(len(signatures), words)
        .astype(np.uint64)
    )
    return matrix, words


class NumpySignaturePack(SignaturePack):
    """Packed signatures as a ``[n, words]`` ``uint64`` matrix.

    ``inverse`` holds ``~matrix``, precomputed once so the superset
    filter never materializes an ``[n, words]`` temporary per probe —
    both filters are memory-bound, so per-call full-size temporaries are
    the dominant cost.
    """

    __slots__ = ("matrix", "inverse", "words")

    def __init__(self, signatures: Sequence[int], bits: int, np) -> None:
        super().__init__("numpy", bits, len(signatures))
        self.matrix, self.words = _to_matrix(signatures, bits, np)
        self.inverse = ~self.matrix


class NumpyKernel(KernelBackend):
    """Vectorized batch kernels over packed uint64 signature matrices.

    Raises:
        KernelUnavailableError: If numpy is not importable on this host.
    """

    name = "numpy"

    def __init__(self) -> None:
        if _np is None:
            raise KernelUnavailableError(
                "numpy is not installed; use the 'python' kernel backend"
            )
        self._np = _np

    def pack_signatures(self, signatures: Sequence[int], bits: int) -> NumpySignaturePack:
        return NumpySignaturePack(signatures, bits, self._np)

    def _probe_words(self, probe: int, words: int):
        np = self._np
        return np.frombuffer(
            probe.to_bytes(words * 8, "big"), dtype=">u8"
        ).astype(np.uint64)

    def filter_subset_batch(self, pack: SignaturePack, probe: int) -> list[int]:
        # A row is admitted when every word of ``row & ~probe`` is zero;
        # ``any`` on the masked uint64 words tests that directly, without
        # a full-size ``== 0`` boolean intermediate.
        assert isinstance(pack, NumpySignaturePack)
        if len(pack) == 0:
            return []
        np = self._np
        mask = ~self._probe_words(probe, pack.words)
        conflicts = (pack.matrix & mask).any(axis=1)
        return np.flatnonzero(~conflicts).tolist()

    def filter_superset_batch(self, pack: SignaturePack, probe: int) -> list[int]:
        assert isinstance(pack, NumpySignaturePack)
        if len(pack) == 0:
            return []
        np = self._np
        probe_words = self._probe_words(probe, pack.words)
        conflicts = (probe_words & pack.inverse).any(axis=1)
        return np.flatnonzero(~conflicts).tolist()

    def popcount_batch(self, pack: SignaturePack) -> list[int]:
        assert isinstance(pack, NumpySignaturePack)
        if len(pack) == 0:
            return []
        np = self._np
        counts = np.bitwise_count(pack.matrix)
        return counts.sum(axis=1, dtype=np.int64).tolist()

    def intersect_sorted(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        if not a or not b:
            return []
        if min(len(a), len(b)) < _SMALL_INTERSECT:
            return _PYTHON_FALLBACK.intersect_sorted(a, b)
        np = self._np
        out = np.intersect1d(
            np.asarray(a, dtype=np.int64),
            np.asarray(b, dtype=np.int64),
            assume_unique=True,
        )
        return out.tolist()


#: Small-input intersect fallback; the pure backend is always constructible.
_PYTHON_FALLBACK = PythonKernel()
