"""The kernel ABI: what a probe-kernel backend must provide.

Every layer above the probe loop — prepared indexes, the executor stack,
the planner, the join server's warm path — ultimately funnels into two
tight inner operations: the signature containment filter
(``sub & ~sup == 0`` per candidate) and sorted posting-list
intersection.  A :class:`KernelBackend` packages *batch* forms of both
so one call can filter every candidate of a bucket (or a whole
relation) for a probe record instead of a per-candidate Python loop.

The ABI is deliberately small:

``pack_signatures(signatures, bits)``
    Pre-process a relation's (or bucket's) signatures once, at index
    build time, into whatever layout the backend filters fastest —
    a plain tuple for the pure-Python backend, a packed ``uint64``
    matrix for the numpy backend.  The resulting
    :class:`SignaturePack` is cached on the prepared index and reused
    by every probe.

``filter_subset_batch(pack, probe)`` / ``filter_superset_batch(pack, probe)``
    Return the *indices* (ascending) of packed signatures that pass the
    containment filter against one probe signature.  Index order equals
    packing order, so callers translate rows back to entries/records
    without the backend knowing about either.

``popcount_batch(pack)``
    Per-row set-bit counts (signature weights), used for statistics and
    cost modelling.

``intersect_sorted(a, b)``
    Intersection of two strictly-increasing integer sequences — the
    PRETTI-family refinement step.  The adaptive gallop/merge crossover
    policy ("Fast Set Intersection in Memory") lives behind this call.

Parity contract
---------------
Backends must be *bit-for-bit interchangeable*: for any valid inputs,
every method returns exactly the same Python values on every backend
(same ids, same order).  Differential and golden tests run the full
join suite under each available backend and require identical pairs
and identical ``JoinStats`` counters; ``docs/KERNELS.md`` spells out
the contract.

``intersect_sorted`` inputs are **strictly increasing** sequences (the
inverted index and all candidate lists guarantee this); behaviour on
inputs with duplicates is backend-defined.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.errors import ReproError

__all__ = ["KernelBackend", "KernelUnavailableError", "SignaturePack"]


class KernelUnavailableError(ReproError):
    """A requested kernel backend cannot be constructed on this host."""


class SignaturePack:
    """Backend-opaque packed form of a list of signatures.

    Built once by :meth:`KernelBackend.pack_signatures` and handed back
    to the same backend's batch filters.  Subclasses add the actual
    storage; this base records what every consumer needs to reason
    about a pack without unpacking it.

    Attributes:
        backend: Name of the backend that built (and can consume) it.
        bits: Signature width the pack was built for.
    """

    __slots__ = ("backend", "bits", "_count")

    def __init__(self, backend: str, bits: int, count: int) -> None:
        self.backend = backend
        self.bits = bits
        self._count = count

    def __len__(self) -> int:
        """Number of packed signatures (rows)."""
        return self._count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} backend={self.backend} "
            f"n={self._count} bits={self.bits}>"
        )


class KernelBackend(ABC):
    """One implementation of the batch probe kernels.

    Backends are stateless singletons resolved through the registry in
    :mod:`repro.kernels`; they pickle by name (see ``__reduce__``), so
    prepared indexes that captured a backend at build time can be
    shipped to worker processes and reconnect to the worker's instance.
    """

    #: Registry name ("python", "numpy", ...); subclasses override.
    name: str = "abstract"

    # ------------------------------------------------------------------
    # Signature batch kernels
    # ------------------------------------------------------------------
    @abstractmethod
    def pack_signatures(self, signatures: Sequence[int], bits: int) -> SignaturePack:
        """Pack ``signatures`` (each a ``bits``-wide int) for batch filtering."""

    @abstractmethod
    def filter_subset_batch(self, pack: SignaturePack, probe: int) -> list[int]:
        """Rows ``i`` (ascending) with ``pack[i] ⊑ probe``.

        The signature filter of every containment join: a packed
        signature survives iff every set bit appears in ``probe``.
        """

    @abstractmethod
    def filter_superset_batch(self, pack: SignaturePack, probe: int) -> list[int]:
        """Rows ``i`` (ascending) with ``probe ⊑ pack[i]`` (superset join)."""

    @abstractmethod
    def popcount_batch(self, pack: SignaturePack) -> list[int]:
        """Per-row number of set bits, in packing order."""

    # ------------------------------------------------------------------
    # Posting-list kernel
    # ------------------------------------------------------------------
    @abstractmethod
    def intersect_sorted(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Intersect two strictly-increasing integer sequences."""

    # ------------------------------------------------------------------
    # Identity / pickling
    # ------------------------------------------------------------------
    def __reduce__(self):
        from repro.kernels import get_backend

        return (get_backend, (self.name,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelBackend {self.name}>"
