"""Long-lived join serving: a socket server with resident prepared indexes.

The library's :func:`~repro.core.registry.prepare_index` API already
amortises index builds *within* one process; this package amortises them
*across* callers.  :class:`JoinServer` keeps hot
:class:`~repro.core.base.PreparedIndex` objects resident in an LRU+TTL
:class:`IndexCache` keyed by relation content
(:meth:`Relation.fingerprint() <repro.relations.relation.Relation.fingerprint>`),
speaks a line-delimited JSON protocol over TCP, and enforces per-request
governance and admission control.  :class:`JoinClient` is the matching
typed client.  Run one from the command line with ``repro-scj serve``.

See ``docs/SERVER.md`` for the protocol and operational semantics, and
``tests/test_serve.py`` for the concurrency/chaos suite that pins them.
"""

from repro.serve.cache import IndexCache, index_key
from repro.serve.client import JoinClient
from repro.serve.server import JoinServer

__all__ = ["IndexCache", "JoinClient", "JoinServer", "index_key"]
