"""A blocking client for the join server's JSONL protocol.

:class:`JoinClient` opens one TCP connection and issues one request at a
time over it (the server processes a connection's requests serially and
in order, so a connection is a session).  Error replies re-raise the
*typed* exception their wire code names — an over-capacity rejection
raises :class:`~repro.errors.OverCapacityError`, a tripped deadline
raises :class:`~repro.errors.DeadlineExceededError` — so callers handle
remote failures with exactly the ``except`` clauses they would use
around the in-process API.

Relations go on the wire as lists of element lists with positional
record ids, matching :meth:`Relation.from_sets
<repro.relations.relation.Relation.from_sets>`; :meth:`JoinClient.probe`
accepts either a :class:`~repro.relations.relation.Relation` or the raw
lists.
"""

from __future__ import annotations

import socket
from typing import Any, Iterable, Mapping

from repro.errors import ProtocolError
from repro.relations.relation import Relation
from repro.serve.protocol import (
    decode_frame,
    encode_frame,
    exception_for,
    relation_to_payload,
)

__all__ = ["JoinClient"]


def _payload(relation: Relation | Iterable[Iterable[int]]) -> list[list[int]]:
    if isinstance(relation, Relation):
        return relation_to_payload(relation)
    return [sorted(elements) for elements in relation]


class JoinClient:
    """One connection to a :class:`~repro.serve.server.JoinServer`.

    Args:
        host: Server address (or pass ``address=(host, port)``).
        port: Server port.
        address: Convenience alternative to host/port — exactly what
            ``JoinServer.address`` reports after start.
        timeout_seconds: Socket timeout for connect and replies; ``None``
            blocks forever.  This is a *transport* bound; the server-side
            join bound is the request's ``deadline_seconds``.

    Use as a context manager or call :meth:`close` explicitly.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        address: tuple[str, int] | None = None,
        timeout_seconds: float | None = 30.0,
    ) -> None:
        if address is not None:
            host, port = address
        self._sock = socket.create_connection((host, port), timeout=timeout_seconds)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _rpc(self, frame: dict[str, Any]) -> dict[str, Any]:
        """Send one request frame, wait for its reply, raise typed errors."""
        self._next_id += 1
        frame.setdefault("id", self._next_id)
        self._sock.sendall(encode_frame(frame))
        return self._read_reply()

    def send_raw(self, data: bytes) -> dict[str, Any]:
        """Send pre-encoded bytes and read one reply frame.

        The poison-request test seam: lets a test put a malformed line on
        the wire through the same connection a healthy request will use
        next.  ``data`` must already end with a newline.
        """
        self._sock.sendall(data)
        return self._read_reply()

    def _read_reply(self) -> dict[str, Any]:
        line = self._reader.readline()
        if not line:
            raise ProtocolError("server closed the connection")
        reply = decode_frame(line)
        if reply.get("ok"):
            return reply
        error = reply.get("error")
        if not isinstance(error, dict):
            raise ProtocolError(f"malformed error reply: {reply!r}")
        raise exception_for(
            str(error.get("code", "internal")), str(error.get("message", ""))
        )

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._reader.close()
        except OSError:  # repro: noqa RPR008 best-effort close; the fd is gone either way
            pass
        try:
            self._sock.close()
        except OSError:  # repro: noqa RPR008 best-effort close; the fd is gone either way
            pass

    def __enter__(self) -> "JoinClient":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        """Liveness check; True when the server answers."""
        return bool(self._rpc({"op": "ping"}).get("pong"))

    def stats(self) -> dict[str, Any]:
        """The server's counters, cache state and in-flight gauge."""
        reply = self._rpc({"op": "stats"})
        stats = reply.get("stats")
        if not isinstance(stats, dict):
            raise ProtocolError(f"malformed stats reply: {reply!r}")
        return stats

    def shutdown(self) -> bool:
        """Ask the server to stop; True once acknowledged."""
        return bool(self._rpc({"op": "shutdown"}).get("stopping"))

    def probe(
        self,
        r: Relation | Iterable[Iterable[int]],
        s: Relation | Iterable[Iterable[int]] | None = None,
        algorithm: str = "auto",
        bits: int | None = None,
        probe_batches: int | None = None,
        deadline_seconds: float | None = None,
        max_memory_bytes: int | None = None,
        s_ref: str | None = None,
    ) -> dict[str, Any]:
        """``R ⋈⊇ S`` through the server's resident index cache.

        Returns the reply frame; ``reply["pairs"]`` is the sorted pair
        list (as ``[r_id, s_id]`` lists — see :meth:`pairs` for tuples)
        and ``reply["cache_hit"]`` says whether the index was resident.
        ``reply["s_key"]`` is the resident index's handle: pass it back
        as ``s_ref`` (instead of ``s``) to probe the same index again
        without re-shipping the relation.
        """
        if (s is None) == (s_ref is None):
            raise ProtocolError("pass exactly one of 's' or 's_ref'")
        frame: dict[str, Any] = {
            "op": "probe",
            "r": _payload(r),
            "algorithm": algorithm,
        }
        if s is not None:
            frame["s"] = _payload(s)
        else:
            frame["s_ref"] = s_ref
        if bits is not None:
            frame["bits"] = bits
        if probe_batches is not None:
            frame["probe_batches"] = probe_batches
        if deadline_seconds is not None:
            frame["deadline_seconds"] = deadline_seconds
        if max_memory_bytes is not None:
            frame["max_memory_bytes"] = max_memory_bytes
        return self._rpc(frame)

    def join(
        self,
        r: Relation | Iterable[Iterable[int]],
        s: Relation | Iterable[Iterable[int]],
        algorithm: str = "auto",
        bits: int | None = None,
        deadline_seconds: float | None = None,
        max_memory_bytes: int | None = None,
    ) -> dict[str, Any]:
        """One-shot ``R ⋈⊇ S`` on the server (no index cache)."""
        frame: dict[str, Any] = {
            "op": "join",
            "r": _payload(r),
            "s": _payload(s),
            "algorithm": algorithm,
        }
        if bits is not None:
            frame["bits"] = bits
        if deadline_seconds is not None:
            frame["deadline_seconds"] = deadline_seconds
        if max_memory_bytes is not None:
            frame["max_memory_bytes"] = max_memory_bytes
        return self._rpc(frame)

    @staticmethod
    def pairs(reply: Mapping[str, Any]) -> list[tuple[int, int]]:
        """A reply's pair list as sorted ``(r_id, s_id)`` tuples."""
        return sorted((int(a), int(b)) for a, b in reply.get("pairs", ()))
