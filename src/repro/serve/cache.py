"""LRU+TTL cache of resident :class:`~repro.core.base.PreparedIndex` objects.

The serving layer's whole point is the build-once/probe-many asymmetry:
an index over ``S`` costs a full relation scan to build but each probe
touches a tiny fraction of it, so a long-lived server must keep hot
indexes resident across requests.  :class:`IndexCache` is that residence
policy:

* **Keyed by content, not identity.**  Keys embed
  :meth:`Relation.fingerprint() <repro.relations.relation.Relation.fingerprint>`
  (plus the algorithm and its parameters — see :func:`index_key`), so
  two clients sending the same payload share one build and a changed
  payload can never be served a stale index.
* **LRU bounded.**  At most ``capacity`` entries; inserting past that
  evicts the least-recently-*used* entry (a hit refreshes recency).
* **TTL bounded.**  An entry older than ``ttl_seconds`` is expired
  lazily on access and by :meth:`evict_expired`.  Time comes from an
  injectable monotonic clock (default: the one clock,
  :func:`repro.obs.clock.monotonic`), so tests drive expiry without
  sleeping.
* **Build deduplication.**  :meth:`get_or_build` holds a per-key build
  lock, not the cache-wide lock, while running the builder: concurrent
  misses on the *same* key coalesce into one build while misses on
  different keys build in parallel.
* **Observable.**  ``cache.hits`` / ``cache.misses`` / ``cache.evictions``
  / ``cache.expirations`` counters and the ``cache.size`` gauge go to the
  :class:`~repro.obs.metrics.MetricsRegistry` the owner supplies — the
  same registry the server's ``stats`` op snapshots.

The cache is generic over its values (anything buildable-by-callable);
the server stores prepared indexes in it, and nothing here imports the
server, so the policy is testable in isolation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Iterator, TypeVar

from repro.analysis.concurrency import tracked_lock
from repro.errors import AlgorithmError
from repro.obs.clock import monotonic
from repro.obs.metrics import MetricsRegistry
from repro.relations.relation import Relation

__all__ = ["IndexCache", "index_key"]

T = TypeVar("T")


def index_key(
    relation: Relation, algorithm: str, bits: int | None = None
) -> str:
    """The cache key for an index over ``relation`` built by ``algorithm``.

    The relation fingerprint pins the content; the algorithm name and the
    explicit signature length pin the build parameters — a PTSJ index at
    512 bits and one at 1024 bits are different residents.  ``algorithm``
    must already be registry-canonical (the server resolves ``"auto"``
    against the relation's statistics *before* keying, so auto and an
    explicit pick of the same algorithm share an entry).

    The key also pins the kernel backend the index would be packed with
    (the process default at key time): a resident index carries
    backend-specific packed signature structures, so a cached build must
    never be served to a request running under a different backend.
    """
    from repro.kernels import active_backend_name

    suffix = "" if bits is None else f"|bits={bits}"
    return f"{relation.fingerprint()}|{algorithm}{suffix}|kernel={active_backend_name()}"


class _Entry:
    """One resident value plus its expiry instant (``inf`` = no TTL)."""

    __slots__ = ("value", "expires_at")

    def __init__(self, value: Any, expires_at: float) -> None:
        self.value = value
        self.expires_at = expires_at


class IndexCache:
    """A thread-safe LRU+TTL mapping of cache keys to resident values.

    Args:
        capacity: Maximum resident entries; must be positive.
        ttl_seconds: Entry lifetime; ``None`` disables expiry.
        clock: Monotonic-clock override (test seam); defaults to the one
            clock, :func:`repro.obs.clock.monotonic`.
        registry: Metrics sink for the hit/miss/eviction/expiration
            counters and the size gauge; a private registry is created
            when omitted.
    """

    def __init__(
        self,
        capacity: int,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if capacity <= 0:
            raise AlgorithmError(f"cache capacity must be positive, got {capacity}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise AlgorithmError(
                f"cache ttl_seconds must be positive or None, got {ttl_seconds}"
            )
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._clock = clock or monotonic
        self.registry = registry if registry is not None else MetricsRegistry()
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._lock = tracked_lock("cache.lock", registry=self.registry)
        # Create the instruments up front so a stats snapshot exposes
        # them (as zeros) before the first hit/miss/eviction happens.
        for counter in ("cache.hits", "cache.misses", "cache.evictions", "cache.expirations"):
            self.registry.counter(counter)
        self.registry.gauge("cache.size").set(0)
        # Per-key build locks (singleflight): misses on the same key
        # coalesce into one build, misses on different keys run in
        # parallel.  Guarded by _lock; every holder removes its own entry
        # on the way out (see _release_slot), so the map is empty
        # whenever no build is in flight.
        self._building: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Core map operations
    # ------------------------------------------------------------------
    def get(self, key: str) -> Any | None:
        """The resident value for ``key``, or ``None`` on miss/expiry.

        A hit refreshes the entry's LRU recency (but not its TTL: age is
        measured from insertion, so a hot-but-stale index still turns
        over and picks up whatever freshness the TTL is protecting).
        """
        return self._lookup(key, count_miss=True)

    def _lookup(self, key: str, count_miss: bool) -> Any | None:
        # count_miss=False is the singleflight double-check: its miss is
        # the same logical miss get_or_build already counted, so counting
        # it again would double cache.misses per build.
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                if count_miss:
                    self.registry.counter("cache.misses").inc()
                return None
            if entry.expires_at <= now:
                del self._entries[key]
                self.registry.counter("cache.expirations").inc()
                if count_miss:
                    self.registry.counter("cache.misses").inc()
                self.registry.gauge("cache.size").set(len(self._entries))
                return None
            self._entries.move_to_end(key)
            self.registry.counter("cache.hits").inc()
            return entry.value

    def put(self, key: str, value: Any) -> None:
        """Insert (or replace) ``key``, evicting LRU entries past capacity.

        Replacement resets both recency and TTL — the caller is asserting
        fresh content for the key.
        """
        now = self._clock()
        expires_at = float("inf") if self.ttl_seconds is None else now + self.ttl_seconds
        with self._lock:
            if key in self._entries:
                del self._entries[key]
            self._entries[key] = _Entry(value, expires_at)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.registry.counter("cache.evictions").inc()
            self.registry.gauge("cache.size").set(len(self._entries))

    def get_or_build(self, key: str, builder: Callable[[], T]) -> tuple[T, bool]:
        """The resident value for ``key``, building it on a miss.

        Returns ``(value, hit)`` where ``hit`` says whether the value was
        already resident.  The builder runs outside the cache-wide lock
        under a per-key lock, so concurrent requests for one key wait for
        a single build while other keys stay fully concurrent.  A builder
        that raises installs nothing (the next request retries).
        """
        value = self.get(key)
        if value is not None:
            return value, True
        build_lock = self._build_slot(key)
        try:
            with build_lock:
                # Double-check: a concurrent holder may have built it
                # while this thread waited on the key lock.
                value = self._lookup(key, count_miss=False)
                if value is not None:
                    return value, True
                value = builder()  # repro: noqa RPR013 the per-key singleflight lock exists precisely to serialize this build; the cache-wide lock is not held here
                self.put(key, value)
                return value, False
        finally:
            self._release_slot(key, build_lock)

    def _build_slot(self, key: str) -> Any:
        """The per-key singleflight lock for ``key``, creating it if
        absent.  A test seam: interleaving tests override this to pin a
        thread in the window between its miss and its slot lookup."""
        with self._lock:
            build_lock = self._building.get(key)
            if build_lock is None:
                build_lock = tracked_lock("cache.build", registry=self.registry)
                self._building[key] = build_lock
            return build_lock

    def _release_slot(self, key: str, build_lock: Any) -> None:
        """Drop ``key``'s singleflight entry if it is still ours.

        Every get_or_build caller releases the slot it looked up, so the
        map cannot leak: even a late waiter that re-inserted a fresh lock
        after the winner cleaned up removes its own insertion on exit.
        The identity check keeps a slow old waiter from deleting a *new*
        build's entry out from under it.
        """
        with self._lock:
            if self._building.get(key) is build_lock:
                del self._building[key]

    def pending_builds(self) -> tuple[str, ...]:
        """Keys with a singleflight build slot outstanding (tests assert
        this drains back to empty)."""
        with self._lock:
            return tuple(self._building)

    # ------------------------------------------------------------------
    # Maintenance and introspection
    # ------------------------------------------------------------------
    def evict_expired(self) -> int:
        """Drop every expired entry now; returns how many were dropped."""
        now = self._clock()
        dropped = 0
        with self._lock:
            for key in [k for k, e in self._entries.items() if e.expires_at <= now]:
                del self._entries[key]
                self.registry.counter("cache.expirations").inc()
                dropped += 1
            if dropped:
                self.registry.gauge("cache.size").set(len(self._entries))
        return dropped

    def clear(self) -> None:
        """Drop every entry (shutdown or test isolation)."""
        with self._lock:
            self._entries.clear()
            self.registry.gauge("cache.size").set(0)

    def keys(self) -> tuple[str, ...]:
        """Resident keys in LRU-to-MRU order (expired entries included
        until an access or :meth:`evict_expired` collects them)."""
        with self._lock:
            return tuple(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and entry.expires_at > self._clock()

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def describe(self) -> dict[str, Any]:
        """JSON-friendly cache configuration and occupancy (stats op)."""
        with self._lock:
            size = len(self._entries)
        return {
            "size": size,
            "capacity": self.capacity,
            "ttl_seconds": self.ttl_seconds,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<IndexCache {len(self._entries)}/{self.capacity} "
            f"ttl={self.ttl_seconds}>"
        )
