"""The join server: a long-lived process with resident prepared indexes.

:class:`JoinServer` turns the library's build-once/probe-many API into a
service.  It listens on a TCP socket, speaks the JSONL protocol of
:mod:`repro.serve.protocol`, and serves each connection from a bounded
thread pool.  The pieces it composes are all existing subsystems:

* **Planner** — every ``probe``/``join`` request routes through
  :func:`repro.core.registry.plan` with a :class:`Workload` built from
  the request's hints, so the server makes the same explainable
  decisions as the library call.
* **Index cache** — ``probe`` requests share resident
  :class:`~repro.core.base.PreparedIndex` objects through an
  :class:`~repro.serve.cache.IndexCache` keyed by the indexed relation's
  :meth:`~repro.relations.relation.Relation.fingerprint` (plus algorithm
  and bits), so repeat probes skip the build entirely.
* **Governance** — each request runs under an ambient
  :class:`~repro.governance.policy.GovernancePolicy` composed from the
  server's default policy and the request's ``deadline_seconds`` /
  ``max_memory_bytes`` fields; breaches surface as typed wire errors.
  This leans on the *thread-local* ambient state of
  :mod:`repro.governance.policy` and :mod:`repro.obs.tracer` — request
  threads never see each other's policy or span tree.
* **Observability** — each request gets its own
  :class:`~repro.obs.tracer.Tracer` backed by the server-wide
  :class:`~repro.obs.metrics.MetricsRegistry`: per-request phase
  breakdowns travel back in the reply, cumulative counters and latency
  histograms are served by the ``stats`` op.

Admission control bounds concurrent join work: at most ``max_inflight``
``probe``/``join`` requests run at once, and request past that is
refused *before* any work starts with the 429-style ``over_capacity``
error (:class:`~repro.errors.OverCapacityError`).  ``ping`` and
``stats`` are exempt, so a saturated server stays observable.

Protocol and operational details are documented in ``docs/SERVER.md``.
"""

from __future__ import annotations

import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Mapping

from repro.analysis.concurrency import tracked_lock
from repro.core.registry import canonical_name, choose_algorithm_name, plan
from repro.errors import OverCapacityError, ProtocolError
from repro.governance.deadline import Deadline
from repro.governance.policy import (
    DEFAULT_POLL_INTERVAL,
    GovernancePolicy,
    govern,
)
from repro.obs.clock import perf_counter
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, use
from repro.planner.executor import execute_plan, prepare_from_plan
from repro.planner.plan import Workload
from repro.serve.cache import IndexCache, index_key
from repro.serve.protocol import (
    decode_frame,
    encode_frame,
    error_code_for,
    error_reply,
    ok_reply,
    relation_from_payload,
    validate_request,
)

__all__ = ["JoinServer"]

#: Planner hint when a ``probe`` request does not say how many batches
#: will follow: a served index is expected to be reused, so the planner
#: should amortise the build.
DEFAULT_PROBE_BATCHES = 16


class JoinServer:
    """A thread-pooled JSONL-over-TCP set-containment join service.

    Args:
        host: Bind address (default loopback).
        port: Bind port; ``0`` picks a free one (read :attr:`address`
            after :meth:`start`).
        max_connections: Thread-pool size — connections served at once;
            further connections queue unserved until a slot frees.
        max_inflight: Admission bound on concurrently *running*
            ``probe``/``join`` requests; defaults to ``max_connections``.
        cache_capacity: Resident prepared-index entries (LRU bound).
        cache_ttl_seconds: Prepared-index lifetime; ``None`` disables.
        default_policy: Server-wide governance floor.  A request's
            ``deadline_seconds``/``max_memory_bytes`` override the
            corresponding bound; the policy's cancel token and poll
            interval always apply.
        default_deadline_seconds: Per-request deadline applied when a
            request carries none; unlike an (absolute) deadline on
            ``default_policy``, each request's clock starts at its own
            admission.
        registry: Metrics sink shared by the cache, the per-request
            tracers and the server's own counters; a fresh one is
            created when omitted.
        request_hook: Test seam — called with each admitted
            ``probe``/``join`` frame *after* admission and *before* any
            join work, inside the in-flight accounting.  Fault-injection
            tests use it to hold a request slot open deterministically.

    Use as a context manager (``with JoinServer() as server:``) or call
    :meth:`start`/:meth:`stop` explicitly.  :meth:`stop` is idempotent
    and joins every serving thread, so no sockets or threads outlive it.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = 8,
        max_inflight: int | None = None,
        cache_capacity: int = 32,
        cache_ttl_seconds: float | None = None,
        default_policy: GovernancePolicy | None = None,
        default_deadline_seconds: float | None = None,
        registry: MetricsRegistry | None = None,
        request_hook: Callable[[Mapping[str, Any]], None] | None = None,
    ) -> None:
        if max_connections <= 0:
            raise ProtocolError(
                f"max_connections must be positive, got {max_connections}"
            )
        if max_inflight is not None and max_inflight <= 0:
            raise ProtocolError(f"max_inflight must be positive, got {max_inflight}")
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.max_inflight = max_inflight if max_inflight is not None else max_connections
        self.default_policy = default_policy
        self.default_deadline_seconds = default_deadline_seconds
        self.registry = registry if registry is not None else MetricsRegistry()
        self.cache = IndexCache(
            cache_capacity, ttl_seconds=cache_ttl_seconds, registry=self.registry
        )
        self.request_hook = request_hook
        self.address: tuple[str, int] | None = None
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._connections: set[socket.socket] = set()
        self._conn_lock = tracked_lock("server.connections", registry=self.registry)
        self._inflight = 0
        self._inflight_lock = tracked_lock("server.inflight", registry=self.registry)
        self._stopping = threading.Event()
        self._stop_requested = threading.Event()
        self._started_at = 0.0
        # Pre-create the serving instruments so stats exposes them as
        # zeros from the first snapshot (the cache does the same).
        for counter in ("server.requests", "server.rejected", "server.connections"):
            self.registry.counter(counter)
        self.registry.gauge("server.inflight").set(0)
        self.registry.histogram("server.request_seconds")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "JoinServer":
        """Bind, listen and start accepting; returns ``self``."""
        if self._listener is not None:
            raise ProtocolError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(self.max_connections * 2)
        self._listener = listener
        self.address = listener.getsockname()
        self._started_at = perf_counter()
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_connections, thread_name_prefix="repro-serve"
        )
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, close every connection, join every thread.

        Idempotent; safe to call after a remote ``shutdown`` request.
        """
        if self._stopping.is_set():
            return
        self._stopping.set()
        self._stop_requested.set()
        listener = self._listener
        if listener is not None:
            try:
                # shutdown(), not just close(): on Linux a thread blocked
                # in accept() is not woken by close() alone.
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:  # repro: noqa RPR008 a never-connected listener raises ENOTCONN; the shutdown is only a wake-up call
                pass
            try:
                listener.close()
            except OSError:  # repro: noqa RPR008 best-effort close on shutdown; the fd is gone either way
                pass
        with self._conn_lock:
            open_conns = list(self._connections)
        for conn in open_conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:  # repro: noqa RPR008 peer may already be gone; shutdown is advisory here
                pass
            try:
                conn.close()
            except OSError:  # repro: noqa RPR008 best-effort close on shutdown; the fd is gone either way
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until a ``shutdown`` request (or :meth:`stop`) arrives.

        Returns whether the stop event fired (``False`` on timeout) —
        the CLI's foreground loop is ``server.wait(); server.stop()``.
        """
        return self._stop_requested.wait(timeout)

    def __enter__(self) -> "JoinServer":
        return self.start()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.stop()

    @property
    def inflight(self) -> int:
        """Requests currently holding an admission slot."""
        return self._inflight

    # ------------------------------------------------------------------
    # Accepting and serving connections
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        assert listener is not None
        pool = self._pool
        assert pool is not None
        while not self._stopping.is_set():
            try:
                conn, _addr = listener.accept()
            except OSError:
                break  # listener closed by stop()
            with self._conn_lock:
                if self._stopping.is_set():
                    conn.close()
                    break
                self._connections.add(conn)
            self.registry.counter("server.connections").inc()
            pool.submit(self._serve_connection, conn)

    def _serve_connection(self, conn: socket.socket) -> None:
        """Serve one connection: requests are processed serially, in order."""
        try:
            reader = conn.makefile("rb")
            try:
                for raw in reader:
                    reply, after_send = self._handle_line(raw)
                    try:
                        conn.sendall(encode_frame(reply))
                    except OSError:
                        break  # peer went away mid-reply
                    if after_send is not None:
                        # The shutdown ack: signal stop only once the
                        # reply bytes are queued, or a foreground owner
                        # (server.wait(); server.stop()) can close this
                        # connection before the client sees its ack.
                        after_send()
                    if self._stopping.is_set():
                        break
            finally:
                reader.close()
        finally:
            with self._conn_lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:  # repro: noqa RPR008 best-effort close; connection is finished either way
                pass

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def _handle_line(
        self, raw: bytes
    ) -> tuple[dict[str, Any], Callable[[], None] | None]:
        """One request line → one reply frame plus an optional post-send
        action; errors become error frames.

        A poisoned line (bad UTF-8/JSON, schema violation) must not take
        the connection down: the typed error reply goes out and the next
        line is processed normally.
        """
        request_id: Any = None
        self.registry.counter("server.requests").inc()
        try:
            frame = decode_frame(raw)
            request_id = frame.get("id")
            op = validate_request(frame)
            self.registry.counter(f"server.requests.{op}").inc()
            return self._dispatch(op, frame, request_id)
        except Exception as exc:
            code = error_code_for(exc)
            self.registry.counter(f"server.errors.{code}").inc()
            return error_reply(request_id, code, str(exc)), None

    def _dispatch(
        self, op: str, frame: Mapping[str, Any], request_id: Any
    ) -> tuple[dict[str, Any], Callable[[], None] | None]:
        if op == "ping":
            return ok_reply(request_id, pong=True), None
        if op == "stats":
            return ok_reply(request_id, stats=self._stats_payload()), None
        if op == "shutdown":
            # The stop event is set by the connection loop *after* the
            # ack is on the wire (see _serve_connection).
            return ok_reply(request_id, stopping=True), self._stop_requested.set
        # probe / join: the expensive ops pass admission control.
        self._admit()
        try:
            if self.request_hook is not None:
                self.request_hook(frame)
            started = perf_counter()
            tracer = Tracer(name=f"serve.{op}", registry=self.registry)
            with use(tracer):
                with govern(self._request_policy(frame)):
                    if op == "probe":
                        fields = self._do_probe(frame)
                    else:
                        fields = self._do_join(frame)
            tracer.finish()
            elapsed = perf_counter() - started
            self.registry.histogram("server.request_seconds").observe(elapsed)
            self.registry.histogram(f"server.{op}_seconds").observe(elapsed)
            fields["seconds"] = elapsed
            fields["phases"] = tracer.phase_seconds()
            return ok_reply(request_id, **fields), None
        finally:
            self._release()

    def _admit(self) -> None:
        with self._inflight_lock:
            if self._inflight >= self.max_inflight:
                self.registry.counter("server.rejected").inc()
                raise OverCapacityError(
                    f"{self._inflight} request(s) in flight "
                    f"(max_inflight={self.max_inflight}); retry later"
                )
            self._inflight += 1
            self.registry.gauge("server.inflight").set(self._inflight)

    def _release(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
            self.registry.gauge("server.inflight").set(self._inflight)

    def _request_policy(self, frame: Mapping[str, Any]) -> GovernancePolicy | None:
        """Request bounds merged over the server's default policy.

        The request's ``deadline_seconds`` starts its clock *here* — at
        admission, not at plan time — and overrides the server default;
        same for ``max_memory_bytes``.  The default policy's cancel
        token, sampler and poll cadence always carry over.
        """
        base = self.default_policy
        deadline_seconds = _number_or_none(frame, "deadline_seconds")
        memory_bytes = frame.get("max_memory_bytes")
        if memory_bytes is not None and not isinstance(memory_bytes, int):
            raise ProtocolError(
                f"max_memory_bytes must be an int, got {type(memory_bytes).__name__}"
            )
        if deadline_seconds is None:
            deadline_seconds = self.default_deadline_seconds
        deadline = (
            Deadline.after(deadline_seconds)
            if deadline_seconds is not None
            else (base.deadline if base is not None else None)
        )
        if memory_bytes is None and base is not None:
            memory_bytes = base.memory_budget_bytes
        cancel = base.cancel if base is not None else None
        if deadline is None and cancel is None and memory_bytes is None:
            return None
        return GovernancePolicy(
            deadline=deadline,
            cancel=cancel,
            memory_budget_bytes=memory_bytes,
            poll_interval=base.poll_interval if base is not None else DEFAULT_POLL_INTERVAL,
            memory_sampler=base.memory_sampler if base is not None else None,
        )

    def _do_probe(self, frame: Mapping[str, Any]) -> dict[str, Any]:
        """Probe through the index cache: build at most once per content key.

        A request carrying ``s_ref`` (the ``s_key`` handle from an
        earlier reply) skips shipping and fingerprinting S entirely —
        the steady-state hot path — but can only ever *hit*: a handle
        whose index was evicted or expired is a ``bad_request`` telling
        the client to resend ``s``.
        """
        s_ref = frame.get("s_ref")
        if s_ref is not None:
            r = relation_from_payload(frame.get("r"), "r")
            index = self.cache.get(s_ref)
            if index is None:
                raise ProtocolError(
                    f"unknown index handle {s_ref!r} (evicted, expired or "
                    "never built); resend the request with 's'"
                )
            result = index.probe_many(r)
            return {
                "pairs": sorted(result.pairs),
                "pair_count": len(result.pairs),
                "algorithm": _algorithm_of_key(s_ref),
                "cache_hit": True,
                "s_key": s_ref,
            }
        r, s, algorithm, bits = _join_inputs(frame)
        resolved = (
            choose_algorithm_name(s)
            if algorithm.strip().lower() == "auto"
            else canonical_name(algorithm)
        )
        batches = frame.get("probe_batches", DEFAULT_PROBE_BATCHES)
        if not isinstance(batches, int) or isinstance(batches, bool):
            raise ProtocolError(
                f"probe_batches must be an int, got {batches!r}"
            )
        workload = Workload(mode="probe_many", probe_batches=batches)
        key = index_key(s, resolved, bits)

        def build():  # type: ignore[no-untyped-def]
            kwargs = {} if bits is None else {"bits": bits}
            try:
                query_plan = plan(None, s, algorithm=resolved, workload=workload, **kwargs)
                return prepare_from_plan(query_plan, s)
            except TypeError as exc:
                # Constructor rejected an option (e.g. bits on a non-
                # signature algorithm): the caller's fault, not ours.
                raise ProtocolError(f"invalid algorithm options: {exc}") from exc

        index, hit = self.cache.get_or_build(key, build)
        result = index.probe_many(r)
        return {
            "pairs": sorted(result.pairs),
            "pair_count": len(result.pairs),
            "algorithm": resolved,
            "cache_hit": hit,
            "s_key": key,
        }

    def _do_join(self, frame: Mapping[str, Any]) -> dict[str, Any]:
        """One-shot plan + execute; no index survives the request."""
        r, s, algorithm, bits = _join_inputs(frame)
        workload = Workload(
            deadline_seconds=_number_or_none(frame, "deadline_seconds"),
            max_memory_bytes=frame.get("max_memory_bytes"),
        )
        kwargs = {} if bits is None else {"bits": bits}
        try:
            query_plan = plan(r, s, algorithm=algorithm, workload=workload, **kwargs)
            result = execute_plan(query_plan, r, s)
        except TypeError as exc:
            raise ProtocolError(f"invalid algorithm options: {exc}") from exc
        return {
            "pairs": sorted(result.pairs),
            "pair_count": len(result.pairs),
            "algorithm": query_plan.algorithm,
            "cache_hit": False,
        }

    def _stats_payload(self) -> dict[str, Any]:
        with self._inflight_lock:
            inflight = self._inflight
        return {
            "metrics": self.registry.snapshot(),
            "cache": self.cache.describe(),
            "inflight": inflight,
            "max_inflight": self.max_inflight,
            "uptime_seconds": perf_counter() - self._started_at,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "stopped" if self._stopping.is_set() else "running"
        return f"<JoinServer {self.address} {state} inflight={self._inflight}>"


# ----------------------------------------------------------------------
# Request field decoding helpers
# ----------------------------------------------------------------------
def _algorithm_of_key(key: str) -> str:
    """The algorithm segment of an :func:`~repro.serve.cache.index_key`."""
    parts = key.split("|")
    return parts[1] if len(parts) > 1 else "unknown"


def _number_or_none(frame: Mapping[str, Any], field: str) -> float | None:
    value = frame.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{field} must be a number, got {type(value).__name__}")
    return float(value)


def _join_inputs(frame: Mapping[str, Any]):  # type: ignore[no-untyped-def]
    """Decode the shared probe/join fields: relations, algorithm, bits."""
    algorithm = frame.get("algorithm", "auto")
    if not isinstance(algorithm, str):
        raise ProtocolError(
            f"algorithm must be a string, got {type(algorithm).__name__}"
        )
    bits = frame.get("bits")
    if bits is not None and (isinstance(bits, bool) or not isinstance(bits, int)):
        raise ProtocolError(f"bits must be an int, got {type(bits).__name__}")
    r = relation_from_payload(frame.get("r"), "r")
    s = relation_from_payload(frame.get("s"), "s")
    return r, s, algorithm, bits
