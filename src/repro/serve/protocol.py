"""The join server's wire protocol: JSONL frames over a stream socket.

One request per line, one reply per line, both UTF-8 JSON objects — the
simplest protocol that supports persistent connections, pipelining and
``nc``-friendly debugging.  The schema is documented operator-first in
``docs/SERVER.md``; this module is the single place frames are encoded,
decoded and validated, shared by :class:`~repro.serve.server.JoinServer`
and :class:`~repro.serve.client.JoinClient` so the two sides cannot
drift.

Requests
========

=========  ==========================================================
``op``     fields
=========  ==========================================================
``probe``  ``r`` (list of element lists) plus either ``s`` (same
           shape) or ``s_ref`` (the ``s_key`` handle from an earlier
           probe reply — skips re-shipping S); ``algorithm``,
           ``bits``, governance hints (``deadline_seconds``,
           ``max_memory_bytes``), ``probe_batches`` planner hint
``join``   ``r``/``s`` relation, algorithm and governance fields;
           one-shot plan + execute, no index cache
``stats``  none — server counters, cache state, in-flight gauge
``ping``   none — liveness check
``shutdown``  none — ask the server to stop accepting and exit
=========  ==========================================================

Replies are ``{"id": ..., "ok": true, ...}`` or
``{"id": ..., "ok": false, "error": {"code": ..., "message": ...}}``
with the codes from :data:`ERROR_CODES`.

Relations travel as a list of element lists; record ids are assigned
positionally (``rid = index``), exactly like
:meth:`repro.relations.relation.Relation.from_sets`, so a payload's
:meth:`~repro.relations.relation.Relation.fingerprint` — the index-cache
key — is a pure function of the payload.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.errors import (
    BudgetExceededError,
    CancelledError,
    DeadlineExceededError,
    OverCapacityError,
    ProtocolError,
    ReproError,
    ServeError,
)
from repro.relations.relation import Relation, SetRecord

__all__ = [
    "ERROR_CODES",
    "OPS",
    "decode_frame",
    "encode_frame",
    "error_code_for",
    "error_reply",
    "exception_for",
    "ok_reply",
    "relation_from_payload",
    "relation_to_payload",
    "validate_request",
]

#: Operations the server accepts.
OPS = ("probe", "join", "stats", "ping", "shutdown")

#: Wire error codes and the exception classes the client re-raises.
#: ``over_capacity`` is the HTTP-429 analogue; the governance codes map
#: one-to-one onto the typed errors of :mod:`repro.errors`.
ERROR_CODES: dict[str, type[ReproError]] = {
    "over_capacity": OverCapacityError,
    "bad_request": ProtocolError,
    "deadline_exceeded": DeadlineExceededError,
    "cancelled": CancelledError,
    "budget_exceeded": BudgetExceededError,
    "internal": ServeError,
}

#: Request fields accepted per op (anything else is a schema violation —
#: catching typos beats silently ignoring a misspelled governance bound).
_COMMON_FIELDS = frozenset({"id", "op"})
_JOIN_FIELDS = _COMMON_FIELDS | frozenset(
    {
        "r",
        "s",
        "algorithm",
        "bits",
        "probe_batches",
        "deadline_seconds",
        "max_memory_bytes",
    }
)
_ALLOWED_FIELDS: dict[str, frozenset[str]] = {
    "probe": _JOIN_FIELDS | frozenset({"s_ref"}),
    "join": _JOIN_FIELDS,
    "stats": _COMMON_FIELDS,
    "ping": _COMMON_FIELDS,
    "shutdown": _COMMON_FIELDS,
}


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """One JSONL frame: compact JSON plus the line terminator."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: str | bytes) -> dict[str, Any]:
    """Parse one received line into a frame dict.

    Raises:
        ProtocolError: If the line is not valid JSON or not an object.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not valid UTF-8: {exc}") from exc
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    return frame


def validate_request(frame: Mapping[str, Any]) -> str:
    """Check a decoded request frame against the schema; returns its op.

    Raises:
        ProtocolError: For an unknown op, an unexpected field, or a
            missing/ill-typed relation payload.
    """
    op = frame.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
    unexpected = set(frame) - _ALLOWED_FIELDS[op]
    if unexpected:
        raise ProtocolError(
            f"unexpected field(s) {sorted(unexpected)} for op {op!r}"
        )
    if op in ("probe", "join"):
        if not isinstance(frame.get("r"), list):
            raise ProtocolError(
                f"op {op!r} requires 'r' as a list of element lists"
            )
        s_payload, s_ref = frame.get("s"), frame.get("s_ref")
        if op == "probe" and s_ref is not None:
            if not isinstance(s_ref, str):
                raise ProtocolError("'s_ref' must be an index-handle string")
            if s_payload is not None:
                raise ProtocolError("pass either 's' or 's_ref', not both")
        elif not isinstance(s_payload, list):
            raise ProtocolError(
                f"op {op!r} requires 's' as a list of element lists"
                + (" (or an 's_ref' handle)" if op == "probe" else "")
            )
    return op


# ----------------------------------------------------------------------
# Relations on the wire
# ----------------------------------------------------------------------
def relation_from_payload(payload: Any, name: str) -> Relation:
    """Decode a list-of-element-lists payload into a :class:`Relation`.

    Record ids are positional.  Element validation (non-negative ints)
    is delegated to :class:`~repro.relations.relation.SetRecord`, whose
    :class:`~repro.errors.RelationError` the server maps to
    ``bad_request``.

    Raises:
        ProtocolError: If the payload is not a list of element lists.
    """
    if not isinstance(payload, list):
        raise ProtocolError(f"relation {name!r} must be a list of element lists")
    records = []
    for rid, elements in enumerate(payload):
        if not isinstance(elements, list):
            raise ProtocolError(
                f"relation {name!r} record {rid} must be a list of ints, "
                f"got {type(elements).__name__}"
            )
        records.append(SetRecord(rid, frozenset(elements)))
    return Relation(records, name=name)


def relation_to_payload(relation: Relation) -> list[list[int]]:
    """Encode a relation for the wire (inverse of positional decoding)."""
    return [sorted(rec.elements) for rec in relation]


# ----------------------------------------------------------------------
# Replies
# ----------------------------------------------------------------------
def ok_reply(request_id: Any, **fields: Any) -> dict[str, Any]:
    """A success reply frame echoing the request id."""
    reply = {"id": request_id, "ok": True}
    reply.update(fields)
    return reply


def error_reply(request_id: Any, code: str, message: str) -> dict[str, Any]:
    """An error reply frame with a stable, typed code."""
    if code not in ERROR_CODES:  # defensive: never invent codes on the wire
        code = "internal"
    return {"id": request_id, "ok": False, "error": {"code": code, "message": message}}


def error_code_for(exc: BaseException) -> str:
    """The wire code an exception maps to (server side).

    Typed serve errors carry their own code; governance outcomes map to
    their dedicated codes; any other :class:`~repro.errors.ReproError`
    is the caller's fault (``bad_request``: unknown algorithm, invalid
    relation data, bad workload hints); everything else is ``internal``.
    """
    if isinstance(exc, ServeError):
        return exc.code
    if isinstance(exc, DeadlineExceededError):
        return "deadline_exceeded"
    if isinstance(exc, CancelledError):
        return "cancelled"
    if isinstance(exc, BudgetExceededError):
        return "budget_exceeded"
    if isinstance(exc, ReproError):
        return "bad_request"
    return "internal"


def exception_for(code: str, message: str) -> ReproError:
    """The typed exception a wire code maps to (client side)."""
    return ERROR_CODES.get(code, ServeError)(message)
