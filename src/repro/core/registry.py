"""Algorithm registry and the top-level plan → execute join entry points.

``set_containment_join(r, s, algorithm="auto")`` is the public one-call
API.  Since the planner refactor it is a thin composition of two halves
that are also public on their own:

* :func:`plan` — run the cost-based planner
  (:class:`repro.planner.Planner`) over both relations' statistics and
  the workload hints, producing an immutable, explainable
  :class:`~repro.planner.plan.Plan`;
* :func:`execute_plan` — run that plan.

``"auto"`` still applies the paper's guidance (Sec. V-C3/V-C5): PRETTI+
for low set-cardinality data, PTSJ otherwise, decided on the *median*
cardinality because skewed cardinality distributions make the average
misleading (Sec. V-C5) — the planner's automatic choice is regime-gated
exactly on that rule, with the full cost-model evidence attached to the
plan.  Naming an algorithm explicitly produces a *pinned* plan whose
execution path is byte-for-byte the classic
``make_algorithm(name, **kwargs).join(r, s)``, so explicit calls keep
bit-for-bit identical results and :class:`~repro.core.base.JoinStats`.

Algorithm classes are resolved lazily (by module path) so that baseline
modules — which depend on :mod:`repro.core.base` — can be imported in any
order without cycles.
"""

from __future__ import annotations

from importlib import import_module
from typing import Any, Callable

from repro.core.base import JoinResult, PreparedIndex, SetContainmentJoin
from repro.errors import AlgorithmError
from repro.planner.executor import execute_plan as _execute_plan
from repro.planner.executor import prepare_from_plan
from repro.planner.plan import Plan, Workload
from repro.planner.planner import Planner
from repro.planner.profiles import COST_PROFILES, CostProfile
from repro.relations.relation import Relation
from repro.relations.stats import compute_stats

__all__ = [
    "ALGORITHMS",
    "make_algorithm",
    "available_algorithms",
    "canonical_name",
    "cost_profile",
    "plan",
    "execute_plan",
    "set_containment_join",
    "prepare_index",
    "choose_algorithm_name",
]

#: Registry of algorithms: public name -> ``(module path, class name)``.
#: The last two are the paper's Sec. VI future-work directions.
ALGORITHMS: dict[str, tuple[str, str]] = {
    "ptsj": ("repro.core.ptsj", "PTSJ"),
    "pretti+": ("repro.core.pretti_plus", "PRETTIPlus"),
    "shj": ("repro.baselines.shj", "SHJ"),
    "pretti": ("repro.baselines.pretti", "PRETTI"),
    "tsj": ("repro.baselines.tsj", "TSJ"),
    "nested-loop": ("repro.baselines.nested_loop", "NestedLoopJoin"),
    "mwtsj": ("repro.future.multiway", "MWTSJ"),
    "trie-trie": ("repro.future.trie_trie", "TrieTrieJoin"),
}

#: Aliases accepted by :func:`make_algorithm`.
_ALIASES: dict[str, str] = {
    "prettiplus": "pretti+",
    "pretti_plus": "pretti+",
    "nl": "nested-loop",
    "nested_loop": "nested-loop",
}


def available_algorithms() -> tuple[str, ...]:
    """Names accepted by :func:`set_containment_join` (aliases excluded)."""
    return tuple(ALGORITHMS)


def canonical_name(name: str) -> str:
    """Resolve a (case-insensitive) name or alias to its registry name.

    Raises:
        AlgorithmError: For an unknown name.
    """
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in ALGORITHMS:
        raise AlgorithmError(
            f"unknown algorithm {name!r}; available: {', '.join(ALGORITHMS)}"
        )
    return key


def algorithm_class(name: str) -> Callable[..., SetContainmentJoin]:
    """Resolve a registry name or alias to its algorithm class.

    Raises:
        AlgorithmError: For an unknown name.
    """
    module_path, class_name = ALGORITHMS[canonical_name(name)]
    return getattr(import_module(module_path), class_name)


def make_algorithm(name: str, **kwargs: Any) -> SetContainmentJoin:
    """Construct an algorithm by (case-insensitive) name or alias.

    Raises:
        AlgorithmError: For an unknown name.
    """
    return algorithm_class(name)(**kwargs)


def cost_profile(name: str) -> CostProfile:
    """The planner's :class:`~repro.planner.profiles.CostProfile` for ``name``.

    Accepts the same names and aliases as :func:`make_algorithm`.

    Raises:
        AlgorithmError: For an unknown name.
    """
    return COST_PROFILES[canonical_name(name)]


def choose_algorithm_name(s: Relation) -> str:
    """The paper's regime rule, on the indexed relation's statistics."""
    return compute_stats(s).recommended_algorithm()


def plan(
    r: Relation | None,
    s: Relation,
    algorithm: str = "auto",
    workload: Workload | None = None,
    **kwargs: Any,
) -> Plan:
    """Plan (without running) the join ``R ⋈⊇ S``.

    Args:
        r: The probe relation; ``None`` for a prepare-only workload with
            no probe sample yet.
        s: The indexed relation.
        algorithm: ``"auto"`` lets the planner choose (regime-gated cost
            selection between PTSJ and PRETTI+); any registry name or
            alias pins the plan to that algorithm.
        workload: Usage hints (:class:`~repro.planner.plan.Workload`);
            defaults to a one-shot in-process join.
        **kwargs: Algorithm constructor arguments, recorded on the plan
            and forwarded verbatim at execution time.

    Returns:
        An immutable :class:`~repro.planner.plan.Plan`; render its
        reasoning with ``plan.explain()`` or serialize it with
        ``plan.to_json()``.

    Raises:
        AlgorithmError: For an unknown algorithm name.
        PlanError: For invalid workload hints.
    """
    pinned = None if algorithm.strip().lower() == "auto" else canonical_name(algorithm)
    r_stats = compute_stats(r) if r is not None else None
    return Planner().plan(
        r_stats,
        compute_stats(s),
        workload=workload,
        algorithm=pinned,
        algorithm_kwargs=kwargs,
    )


def execute_plan(query_plan: Plan, r: Relation, s: Relation) -> JoinResult:
    """Run a previously produced (or deserialized) plan.

    Thin alias of :func:`repro.planner.executor.execute_plan`, re-exported
    here so planning and execution live behind one import.
    """
    return _execute_plan(query_plan, r, s)


def set_containment_join(
    r: Relation,
    s: Relation,
    algorithm: str = "auto",
    workload: Workload | None = None,
    **kwargs: Any,
) -> JoinResult:
    """Compute ``R ⋈⊇ S``: all pairs with ``r.set ⊇ s.set``.

    Every call is planned first and then executed —
    ``execute_plan(plan(r, s, ...), r, s)`` — so the same decisions are
    available for inspection via :func:`plan` without running anything.

    Args:
        r: The probe relation (containing side).
        s: The indexed relation (contained side).
        algorithm: ``"auto"`` (planner; regime rule Sec. V-C3/V-C5), or
            one of :func:`available_algorithms` / their aliases, which
            pins the plan and executes exactly the classic path.
        workload: Optional usage hints; memory budgets or worker counts
            here route execution through the disk-partitioned or
            partition-parallel executors.
        **kwargs: Forwarded to the algorithm constructor (e.g. ``bits=512``
            for PTSJ).

    Returns:
        A :class:`~repro.core.base.JoinResult` of ``(r_id, s_id)`` pairs
        plus execution statistics.

    Raises:
        AlgorithmError: For an unknown algorithm name.

    Example:
        >>> from repro.relations import Relation
        >>> r = Relation.from_sets([{1, 2, 3}, {2, 4}])
        >>> s = Relation.from_sets([{2}, {1, 3}, {4, 5}])
        >>> sorted(set_containment_join(r, s, algorithm="ptsj").pairs)
        [(0, 0), (0, 1), (1, 0)]
    """
    query_plan = plan(r, s, algorithm=algorithm, workload=workload, **kwargs)
    return _execute_plan(query_plan, r, s)


def prepare_index(
    s: Relation,
    algorithm: str = "auto",
    probe_hint: Relation | None = None,
    **kwargs: Any,
) -> PreparedIndex:
    """Build a reusable containment index over ``S`` — the probe-many API.

    Prefer this over :func:`set_containment_join` whenever the same
    indexed relation is probed more than once: the index is built exactly
    once, and each :meth:`~repro.core.base.PreparedIndex.probe_many` call
    (or streaming :meth:`~repro.core.base.PreparedIndex.probe`) reuses it.
    Internally this plans a ``probe_many`` workload and materializes the
    plan's index via :func:`repro.planner.executor.prepare_from_plan`.

    Args:
        s: The relation to index (contained side).
        algorithm: ``"auto"`` (paper's regime rule on ``S``), or one of
            :func:`available_algorithms` / their aliases.
        probe_hint: Optional sample of the future probe workload; signature
            algorithms use its cardinalities when sizing signatures, exactly
            as the one-shot ``join(r, s)`` would.
        **kwargs: Forwarded to the algorithm constructor.

    Returns:
        A :class:`~repro.core.base.PreparedIndex` over ``s``.

    Raises:
        AlgorithmError: For an unknown algorithm name.

    Example:
        >>> from repro.relations import Relation
        >>> s = Relation.from_sets([{2}, {1, 3}, {4, 5}])
        >>> index = prepare_index(s, algorithm="ptsj")
        >>> r = Relation.from_sets([{1, 2, 3}, {2, 4}])
        >>> sorted(index.probe_many(r).pairs)
        [(0, 0), (0, 1), (1, 0)]
    """
    query_plan = plan(
        probe_hint, s, algorithm=algorithm, workload=Workload(mode="probe_many"), **kwargs
    )
    return prepare_from_plan(query_plan, s, probe_hint=probe_hint)
