"""Algorithm registry and the top-level join entry point.

``set_containment_join(r, s, algorithm="auto")`` is the public one-call
API.  ``"auto"`` applies the paper's guidance (Sec. V-C3/V-C5): PRETTI+
for low set-cardinality data, PTSJ otherwise, decided on the *median*
cardinality because skewed cardinality distributions make the average
misleading (Sec. V-C5).

Algorithm classes are resolved lazily (by module path) so that baseline
modules — which depend on :mod:`repro.core.base` — can be imported in any
order without cycles.
"""

from __future__ import annotations

from importlib import import_module
from typing import Callable

from repro.core.base import JoinResult, PreparedIndex, SetContainmentJoin
from repro.errors import AlgorithmError
from repro.relations.relation import Relation
from repro.relations.stats import compute_stats

__all__ = [
    "ALGORITHMS",
    "make_algorithm",
    "available_algorithms",
    "set_containment_join",
    "prepare_index",
    "choose_algorithm_name",
]

#: Registry of algorithms: public name -> ``(module path, class name)``.
#: The last two are the paper's Sec. VI future-work directions.
ALGORITHMS: dict[str, tuple[str, str]] = {
    "ptsj": ("repro.core.ptsj", "PTSJ"),
    "pretti+": ("repro.core.pretti_plus", "PRETTIPlus"),
    "shj": ("repro.baselines.shj", "SHJ"),
    "pretti": ("repro.baselines.pretti", "PRETTI"),
    "tsj": ("repro.baselines.tsj", "TSJ"),
    "nested-loop": ("repro.baselines.nested_loop", "NestedLoopJoin"),
    "mwtsj": ("repro.future.multiway", "MWTSJ"),
    "trie-trie": ("repro.future.trie_trie", "TrieTrieJoin"),
}

#: Aliases accepted by :func:`make_algorithm`.
_ALIASES: dict[str, str] = {
    "prettiplus": "pretti+",
    "pretti_plus": "pretti+",
    "nl": "nested-loop",
    "nested_loop": "nested-loop",
}


def available_algorithms() -> tuple[str, ...]:
    """Names accepted by :func:`set_containment_join` (aliases excluded)."""
    return tuple(ALGORITHMS)


def algorithm_class(name: str) -> Callable[..., SetContainmentJoin]:
    """Resolve a registry name or alias to its algorithm class.

    Raises:
        AlgorithmError: For an unknown name.
    """
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    entry = ALGORITHMS.get(key)
    if entry is None:
        raise AlgorithmError(
            f"unknown algorithm {name!r}; available: {', '.join(ALGORITHMS)}"
        )
    module_path, class_name = entry
    return getattr(import_module(module_path), class_name)


def make_algorithm(name: str, **kwargs) -> SetContainmentJoin:
    """Construct an algorithm by (case-insensitive) name or alias.

    Raises:
        AlgorithmError: For an unknown name.
    """
    return algorithm_class(name)(**kwargs)


def choose_algorithm_name(s: Relation) -> str:
    """The paper's regime rule, on the indexed relation's statistics."""
    return compute_stats(s).recommended_algorithm()


def set_containment_join(
    r: Relation,
    s: Relation,
    algorithm: str = "auto",
    **kwargs,
) -> JoinResult:
    """Compute ``R ⋈⊇ S``: all pairs with ``r.set ⊇ s.set``.

    Args:
        r: The probe relation (containing side).
        s: The indexed relation (contained side).
        algorithm: ``"auto"`` (paper's regime rule), or one of
            :func:`available_algorithms` / their aliases.
        **kwargs: Forwarded to the algorithm constructor (e.g. ``bits=512``
            for PTSJ).

    Returns:
        A :class:`~repro.core.base.JoinResult` of ``(r_id, s_id)`` pairs
        plus execution statistics.

    Raises:
        AlgorithmError: For an unknown algorithm name.

    Example:
        >>> from repro.relations import Relation
        >>> r = Relation.from_sets([{1, 2, 3}, {2, 4}])
        >>> s = Relation.from_sets([{2}, {1, 3}, {4, 5}])
        >>> sorted(set_containment_join(r, s, algorithm="ptsj").pairs)
        [(0, 0), (0, 1), (1, 0)]
    """
    name = algorithm.strip().lower()
    if name == "auto":
        name = choose_algorithm_name(s)
    return make_algorithm(name, **kwargs).join(r, s)


def prepare_index(
    s: Relation,
    algorithm: str = "auto",
    probe_hint: Relation | None = None,
    **kwargs,
) -> PreparedIndex:
    """Build a reusable containment index over ``S`` — the probe-many API.

    Prefer this over :func:`set_containment_join` whenever the same
    indexed relation is probed more than once: the index is built exactly
    once, and each :meth:`~repro.core.base.PreparedIndex.probe_many` call
    (or streaming :meth:`~repro.core.base.PreparedIndex.probe`) reuses it.

    Args:
        s: The relation to index (contained side).
        algorithm: ``"auto"`` (paper's regime rule on ``S``), or one of
            :func:`available_algorithms` / their aliases.
        probe_hint: Optional sample of the future probe workload; signature
            algorithms use its cardinalities when sizing signatures, exactly
            as the one-shot ``join(r, s)`` would.
        **kwargs: Forwarded to the algorithm constructor.

    Returns:
        A :class:`~repro.core.base.PreparedIndex` over ``s``.

    Raises:
        AlgorithmError: For an unknown algorithm name.

    Example:
        >>> from repro.relations import Relation
        >>> s = Relation.from_sets([{2}, {1, 3}, {4, 5}])
        >>> index = prepare_index(s, algorithm="ptsj")
        >>> r = Relation.from_sets([{1, 2, 3}, {2, 4}])
        >>> sorted(index.probe_many(r).pairs)
        [(0, 0), (0, 1), (1, 0)]
    """
    name = algorithm.strip().lower()
    if name == "auto":
        name = choose_algorithm_name(s)
    return make_algorithm(name, **kwargs).prepare(s, probe_hint=probe_hint)
