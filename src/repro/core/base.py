"""Join algorithm base classes, prepared indexes, result and statistics types.

Every join algorithm in this package — the paper's contributions (PTSJ,
PRETTI+) and the baselines (SHJ, PRETTI, TSJ, nested loop) — implements the
same two-phase contract: *build* an index on the indexed relation ``S``,
then *probe* it once per tuple of ``R``, emitting the pairs of

    R ⋈⊇ S = {(r, s) | r ∈ R, s ∈ S, r.set ⊇ s.set}

Since the two phases are independent, the index is a first-class object:
:meth:`SetContainmentJoin.prepare` builds a :class:`PreparedIndex` over
``S`` once, and the index then serves any number of probes —
:meth:`PreparedIndex.probe` streams the matches of a single record and
:meth:`PreparedIndex.probe_many` joins a whole probe relation.  The classic
one-shot :meth:`SetContainmentJoin.join` is exactly ``prepare`` followed by
one ``probe_many``; a server answering "which indexed sets does this query
contain?" keeps the :class:`PreparedIndex` alive instead and amortises the
build over millions of probes (the serving scenario the paper's Sec. III-E
index-reuse discussion anticipates).

:class:`JoinStats` carries the counters the paper's evaluation discusses
(candidate verifications, trie node visits, index-build share of runtime —
Sec. V-A3).  ``build_seconds`` is paid once per :meth:`prepare`;
``probe_seconds`` accumulates per probe, and the ``probe_calls`` /
``reused_index`` extras let benchmarks tell amortised runs from cold ones.

Both phases are observable: ``prepare`` runs under a ``build`` span and
``probe_many`` under a ``probe`` span of the current
:mod:`repro.obs` tracer, so activating a :class:`~repro.obs.Tracer`
around any join yields the paper's per-phase breakdown (with
algorithm-specific sub-phases such as ``signature_filter``/``verify``
nested inside ``probe``).  The default :class:`~repro.obs.NullTracer`
makes every span a no-op, keeping the un-traced path unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.analysis.concurrency import tracked_lock
from repro.analysis.sanitizer import (
    maybe_check_prepared_index,
    maybe_check_probe_accounting,
)
from repro.governance.memory import traced_build
from repro.governance.policy import current_policy, governor
from repro.kernels import active_backend_name
from repro.obs.clock import perf_counter
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import current_tracer
from repro.relations.relation import Relation, SetRecord

__all__ = [
    "CandidateGroup",
    "JoinStats",
    "JoinResult",
    "PreparedIndex",
    "SetContainmentJoin",
]


class CandidateGroup:
    """A group of indexed tuples sharing one set value.

    The merge-identical-sets extension (paper Sec. III-E1) stores, per
    distinct set value, the list of tuple ids carrying it; one set
    comparison then settles every id at once.  Algorithms that do not merge
    simply use singleton groups.

    Attributes:
        elements: The shared set value.
        ids: Tuple ids carrying that set value.
    """

    __slots__ = ("elements", "ids")

    def __init__(self, elements: frozenset[int], first_id: int) -> None:
        self.elements = elements
        self.ids = [first_id]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CandidateGroup |set|={len(self.elements)} ids={self.ids}>"


@dataclass(slots=True)
class JoinStats:
    """Operation counters and timings for one join execution.

    Attributes:
        algorithm: Registry name of the algorithm that produced the result.
        build_seconds: Index-construction wall time.  Zero whenever the
            result was served from an already-prepared index.
        probe_seconds: Probe/traversal wall time (includes verification).
        pairs: Number of output pairs.
        candidates: Candidate *groups* that reached exact set verification
            (signature algorithms) — the paper's ``N * |R|``.  IR-based
            algorithms have no verification step, so this stays 0.
        verifications: Exact set-containment checks executed.  Equals
            ``candidates`` for signature algorithms; 0 for PRETTI/PRETTI+.
        node_visits: Trie nodes dequeued across all probes (the paper's
            ``V * |R|``), or nodes traversed for IR-based algorithms.
        intersections: Inverted-list intersections (PRETTI/PRETTI+ only).
        index_nodes: Node count of the built index structure.
        signature_bits: Signature length used (0 for IR-based algorithms).
        extras: Algorithm-specific counters (e.g. SHJ submask enumerations).
            Prepared-index probes also record ``probe_calls`` (how many
            batches this index has served, including the current one) and
            ``reused_index`` (1 when the index existed before this call).
            The fault-tolerant parallel executor
            (:class:`repro.exec.resilient.ResilientParallelJoin`) always
            reports its degradation counters here — ``retries``,
            ``timeouts``, ``fallback_chunks``, ``pool_restarts`` and
            ``corrupt_chunks``, all zero on a clean run — so a join that
            survived worker failures is distinguishable from one that
            never saw any (see ``docs/ROBUSTNESS.md``).
    """

    algorithm: str = ""
    build_seconds: float = 0.0
    probe_seconds: float = 0.0
    pairs: int = 0
    candidates: int = 0
    verifications: int = 0
    node_visits: int = 0
    intersections: int = 0
    index_nodes: int = 0
    signature_bits: int = 0
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """End-to-end join time (build + probe), the paper's reported metric."""
        return self.build_seconds + self.probe_seconds

    @property
    def build_fraction(self) -> float:
        """Index-build share of the total runtime (paper Sec. V-A3)."""
        total = self.total_seconds
        return self.build_seconds / total if total > 0 else 0.0

    @property
    def precision(self) -> float:
        """Fraction of verified candidates that produced output groups.

        1.0 means the filter admitted no false positives (always the case
        for IR-based algorithms, which are verification-free).
        """
        if self.verifications == 0:
            return 1.0
        return min(1.0, self.pairs / self.verifications)

    def snapshot_registry(
        self, registry: MetricsRegistry, prefix: str = "metric."
    ) -> None:
        """Copy a metrics-registry snapshot into :attr:`extras`.

        The registry is the general mechanism (any component can register
        counters/gauges/histograms); this snapshot makes one run's view of
        it travel with the stats, so the named counters above are just the
        built-in instances of the same machinery.
        """
        registry.snapshot_into(self.extras, prefix=prefix)


class JoinResult:
    """The output pairs of one join plus its :class:`JoinStats`.

    Pairs are ``(r_id, s_id)`` with ``r.set ⊇ s.set``.  Order is
    algorithm-dependent; use :meth:`sorted_pairs` or :meth:`pair_set` to
    compare results across algorithms.
    """

    __slots__ = ("pairs", "stats")

    def __init__(self, pairs: list[tuple[int, int]], stats: JoinStats) -> None:
        self.pairs = pairs
        self.stats = stats
        stats.pairs = len(pairs)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    def pair_set(self) -> frozenset[tuple[int, int]]:
        """The pairs as a set (for cross-algorithm equality checks)."""
        return frozenset(self.pairs)

    def sorted_pairs(self) -> list[tuple[int, int]]:
        """The pairs in ascending ``(r_id, s_id)`` order."""
        return sorted(self.pairs)

    def __repr__(self) -> str:
        return f"<JoinResult {self.stats.algorithm} pairs={len(self.pairs)}>"


class PreparedIndex(ABC):
    """An index over one relation ``S``, built once and probed many times.

    Obtained from :meth:`SetContainmentJoin.prepare` (or the registry's
    ``prepare_index``).  The index is self-contained: it survives further
    ``prepare`` calls on the algorithm that created it, can be shipped to
    worker processes (fork-shared or pickled), and keeps cumulative
    statistics across every probe it serves.

    Subclasses implement :meth:`probe` (stream one record's matches) and
    may override :meth:`_probe_all` when batch probing has better-than-
    per-record structure (PRETTI's single trie traversal with an inverted
    file over the whole probe relation).

    Attributes:
        algorithm: Registry name of the algorithm that built the index.
        relation: The indexed relation ``S``.
        build_seconds: One-time construction wall time (set by ``prepare``).
        index_nodes: Node count of the index structure.
        signature_bits: Signature length (0 for IR-based indexes).
        build_extras: Static build-time descriptors (e.g. SHJ's
            ``partial_bits``), copied into every probe's stats.
    """

    def __init__(self, algorithm: str, relation: Relation) -> None:
        self.algorithm = algorithm
        self.relation = relation
        self.build_seconds = 0.0
        self.index_nodes = 0
        self.signature_bits = 0
        self.build_extras: dict[str, float] = {}
        self._probe_calls = 0
        self._probe_records = 0
        self._cumulative = JoinStats(algorithm=algorithm)
        # Guards the cumulative accounting (probe_calls/probe_records and
        # the cumulative stats) so a cache-resident index served to many
        # concurrent request threads never drops a batch.  Probing itself
        # is read-only over the index structures and runs unlocked.
        self._accounting_lock = tracked_lock("core.accounting")

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    @abstractmethod
    def probe(self, record: SetRecord, stats: JoinStats | None = None) -> Iterator[int]:
        """Stream the ids of indexed tuples whose set is ⊆ ``record``'s set.

        A generator: matches are yielded as they are found, and abandoning
        the iterator early skips the remaining enumeration/verification
        work, so huge outputs can be consumed incrementally.  Counters go
        to ``stats`` when given, else to this index's cumulative stats.
        """

    def probe_many(self, r: Relation) -> JoinResult:
        """Join a whole probe relation against this index.

        Performs *no* index construction: the returned stats always report
        ``build_seconds == 0.0``, with ``extras["probe_calls"]`` counting
        the batches served so far and ``extras["reused_index"]`` set to 1
        from the second batch on.
        """
        stats = self._new_probe_stats()
        tracer = current_tracer()
        with tracer.span("probe"):
            start = perf_counter()
            pairs = self._probe_all(r, stats)
            stats.probe_seconds = perf_counter() - start
            if tracer.enabled:
                tracer.count("probe_batches")
                tracer.count("probe_records", len(r))
                tracer.count("pairs", len(pairs))
                tracer.count("candidates", stats.candidates)
                tracer.count("verifications", stats.verifications)
                tracer.count("node_visits", stats.node_visits)
                tracer.count("intersections", stats.intersections)
                tracer.observe("probe_seconds", stats.probe_seconds)
        with self._accounting_lock:
            self._probe_calls += 1
            self._probe_records += len(r)
            stats.extras["probe_calls"] = self._probe_calls
            stats.extras["reused_index"] = 0 if self._probe_calls == 1 else 1
            result = JoinResult(pairs, stats)
            self._accumulate(stats)
            # Inside the lock so the sanitizer's batch-vs-cumulative
            # comparison sees one batch's accounting, not a torn view.
            maybe_check_probe_accounting(self, stats, len(r))
        return result

    def _probe_all(self, r: Relation, stats: JoinStats) -> list[tuple[int, int]]:
        """Default batch probe: one streaming :meth:`probe` per record."""
        pairs: list[tuple[int, int]] = []
        append = pairs.append
        gov = governor("probe", stats)
        for rec in r:
            if gov is not None:
                gov.tick()
            r_id = rec.rid
            for s_id in self.probe(rec, stats):
                append((r_id, s_id))
        return pairs

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def _new_probe_stats(self) -> JoinStats:
        stats = JoinStats(
            algorithm=self.algorithm,
            index_nodes=self.index_nodes,
            signature_bits=self.signature_bits,
        )
        stats.extras.update(self.build_extras)
        return stats

    def _target(self, stats: JoinStats | None) -> JoinStats:
        """Resolve the stats object a raw :meth:`probe` should write to."""
        if stats is None:
            # _probe_records is accounting shared with probe_many's
            # locked batch bookkeeping; a raw probe must take the same
            # lock or concurrent batches can drop its increment (RPR011).
            with self._accounting_lock:
                self._probe_records += 1
            return self._cumulative
        return stats

    def _accumulate(self, stats: JoinStats) -> None:
        cum = self._cumulative
        cum.probe_seconds += stats.probe_seconds
        cum.pairs += stats.pairs
        cum.candidates += stats.candidates
        cum.verifications += stats.verifications
        cum.node_visits += stats.node_visits
        cum.intersections += stats.intersections
        for key, value in stats.extras.items():
            if key in ("probe_calls", "reused_index") or key in self.build_extras:
                continue
            cum.extras[key] = cum.extras.get(key, 0) + value

    def join_stats(self) -> JoinStats:
        """Cumulative statistics over the index's whole lifetime.

        ``build_seconds`` appears exactly once however many probes ran;
        ``probe_seconds`` and all counters are summed across probes.
        """
        cum = self._cumulative
        snap = JoinStats(
            algorithm=self.algorithm,
            build_seconds=self.build_seconds,
            probe_seconds=cum.probe_seconds,
            candidates=cum.candidates,
            verifications=cum.verifications,
            node_visits=cum.node_visits,
            intersections=cum.intersections,
            index_nodes=self.index_nodes,
            signature_bits=self.signature_bits,
        )
        snap.pairs = cum.pairs
        snap.extras.update(self.build_extras)
        snap.extras.update(cum.extras)
        snap.extras["probe_calls"] = self._probe_calls
        snap.extras["probe_records"] = self._probe_records
        snap.extras["reused_index"] = 1 if self._probe_calls > 1 else 0
        return snap

    @property
    def probe_calls(self) -> int:
        """Number of :meth:`probe_many` batches served so far."""
        return self._probe_calls

    def __len__(self) -> int:
        """Number of indexed tuples."""
        return len(self.relation)

    # ------------------------------------------------------------------
    # Pickling (indexes are shipped to pool workers under spawn)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        del state["_accounting_lock"]  # locks do not pickle; worker gets its own
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._accounting_lock = tracked_lock("core.accounting")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def memory_objects(self, probe_relation: Relation | None = None) -> list[Any]:
        """The objects constituting this index, for memory measurement.

        Algorithms that also need probe-side structures (PRETTI's inverted
        file, trie-trie's R-trie) include them when ``probe_relation`` is
        given, matching the paper's Fig. 6a accounting.
        """
        return [self]

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.algorithm} |S|={len(self.relation)} "
            f"probes={self._probe_calls}>"
        )


class SetContainmentJoin(ABC):
    """Template for set-containment join algorithms.

    Subclasses implement :meth:`_prepare` (index the relation ``S`` and
    return a :class:`PreparedIndex`); :meth:`prepare` wires in wall-clock
    timing and :meth:`join` composes ``prepare`` with one batch probe.

    A single instance may be reused: each :meth:`prepare`/:meth:`join` call
    builds a fresh, independent index.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    def prepare(self, s: Relation, probe_hint: Relation | None = None) -> PreparedIndex:
        """Build a reusable index over ``s`` (the contained side).

        Args:
            s: The relation to index.
            probe_hint: Optional probe relation used for *parameter
                selection only* (e.g. deriving the signature length from
                global dataset statistics, Sec. III-D); the index never
                depends on the probe side's content.  :meth:`join` passes
                its ``r`` here so the one-shot path keeps the paper's exact
                parameterisation.
        """
        tracer = current_tracer()
        with tracer.span("build"), traced_build(current_policy()):
            # Boundary governor: its memory base is sampled *before* the
            # build, and the poll after `_prepare` returns checks every
            # bound once at the build boundary — so a build smaller than
            # the poll cadence still has its budget and deadline honored.
            gov = governor("build")
            start = perf_counter()
            index = self._prepare(s, probe_hint)
            if gov is not None:
                gov.poll()
            # Every probe batch this index serves reports which kernel
            # backend was live at build time (build_extras are copied
            # into each batch's stats and excluded from accumulation).
            index.build_extras.setdefault("kernel_backend", active_backend_name())
            index.build_seconds = perf_counter() - start
            if tracer.enabled:
                tracer.count("index_builds")
                tracer.count("indexed_records", len(s))
                tracer.count("index_nodes", index.index_nodes)
                tracer.observe("build_seconds", index.build_seconds)
        maybe_check_prepared_index(index)
        return index

    def join(self, r: Relation, s: Relation) -> JoinResult:
        """Compute ``R ⋈⊇ S`` and return pairs plus statistics.

        Exactly ``prepare(s)`` followed by one ``probe_many(r)``; the
        returned stats carry the build time of the freshly-built index.
        """
        index = self.prepare(s, probe_hint=r)
        result = index.probe_many(r)
        result.stats.build_seconds = index.build_seconds
        return result

    @abstractmethod
    def _prepare(self, s: Relation, probe_hint: Relation | None) -> PreparedIndex:
        """Build the index over ``s`` and return it.

        ``probe_hint`` is available for parameter selection only; the index
        must not depend on the probe relation's content.
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__} ({self.name})>"
