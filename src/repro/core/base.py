"""Join algorithm base classes, result and statistics types.

Every join algorithm in this package — the paper's contributions (PTSJ,
PRETTI+) and the baselines (SHJ, PRETTI, TSJ, nested loop) — implements the
same two-phase contract: *build* an index on the indexed relation ``S``,
then *probe* it once per tuple of ``R``, emitting the pairs of

    R ⋈⊇ S = {(r, s) | r ∈ R, s ∈ S, r.set ⊇ s.set}

:class:`SetContainmentJoin` is the template: it times the two phases and
assembles a :class:`JoinResult` whose :class:`JoinStats` carries the
counters the paper's evaluation discusses (candidate verifications, trie
node visits, index-build share of runtime — Sec. V-A3).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.relations.relation import Relation

__all__ = ["CandidateGroup", "JoinStats", "JoinResult", "SetContainmentJoin"]


class CandidateGroup:
    """A group of indexed tuples sharing one set value.

    The merge-identical-sets extension (paper Sec. III-E1) stores, per
    distinct set value, the list of tuple ids carrying it; one set
    comparison then settles every id at once.  Algorithms that do not merge
    simply use singleton groups.

    Attributes:
        elements: The shared set value.
        ids: Tuple ids carrying that set value.
    """

    __slots__ = ("elements", "ids")

    def __init__(self, elements: frozenset[int], first_id: int) -> None:
        self.elements = elements
        self.ids = [first_id]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CandidateGroup |set|={len(self.elements)} ids={self.ids}>"


@dataclass(slots=True)
class JoinStats:
    """Operation counters and timings for one join execution.

    Attributes:
        algorithm: Registry name of the algorithm that produced the result.
        build_seconds: Index-construction wall time.
        probe_seconds: Probe/traversal wall time (includes verification).
        pairs: Number of output pairs.
        candidates: Candidate *groups* that reached exact set verification
            (signature algorithms) — the paper's ``N * |R|``.  IR-based
            algorithms have no verification step, so this stays 0.
        verifications: Exact set-containment checks executed.  Equals
            ``candidates`` for signature algorithms; 0 for PRETTI/PRETTI+.
        node_visits: Trie nodes dequeued across all probes (the paper's
            ``V * |R|``), or nodes traversed for IR-based algorithms.
        intersections: Inverted-list intersections (PRETTI/PRETTI+ only).
        index_nodes: Node count of the built index structure.
        signature_bits: Signature length used (0 for IR-based algorithms).
        extras: Algorithm-specific counters (e.g. SHJ submask enumerations).
    """

    algorithm: str = ""
    build_seconds: float = 0.0
    probe_seconds: float = 0.0
    pairs: int = 0
    candidates: int = 0
    verifications: int = 0
    node_visits: int = 0
    intersections: int = 0
    index_nodes: int = 0
    signature_bits: int = 0
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """End-to-end join time (build + probe), the paper's reported metric."""
        return self.build_seconds + self.probe_seconds

    @property
    def build_fraction(self) -> float:
        """Index-build share of the total runtime (paper Sec. V-A3)."""
        total = self.total_seconds
        return self.build_seconds / total if total > 0 else 0.0

    @property
    def precision(self) -> float:
        """Fraction of verified candidates that produced output groups.

        1.0 means the filter admitted no false positives (always the case
        for IR-based algorithms, which are verification-free).
        """
        if self.verifications == 0:
            return 1.0
        return min(1.0, self.pairs / self.verifications)


class JoinResult:
    """The output pairs of one join plus its :class:`JoinStats`.

    Pairs are ``(r_id, s_id)`` with ``r.set ⊇ s.set``.  Order is
    algorithm-dependent; use :meth:`sorted_pairs` or :meth:`pair_set` to
    compare results across algorithms.
    """

    __slots__ = ("pairs", "stats")

    def __init__(self, pairs: list[tuple[int, int]], stats: JoinStats) -> None:
        self.pairs = pairs
        self.stats = stats
        stats.pairs = len(pairs)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    def pair_set(self) -> frozenset[tuple[int, int]]:
        """The pairs as a set (for cross-algorithm equality checks)."""
        return frozenset(self.pairs)

    def sorted_pairs(self) -> list[tuple[int, int]]:
        """The pairs in ascending ``(r_id, s_id)`` order."""
        return sorted(self.pairs)

    def __repr__(self) -> str:
        return f"<JoinResult {self.stats.algorithm} pairs={len(self.pairs)}>"


class SetContainmentJoin(ABC):
    """Template for set-containment join algorithms.

    Subclasses implement :meth:`_build` (index the relation ``S``) and
    :meth:`_probe` (stream the relation ``R`` against the index, returning
    output pairs); :meth:`join` wires them together with wall-clock timing.

    A single instance may be reused across joins; each :meth:`join` call
    resets per-run state via :meth:`_build`.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    def join(self, r: Relation, s: Relation) -> JoinResult:
        """Compute ``R ⋈⊇ S`` and return pairs plus statistics."""
        stats = JoinStats(algorithm=self.name)
        start = time.perf_counter()
        self._build(r, s, stats)
        stats.build_seconds = time.perf_counter() - start
        start = time.perf_counter()
        pairs = self._probe(r, stats)
        stats.probe_seconds = time.perf_counter() - start
        return JoinResult(pairs, stats)

    @abstractmethod
    def _build(self, r: Relation, s: Relation, stats: JoinStats) -> None:
        """Build the index over ``s``.

        ``r`` is available for parameter selection only (e.g. deriving the
        signature length from global dataset statistics, Sec. III-D); the
        index must not depend on R's content.
        """

    @abstractmethod
    def _probe(self, r: Relation, stats: JoinStats) -> list[tuple[int, int]]:
        """Probe the index with every tuple of ``r``; return output pairs."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} ({self.name})>"
