"""The generic signature-join framework (paper Algorithm 1).

The paper factors SHJ into a reusable skeleton — hash every S-tuple into an
index, then for each R-tuple enumerate index entries whose signature is
contained in the probe signature and verify the surviving candidates with
an exact set comparison — and instantiates it with three different
enumeration structures (hash map for SHJ, plain trie for TSJ/Algorithm 4,
Patricia trie for PTSJ/Algorithm 5).

:class:`SignatureJoinBase` is that skeleton.  Subclasses provide the index
(:meth:`_build_index`) and the subset enumeration
(:meth:`_enumerate_groups`); the shared :meth:`_probe` implements lines
4–8 of Algorithm 1, including the merge-identical-sets output expansion
(Sec. III-E1).
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Iterable

from repro.core.base import CandidateGroup, JoinStats, SetContainmentJoin
from repro.relations.relation import Relation, SetRecord
from repro.signatures.hashing import ModuloScheme, SignatureScheme
from repro.signatures.length import SignatureLengthStrategy

__all__ = ["SignatureJoinBase", "insert_into_groups"]


def insert_into_groups(groups: list[CandidateGroup], record: SetRecord) -> None:
    """Add ``record`` to a leaf's group list, merging identical sets.

    Signature-sharing tuples are rare per leaf, and identical *sets* even
    rarer, so the linear scan is cheap; it implements the Sec. III-E1
    merge-identical-sets extension ("maintaining a mapping list of tuples
    that have the same set elements").
    """
    for group in groups:
        if group.elements == record.elements:
            group.ids.append(record.rid)
            return
    groups.append(CandidateGroup(record.elements, record.rid))


class SignatureJoinBase(SetContainmentJoin):
    """Algorithm 1 with pluggable index and subset enumeration.

    Args:
        bits: Signature length; ``None`` selects it per dataset via
            ``length_strategy`` (Sec. III-D) from the *combined* statistics
            of R and S at :meth:`join` time.
        scheme_factory: Signature hash scheme constructor, default the
            paper's ``x mod b`` scheme.
        length_strategy: Used only when ``bits`` is ``None``.
    """

    def __init__(
        self,
        bits: int | None = None,
        scheme_factory: type[SignatureScheme] = ModuloScheme,
        length_strategy: SignatureLengthStrategy | None = None,
    ) -> None:
        self.requested_bits = bits
        self.scheme_factory = scheme_factory
        self.length_strategy = length_strategy or SignatureLengthStrategy()
        self.scheme: SignatureScheme | None = None

    # ------------------------------------------------------------------
    # Parameter selection
    # ------------------------------------------------------------------
    def _choose_bits(self, r: Relation, s: Relation) -> int:
        """Resolve the signature length for this join.

        Explicit ``bits`` wins; otherwise apply the Sec. III-D strategy to
        the average cardinality and active-domain size of both relations.
        """
        if self.requested_bits is not None:
            return self.requested_bits
        cards = [rec.cardinality for rec in r] + [rec.cardinality for rec in s]
        total = sum(cards)
        avg_c = max(total / len(cards), 1.0) if cards else 1.0
        domain = max(r.max_element(), s.max_element()) + 1
        return self.length_strategy.choose(avg_c, max(domain, 1))

    # ------------------------------------------------------------------
    # Template hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _build_index(self, s: Relation, stats: JoinStats) -> None:
        """Index every tuple of ``s`` under its signature (Alg. 1 lines 1–3)."""

    @abstractmethod
    def _enumerate_groups(self, signature: int, stats: JoinStats) -> Iterable[list[CandidateGroup]]:
        """Yield the group lists of index entries with ``entry.sig ⊑ signature``.

        This is the pluggable "subset enumeration algorithm" of Algorithm 1
        line 5 — SHJENUM, TRIEENUM or PATRICIAENUM.
        """

    # ------------------------------------------------------------------
    # Template body
    # ------------------------------------------------------------------
    def _build(self, r: Relation, s: Relation, stats: JoinStats) -> None:
        bits = self._choose_bits(r, s)
        stats.signature_bits = bits
        self.scheme = self.scheme_factory(bits)
        self._build_index(s, stats)

    def _probe(self, r: Relation, stats: JoinStats) -> list[tuple[int, int]]:
        """Algorithm 1 lines 4–8 over every probe tuple."""
        assert self.scheme is not None, "join() must build before probing"
        pairs: list[tuple[int, int]] = []
        signature = self.scheme.signature
        for rec in r:
            r_sig = signature(rec.elements)
            r_set = rec.elements
            r_id = rec.rid
            for groups in self._enumerate_groups(r_sig, stats):
                for group in groups:
                    stats.candidates += 1
                    stats.verifications += 1
                    if group.elements <= r_set:
                        for s_id in group.ids:
                            pairs.append((r_id, s_id))
        return pairs
