"""The generic signature-join framework (paper Algorithm 1).

The paper factors SHJ into a reusable skeleton — hash every S-tuple into an
index, then for each R-tuple enumerate index entries whose signature is
contained in the probe signature and verify the surviving candidates with
an exact set comparison — and instantiates it with three different
enumeration structures (hash map for SHJ, plain trie for TSJ/Algorithm 4,
Patricia trie for PTSJ/Algorithm 5).

:class:`SignatureJoinBase` is that skeleton.  Subclasses provide the index
(:meth:`_build_index`) and the subset enumeration
(:meth:`_enumerate_groups`); the shared :class:`SignaturePreparedIndex`
implements lines 4–8 of Algorithm 1 as a streaming per-record probe,
including the merge-identical-sets output expansion (Sec. III-E1).
"""

from __future__ import annotations

import copy
from abc import abstractmethod
from typing import Any, Iterable, Iterator

from repro.core.base import (
    CandidateGroup,
    JoinStats,
    PreparedIndex,
    SetContainmentJoin,
)
from repro.governance.policy import governor
from repro.kernels import KernelBackend, SignaturePack, get_backend
from repro.obs.tracer import current_tracer
from repro.obs.clock import perf_counter
from repro.relations.relation import Relation, SetRecord
from repro.signatures.hashing import ModuloScheme, SignatureScheme
from repro.signatures.length import SignatureLengthStrategy

__all__ = ["SignatureJoinBase", "SignaturePreparedIndex", "insert_into_groups"]


def insert_into_groups(groups: list[CandidateGroup], record: SetRecord) -> None:
    """Add ``record`` to a leaf's group list, merging identical sets.

    Signature-sharing tuples are rare per leaf, and identical *sets* even
    rarer, so the linear scan is cheap; it implements the Sec. III-E1
    merge-identical-sets extension ("maintaining a mapping list of tuples
    that have the same set elements").
    """
    for group in groups:
        if group.elements == record.elements:
            group.ids.append(record.rid)
            return
    groups.append(CandidateGroup(record.elements, record.rid))


class SignaturePreparedIndex(PreparedIndex):
    """A prepared signature index: Algorithm 1's probe loop, streamed.

    Holds a snapshot of the algorithm instance taken right after the build,
    so the index stays valid even if the originating algorithm object later
    prepares another index (each build rebinds fresh structures).
    """

    def __init__(self, algorithm: "SignatureJoinBase", relation: Relation) -> None:
        super().__init__(algorithm.name, relation)
        self._algorithm = algorithm
        # Relation-wide packed signatures, filled in by ``_prepare`` right
        # after the build (one kernel pack shared by every probe batch).
        self._kernel: KernelBackend | None = None
        self._signature_pack: SignaturePack | None = None
        self._pack_rids: tuple[int, ...] = ()

    @property
    def scheme(self) -> SignatureScheme:
        """The signature hash scheme the index was built with."""
        assert self._algorithm.scheme is not None
        return self._algorithm.scheme

    @property
    def trie(self):
        """The trie structure behind the index (``None`` for SHJ)."""
        return getattr(self._algorithm, "trie", None)

    def probe(self, record: SetRecord, stats: JoinStats | None = None) -> Iterator[int]:
        """Algorithm 1 lines 4–8 for one probe tuple, yielding matches lazily.

        Candidates are verified one group at a time, so consuming only the
        first ``k`` matches runs only the verifications needed to reach
        them.
        """
        stats = self._target(stats)
        r_set = record.elements
        r_sig = self.scheme.signature(r_set)
        for groups in self._algorithm._enumerate_groups(r_sig, stats):
            for group in groups:
                stats.candidates += 1
                stats.verifications += 1
                if group.elements <= r_set:
                    yield from group.ids

    def _probe_all(self, r: Relation, stats: JoinStats) -> list[tuple[int, int]]:
        """Batch probe; when a tracer is active, split filter from verify.

        The paper's Sec. III-C cost model separates the subset-enumeration
        cost (``V·|R|`` node visits) from the verification cost
        (``N·|R|`` exact set comparisons); under an active tracer this
        override times the two aggregates separately and reports them as
        ``signature_filter`` / ``verify`` child spans of ``probe``.  The
        un-traced path takes the base class's streaming loop untouched —
        both paths emit identical pairs (in the same order) and identical
        counters, which ``tests/test_differential.py`` locks in.
        """
        tracer = current_tracer()
        if not tracer.enabled:
            return super()._probe_all(r, stats)
        perf = perf_counter
        signature = self.scheme.signature
        enumerate_groups = self._algorithm._enumerate_groups
        candidates_before = stats.candidates
        visits_before = stats.node_visits
        filter_seconds = 0.0
        verify_seconds = 0.0
        leaf_hits = 0
        pairs: list[tuple[int, int]] = []
        append = pairs.append
        gov = governor("probe", stats)
        for rec in r:
            if gov is not None:
                gov.tick()
            r_set = rec.elements
            r_id = rec.rid
            t0 = perf()
            group_lists = list(enumerate_groups(signature(r_set), stats))
            t1 = perf()
            filter_seconds += t1 - t0
            leaf_hits += len(group_lists)
            for groups in group_lists:
                for group in groups:
                    stats.candidates += 1
                    stats.verifications += 1
                    if group.elements <= r_set:
                        for s_id in group.ids:
                            append((r_id, s_id))
            verify_seconds += perf() - t1
        # mirror=False: the enclosing probe span already counts these
        # quantities into the registry; these records only attribute the
        # per-phase breakdown inside the span tree.
        tracer.record(
            "signature_filter",
            filter_seconds,
            {
                "node_visits": stats.node_visits - visits_before,
                "leaf_hits": leaf_hits,
            },
            calls=len(r),
            mirror=False,
        )
        tracer.record(
            "verify",
            verify_seconds,
            {
                "candidates": stats.candidates - candidates_before,
                "pairs": len(pairs),
            },
            calls=len(r),
            mirror=False,
        )
        if tracer.registry is not None:
            # leaf_hits has no other registry source.
            tracer.registry.counter("leaf_hits").inc(leaf_hits)
        return pairs

    # ------------------------------------------------------------------
    # Kernel-backed whole-relation signature scans
    # ------------------------------------------------------------------
    @property
    def kernel(self) -> KernelBackend:
        """The kernel backend this index was packed with."""
        assert self._kernel is not None
        return self._kernel

    @property
    def signature_pack(self) -> SignaturePack:
        """Every indexed record's signature, packed once at prepare time."""
        assert self._signature_pack is not None
        return self._signature_pack

    def scan_candidates(self, record: SetRecord) -> list[int]:
        """Ids of indexed records whose signature ``⊑`` the probe's.

        One batched kernel call over the whole relation — the flat
        (enumeration-free) form of the signature filter.  The result is a
        superset of what trie/bucket enumeration admits for the same
        probe (enumeration only prunes, never adds), so it serves as a
        prefilter, a cross-check, and the kernel-speedup benchmark
        surface.  Does not touch any ``JoinStats`` counters.
        """
        sig = self.scheme.signature(record.elements)
        rows = self.kernel.filter_subset_batch(self.signature_pack, sig)
        rids = self._pack_rids
        return [rids[i] for i in rows]

    def scan_superset_candidates(self, record: SetRecord) -> list[int]:
        """Ids of indexed records whose signature covers the probe's.

        The superset-join direction (``probe ⊑ indexed``), batched the
        same way; the candidate prefilter for ``R ⋈⊆ S``.
        """
        sig = self.scheme.signature(record.elements)
        rows = self.kernel.filter_superset_batch(self.signature_pack, sig)
        rids = self._pack_rids
        return [rids[i] for i in rows]

    def memory_objects(self, probe_relation: Relation | None = None) -> list[Any]:
        objs: list[Any] = []
        for attr in ("trie", "buckets"):
            value = getattr(self._algorithm, attr, None)
            if value is not None:
                objs.append(value)
        return objs or [self._algorithm]


class SignatureJoinBase(SetContainmentJoin):
    """Algorithm 1 with pluggable index and subset enumeration.

    Args:
        bits: Signature length; ``None`` selects it per dataset via
            ``length_strategy`` (Sec. III-D).  The one-shot :meth:`join`
            path applies the strategy to the *combined* statistics of R and
            S; ``prepare`` without a probe hint uses S's statistics alone.
        scheme_factory: Signature hash scheme constructor, default the
            paper's ``x mod b`` scheme.
        length_strategy: Used only when ``bits`` is ``None``.
    """

    def __init__(
        self,
        bits: int | None = None,
        scheme_factory: type[SignatureScheme] = ModuloScheme,
        length_strategy: SignatureLengthStrategy | None = None,
    ) -> None:
        self.requested_bits = bits
        self.scheme_factory = scheme_factory
        self.length_strategy = length_strategy or SignatureLengthStrategy()
        self.scheme: SignatureScheme | None = None

    # ------------------------------------------------------------------
    # Parameter selection
    # ------------------------------------------------------------------
    def _choose_bits(self, r: Relation | None, s: Relation) -> int:
        """Resolve the signature length for this index.

        Explicit ``bits`` wins; otherwise apply the Sec. III-D strategy to
        the average cardinality and active-domain size of the relations at
        hand — both sides when a probe hint is available (the paper's
        global-statistics rule), the indexed side alone otherwise.
        """
        if self.requested_bits is not None:
            return self.requested_bits
        cards = [rec.cardinality for rec in s]
        max_elem = s.max_element()
        if r is not None:
            cards += [rec.cardinality for rec in r]
            max_elem = max(max_elem, r.max_element())
        total = sum(cards)
        avg_c = max(total / len(cards), 1.0) if cards else 1.0
        domain = max_elem + 1
        return self.length_strategy.choose(avg_c, max(domain, 1))

    # ------------------------------------------------------------------
    # Template hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _build_index(self, s: Relation, stats: JoinStats) -> None:
        """Index every tuple of ``s`` under its signature (Alg. 1 lines 1–3)."""

    @abstractmethod
    def _enumerate_groups(self, signature: int, stats: JoinStats) -> Iterable[list[CandidateGroup]]:
        """Yield the group lists of index entries with ``entry.sig ⊑ signature``.

        This is the pluggable "subset enumeration algorithm" of Algorithm 1
        line 5 — SHJENUM, TRIEENUM or PATRICIAENUM.
        """

    # ------------------------------------------------------------------
    # Template body
    # ------------------------------------------------------------------
    def _prepare(self, s: Relation, probe_hint: Relation | None = None) -> PreparedIndex:
        bits = self._choose_bits(probe_hint, s)
        self.scheme = self.scheme_factory(bits)
        build_stats = JoinStats(algorithm=self.name)
        self._build_index(s, build_stats)
        # Snapshot the instance so later prepare() calls (which rebind fresh
        # structures) cannot invalidate this index.
        index = SignaturePreparedIndex(copy.copy(self), s)
        index.signature_bits = bits
        index.index_nodes = build_stats.index_nodes
        index.build_extras = dict(build_stats.extras)
        # Pack the whole relation's signatures once; cached on the index
        # so every probe batch (and the scan prefilters) reuses it.
        kernel = get_backend()
        signature = self.scheme.signature
        sigs: list[int] = []
        rids: list[int] = []
        gov = governor("build", build_stats)
        for rec in s:
            if gov is not None:
                gov.tick()
            sigs.append(signature(rec.elements))
            rids.append(rec.rid)
        index._kernel = kernel
        index._signature_pack = kernel.pack_signatures(sigs, bits)
        index._pack_rids = tuple(rids)
        return index
