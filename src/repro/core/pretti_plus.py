"""PRETTI+ — PRETTI over an element-space Patricia trie (paper Sec. IV).

The paper's second contribution.  PRETTI+ keeps PRETTI's architecture —
trie on ``S``, inverted index on ``R``, one traversal with a running
candidate list — but stores the trie as a Patricia trie
(:class:`~repro.tries.set_patricia.SetPatriciaTrie`, built with the paper's
Algorithm 8), whose nodes hold *runs* of elements.  Two effects:

* **memory**: single-child chains collapse, so memory stops exploding with
  set cardinality (paper Fig. 6a shows ~10x less than PRETTI);
* **traversal**: one node processes several elements ("lists of tuples from
  the inverted index have to be joined several times in each node"), so far
  fewer nodes are visited.

As with PRETTI, only the trie depends on ``S``; :meth:`PRETTIPlus._prepare`
builds it once into a :class:`PrettiPlusPreparedIndex`, and the inverted
file over the probe relation is probe-batch state.  Like PRETTI, the join
is verification-free: the candidate list is exact.  The paper's verdict
(Sec. IV): "PRETTI+ is always a better choice than PRETTI", and it is the
overall winner for low-cardinality datasets (Figs. 6c–6d, 7c, 8).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.base import JoinStats, PreparedIndex, SetContainmentJoin
from repro.governance.policy import governor
from repro.index.inverted import InvertedIndex
from repro.obs.tracer import current_tracer
from repro.relations.relation import Relation, SetRecord
from repro.tries.set_patricia import SetPatriciaTrie

__all__ = ["PRETTIPlus", "PrettiPlusPreparedIndex"]


class PrettiPlusPreparedIndex(PreparedIndex):
    """A prepared PRETTI+ Patricia trie over ``S``.

    Batch probes replay PRETTI's traversal adapted to multi-element nodes;
    single-record probes descend a child only when the probe set contains
    the child's whole prefix run, streaming resident tuples on the way.
    """

    def __init__(self, trie: SetPatriciaTrie, relation: Relation) -> None:
        super().__init__("pretti+", relation)
        self.trie = trie

    def probe(self, record: SetRecord, stats: JoinStats | None = None) -> Iterator[int]:
        """Stream s-ids whose set is contained in ``record``'s set."""
        stats = self._target(stats)
        elements = record.elements
        gov = governor("probe", stats)
        stack = [self.trie.root]
        while stack:
            if gov is not None:
                gov.tick()
            node = stack.pop()
            stats.node_visits += 1
            if node.tuples:
                yield from node.tuples
            for child in node.children.values():
                if all(element in elements for element in child.prefix):
                    stack.append(child)

    def _probe_all(self, r: Relation, stats: JoinStats) -> list[tuple[int, int]]:
        """PRETTI's traversal adapted to multi-element nodes.

        Entering a child costs one inverted-list intersection per element of
        the child's prefix run; the refinement short-circuits (and the
        subtree is pruned without being visited) as soon as the candidate
        list empties, because descendants only ever shrink it further.

        Under an active tracer the probe-side phases — inverted-file
        construction (``invert``) and the traversal (``traverse``) — are
        reported as child spans of ``probe``, mirroring PRETTI.
        """
        tracer = current_tracer()
        with tracer.span("invert"):
            index = InvertedIndex(r)
            if tracer.enabled:
                tracer.count("inverted_records", len(index.all_ids))
        pairs: list[tuple[int, int]] = []
        intersections_before = index.intersection_count
        visits = 0
        with tracer.span("traverse"):
            # Stack entries carry the candidate list *after* the node's prefix
            # has been applied; the root's prefix is empty so it starts with all
            # R-ids (every R-tuple contains the empty prefix).
            gov = governor("probe", stats)
            stack: list[tuple] = [(self.trie.root, index.all_ids)] if index.all_ids else []
            while stack:
                if gov is not None:
                    gov.tick()
                node, current = stack.pop()
                visits += 1
                if node.tuples:
                    for s_id in node.tuples:
                        for r_id in current:
                            pairs.append((r_id, s_id))
                for child in node.children.values():
                    child_list = current
                    for element in child.prefix:
                        child_list = index.refine(child_list, element)
                        if not child_list:
                            break
                    if child_list:
                        stack.append((child, child_list))
            if tracer.enabled:
                tracer.count("node_visits", visits)
                tracer.count(
                    "intersections", index.intersection_count - intersections_before
                )
        stats.node_visits += visits
        stats.intersections += index.intersection_count - intersections_before
        return pairs

    def memory_objects(self, probe_relation: Relation | None = None) -> list[Any]:
        objs: list[Any] = [self.trie]
        if probe_relation is not None:
            objs.append(InvertedIndex(probe_relation))
        return objs


class PRETTIPlus(SetContainmentJoin):
    """Patricia-trie PRETTI (the paper's PRETTI+).

    Example:
        >>> from repro.relations import Relation
        >>> profiles = Relation.from_sets([{1, 3, 5, 6}, {0, 2, 7}, {0, 2, 3}])
        >>> prefs = Relation.from_sets([{1, 3}, {1, 5, 6}, {0, 2, 7}])
        >>> sorted(PRETTIPlus().join(profiles, prefs).pairs)
        [(0, 0), (0, 1), (1, 2)]
    """

    name = "pretti+"

    def __init__(self) -> None:
        self.trie: SetPatriciaTrie | None = None

    def _prepare(self, s: Relation, probe_hint: Relation | None = None) -> PrettiPlusPreparedIndex:
        trie = SetPatriciaTrie()
        gov = governor("build")
        for rec in s:
            if gov is not None:
                gov.tick()
            trie.insert(rec.sorted_elements(), rec.rid)
        self.trie = trie
        index = PrettiPlusPreparedIndex(trie, s)
        index.index_nodes = trie.node_count()
        return index

    def built_trie(self) -> SetPatriciaTrie:
        """The Patricia trie built by the last :meth:`join`/:meth:`prepare`.

        Raises:
            RuntimeError: If no index has been built yet.
        """
        if self.trie is None:
            raise RuntimeError("no index built yet; run join() or prepare() first")
        return self.trie
