"""PRETTI+ — PRETTI over an element-space Patricia trie (paper Sec. IV).

The paper's second contribution.  PRETTI+ keeps PRETTI's architecture —
trie on ``S``, inverted index on ``R``, one traversal with a running
candidate list — but stores the trie as a Patricia trie
(:class:`~repro.tries.set_patricia.SetPatriciaTrie`, built with the paper's
Algorithm 8), whose nodes hold *runs* of elements.  Two effects:

* **memory**: single-child chains collapse, so memory stops exploding with
  set cardinality (paper Fig. 6a shows ~10x less than PRETTI);
* **traversal**: one node processes several elements ("lists of tuples from
  the inverted index have to be joined several times in each node"), so far
  fewer nodes are visited.

Like PRETTI, the join is verification-free: the candidate list is exact.
The paper's verdict (Sec. IV): "PRETTI+ is always a better choice than
PRETTI", and it is the overall winner for low-cardinality datasets
(Figs. 6c–6d, 7c, 8).
"""

from __future__ import annotations

from repro.core.base import JoinStats, SetContainmentJoin
from repro.index.inverted import InvertedIndex
from repro.relations.relation import Relation
from repro.tries.set_patricia import SetPatriciaTrie

__all__ = ["PRETTIPlus"]


class PRETTIPlus(SetContainmentJoin):
    """Patricia-trie PRETTI (the paper's PRETTI+).

    Example:
        >>> from repro.relations import Relation
        >>> profiles = Relation.from_sets([{1, 3, 5, 6}, {0, 2, 7}, {0, 2, 3}])
        >>> prefs = Relation.from_sets([{1, 3}, {1, 5, 6}, {0, 2, 7}])
        >>> sorted(PRETTIPlus().join(profiles, prefs).pairs)
        [(0, 0), (0, 1), (1, 2)]
    """

    name = "pretti+"

    def __init__(self) -> None:
        self.trie: SetPatriciaTrie | None = None
        self.index: InvertedIndex | None = None

    def _build(self, r: Relation, s: Relation, stats: JoinStats) -> None:
        trie = SetPatriciaTrie()
        for rec in s:
            trie.insert(rec.sorted_elements(), rec.rid)
        self.trie = trie
        self.index = InvertedIndex(r)
        stats.index_nodes = trie.node_count()

    def _probe(self, r: Relation, stats: JoinStats) -> list[tuple[int, int]]:
        """PRETTI's traversal adapted to multi-element nodes.

        Entering a child costs one inverted-list intersection per element of
        the child's prefix run; the refinement short-circuits (and the
        subtree is pruned without being visited) as soon as the candidate
        list empties, because descendants only ever shrink it further.
        """
        trie, index = self.trie, self.index
        assert trie is not None and index is not None
        pairs: list[tuple[int, int]] = []
        intersections_before = index.intersection_count
        visits = 0
        # Stack entries carry the candidate list *after* the node's prefix
        # has been applied; the root's prefix is empty so it starts with all
        # R-ids (every R-tuple contains the empty prefix).
        stack: list[tuple] = [(trie.root, index.all_ids)] if index.all_ids else []
        while stack:
            node, current = stack.pop()
            visits += 1
            if node.tuples:
                for s_id in node.tuples:
                    for r_id in current:
                        pairs.append((r_id, s_id))
            for child in node.children.values():
                child_list = current
                for element in child.prefix:
                    child_list = index.refine(child_list, element)
                    if not child_list:
                        break
                if child_list:
                    stack.append((child, child_list))
        stats.node_visits += visits
        stats.intersections += index.intersection_count - intersections_before
        return pairs

    def built_trie(self) -> SetPatriciaTrie:
        """The Patricia trie built by the last :meth:`join`.

        Raises:
            RuntimeError: If no join has been executed yet.
        """
        if self.trie is None:
            raise RuntimeError("no index built yet; run join() first")
        return self.trie
