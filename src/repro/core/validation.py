"""Join-result validation utilities.

Downstream users (and this repository's own tests and examples) need an
independent way to check a join output: :func:`verify_join_result` replays
the containment predicate over the claimed pairs (soundness) and over a
sample — or all — of the cross product (completeness), without trusting
any index structure.
"""

from __future__ import annotations

import random  # repro: noqa RPR006 every use is Random(seed): the sampled oracle check is deterministic per seed
from dataclasses import dataclass
from typing import Iterable

from repro.governance.policy import governor
from repro.relations.relation import Relation

__all__ = ["ValidationReport", "verify_join_result"]


@dataclass(frozen=True, slots=True)
class ValidationReport:
    """Outcome of :func:`verify_join_result`.

    Attributes:
        ok: True iff no violation was found.
        checked_pairs: Claimed pairs whose predicate was replayed.
        checked_candidates: Cross-product samples tested for completeness.
        false_positives: Claimed pairs whose sets do NOT satisfy ``⊇``.
        missing_pairs: Satisfying pairs absent from the claimed output.
    """

    ok: bool
    checked_pairs: int
    checked_candidates: int
    false_positives: tuple[tuple[int, int], ...]
    missing_pairs: tuple[tuple[int, int], ...]

    def raise_on_failure(self) -> None:
        """Raise ``AssertionError`` with details if validation failed."""
        if not self.ok:
            raise AssertionError(
                f"join validation failed: {len(self.false_positives)} false "
                f"positives (e.g. {self.false_positives[:3]}), "
                f"{len(self.missing_pairs)} missing pairs "
                f"(e.g. {self.missing_pairs[:3]})"
            )


def verify_join_result(
    r: Relation,
    s: Relation,
    pairs: Iterable[tuple[int, int]],
    sample: int | None = 10_000,
    seed: int = 0,
) -> ValidationReport:
    """Independently validate a claimed ``R ⋈⊇ S`` output.

    Soundness is always checked exhaustively over the claimed pairs.
    Completeness checks the full ``|R| x |S|`` cross product when it has at
    most ``sample`` cells (or when ``sample`` is ``None``); otherwise a
    uniform random sample of that many cells.

    Args:
        r: Probe relation.
        s: Indexed relation.
        pairs: The claimed output pairs ``(r_id, s_id)``.
        sample: Completeness budget in cross-product cells.
        seed: Sampling seed.
    """
    claimed = set(pairs)
    false_positives = [
        (r_id, s_id)
        for r_id, s_id in claimed
        if not r.get(r_id).elements >= s.get(s_id).elements
    ]

    missing: list[tuple[int, int]] = []
    total_cells = len(r) * len(s)
    checked_candidates = 0
    if sample is None or total_cells <= sample:
        # The exhaustive oracle is |R| x |S|: the one loop in this package
        # most in need of a governance bound.
        gov = governor("probe")
        for r_rec in r:
            for s_rec in s:
                if gov is not None:
                    gov.tick()
                checked_candidates += 1
                if r_rec.elements >= s_rec.elements and (r_rec.rid, s_rec.rid) not in claimed:
                    missing.append((r_rec.rid, s_rec.rid))
    elif total_cells:
        rng = random.Random(seed)
        r_records = list(r)
        s_records = list(s)
        for _ in range(sample):
            r_rec = r_records[rng.randrange(len(r_records))]
            s_rec = s_records[rng.randrange(len(s_records))]
            checked_candidates += 1
            if r_rec.elements >= s_rec.elements and (r_rec.rid, s_rec.rid) not in claimed:
                missing.append((r_rec.rid, s_rec.rid))

    return ValidationReport(
        ok=not false_positives and not missing,
        checked_pairs=len(claimed),
        checked_candidates=checked_candidates,
        false_positives=tuple(false_positives),
        missing_pairs=tuple(missing),
    )
