"""The paper's primary contribution: PTSJ and PRETTI+, plus the join API."""

from repro.core.base import (
    CandidateGroup,
    JoinResult,
    JoinStats,
    PreparedIndex,
    SetContainmentJoin,
)
from repro.core.framework import (
    SignatureJoinBase,
    SignaturePreparedIndex,
    insert_into_groups,
)
from repro.core.pretti_plus import PRETTIPlus
from repro.core.ptsj import PTSJ
from repro.core.validation import ValidationReport, verify_join_result
from repro.core.registry import (
    ALGORITHMS,
    available_algorithms,
    choose_algorithm_name,
    make_algorithm,
    prepare_index,
    set_containment_join,
)

__all__ = [
    "CandidateGroup",
    "JoinResult",
    "JoinStats",
    "PreparedIndex",
    "SetContainmentJoin",
    "SignatureJoinBase",
    "SignaturePreparedIndex",
    "insert_into_groups",
    "PTSJ",
    "PRETTIPlus",
    "ALGORITHMS",
    "available_algorithms",
    "choose_algorithm_name",
    "make_algorithm",
    "prepare_index",
    "set_containment_join",
    "ValidationReport",
    "verify_join_result",
]
