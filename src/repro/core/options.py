"""Centralized validation for executor and planner options.

Every executor in :mod:`repro.exec` — :class:`~repro.exec.parallel.
ParallelJoin`, :class:`~repro.exec.resilient.ResilientParallelJoin`,
:class:`~repro.exec.disk.DiskPartitionedJoin` and
:class:`~repro.exec.sharded.ShardedJoin` — accepts the same small
vocabulary of knobs (worker count, chunk/shard count, start method,
memory budget, timeout).  Historically each validated them independently, with
slightly different wording; this module is now the single source of truth,
shared by the executors *and* by :class:`repro.planner.Planner` when it
validates a :class:`~repro.planner.Workload` hint, so one option always
fails with one message wherever it is passed.

All validators raise subclasses of :class:`ValueError`
(:class:`~repro.errors.AlgorithmError` for in-memory executor options,
:class:`~repro.errors.ExternalMemoryError` for disk-join sizing), so
callers may catch either the precise domain error or plain ``ValueError``.
"""

from __future__ import annotations

import multiprocessing

from repro.errors import AlgorithmError, ExternalMemoryError

__all__ = [
    "SHARD_STRATEGIES",
    "validate_workers",
    "validate_chunks",
    "validate_shards",
    "validate_shard_strategy",
    "validate_start_method",
    "validate_timeout_seconds",
    "validate_deadline_seconds",
    "validate_max_memory_bytes",
    "validate_max_tuples",
    "validate_probe_batches",
]

#: Partition strategies the sharded executor understands.
SHARD_STRATEGIES = ("element", "signature")


def _require_positive(name: str, value: float, error: type[ValueError]) -> None:
    if value <= 0:
        raise error(f"{name} must be positive, got {value}")


def validate_workers(workers: int) -> int:
    """Worker process count: a positive integer."""
    _require_positive("workers", workers, AlgorithmError)
    return workers


def validate_chunks(chunks: int | None) -> int | None:
    """Probe chunk count: ``None`` (derive from workers) or positive."""
    if chunks is not None:
        _require_positive("chunks", chunks, AlgorithmError)
    return chunks


def validate_shards(shards: int | None) -> int | None:
    """S-shard count: ``None`` (derive from workers) or positive."""
    if shards is not None:
        _require_positive("shards", shards, AlgorithmError)
    return shards


def validate_shard_strategy(strategy: str) -> str:
    """Shard partition strategy: one of :data:`SHARD_STRATEGIES`."""
    if strategy not in SHARD_STRATEGIES:
        raise AlgorithmError(
            f"unknown shard strategy {strategy!r}; available: {SHARD_STRATEGIES}"
        )
    return strategy


def validate_start_method(start_method: str | None) -> str | None:
    """Multiprocessing start method: ``None`` or a platform-supported name."""
    if start_method is not None and start_method not in multiprocessing.get_all_start_methods():
        raise AlgorithmError(
            f"unknown start method {start_method!r}; available: "
            f"{multiprocessing.get_all_start_methods()}"
        )
    return start_method


def validate_timeout_seconds(timeout_seconds: float | None) -> float | None:
    """**Per-chunk** wall-clock budget: ``None`` (disabled) or positive.

    The budget applies to each probe chunk (or shard task) independently;
    an over-budget chunk is abandoned and completed in-process while the
    join as a whole keeps running.  The **whole-join** bound is
    ``deadline_seconds`` (:func:`validate_deadline_seconds`), which stops
    build *and* probe work across every executor at the next governance
    poll.  The two compose: a join may carry both.
    """
    if timeout_seconds is not None:
        _require_positive("timeout_seconds", timeout_seconds, AlgorithmError)
    return timeout_seconds


def validate_deadline_seconds(deadline_seconds: float | None) -> float | None:
    """**Whole-join** wall-clock budget: ``None`` (disabled) or positive.

    Unlike the per-chunk ``timeout_seconds``
    (:func:`validate_timeout_seconds`), the deadline bounds the entire
    join — planning, index build, and every probe — and breaching it
    raises :class:`~repro.errors.DeadlineExceededError` rather than
    degrading a single chunk.
    """
    if deadline_seconds is not None:
        _require_positive("deadline_seconds", deadline_seconds, AlgorithmError)
    return deadline_seconds


def validate_max_memory_bytes(max_memory_bytes: int | None) -> int | None:
    """Index-build byte budget: ``None`` (disabled) or positive."""
    if max_memory_bytes is not None:
        _require_positive("max_memory_bytes", max_memory_bytes, AlgorithmError)
    return max_memory_bytes


def validate_max_tuples(max_tuples: int) -> int:
    """Disk-join memory budget (largest in-memory partition): positive."""
    _require_positive("max_tuples", max_tuples, ExternalMemoryError)
    return max_tuples


def validate_probe_batches(probe_batches: int) -> int:
    """Expected probe batches in a prepare-once workload: positive."""
    _require_positive("probe_batches", probe_batches, AlgorithmError)
    return probe_batches
