"""PTSJ — Patricia Trie-based Signature Join (paper Sec. III).

The paper's first contribution.  PTSJ keeps SHJ's signature-filter-then-
verify architecture but replaces the exponential subset enumeration with a
Patricia-trie walk (Algorithm 5) that only visits signatures *actually
present* in ``S``: enumeration cost drops from ``O(2^b)`` to ``O(|S|)``
worst-case, so signatures can grow to thousands of bits (Sec. III-D picks
``b ≈ 16c``) and filter away almost all false candidates.

Index side (Algorithm 1 lines 1–3):
    every S-tuple's signature is inserted into a
    :class:`~repro.tries.patricia.PatriciaTrie`; tuples sharing a signature
    share a leaf, and — the merge-identical-sets extension, Sec. III-E1 —
    tuples sharing a *set value* share a :class:`CandidateGroup` inside the
    leaf, so each duplicated set costs one comparison total.

Probe side:
    for each R-tuple, :meth:`PatriciaTrie.subset_leaves` returns the leaves
    whose signature is contained in the probe signature; each group in each
    leaf is verified with one exact ``⊆`` check.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.base import CandidateGroup, JoinStats
from repro.core.framework import SignatureJoinBase, insert_into_groups
from repro.governance.policy import governor
from repro.relations.relation import Relation
from repro.tries.patricia import PatriciaTrie

__all__ = ["PTSJ"]


class PTSJ(SignatureJoinBase):
    """Patricia Trie-based Signature Join.

    Args:
        bits: Signature length; default per the Sec. III-D strategy
            (``b = min(d, 16 c, 8192)``).
        merge_identical: Apply the Sec. III-E1 merge-identical-sets
            extension (the paper's implementation always does; exposed here
            for the ablation benchmark).
        scheme_factory: Signature hash scheme, default ``x mod b``.
        length_strategy: Alternative Sec. III-D parameterisation.

    Example:
        >>> from repro.relations import Relation
        >>> profiles = Relation.from_sets([{1, 3, 5, 6}, {0, 2, 7}, {0, 2, 3}])
        >>> prefs = Relation.from_sets([{1, 3}, {1, 5, 6}, {0, 2, 7}])
        >>> sorted(PTSJ().join(profiles, prefs).pairs)
        [(0, 0), (0, 1), (1, 2)]
    """

    name = "ptsj"

    def __init__(self, bits: int | None = None, merge_identical: bool = True, **kwargs) -> None:
        super().__init__(bits=bits, **kwargs)
        self.merge_identical = merge_identical
        self.trie: PatriciaTrie | None = None

    def _build_index(self, s: Relation, stats: JoinStats) -> None:
        assert self.scheme is not None
        trie = PatriciaTrie(self.scheme.bits)
        signature = self.scheme.signature
        gov = governor("build", stats)
        if self.merge_identical:
            for rec in s:
                if gov is not None:
                    gov.tick()
                insert_into_groups(trie.insert(signature(rec.elements)), rec)
        else:
            for rec in s:
                if gov is not None:
                    gov.tick()
                trie.insert(signature(rec.elements)).append(
                    CandidateGroup(rec.elements, rec.rid)
                )
        self.trie = trie
        stats.index_nodes = trie.node_count()

    def _enumerate_groups(self, signature: int, stats: JoinStats) -> Iterator[list[CandidateGroup]]:
        """PATRICIAENUM (Algorithm 5) via the trie's subset walk."""
        trie = self.trie
        assert trie is not None
        leaves = trie.subset_leaves(signature)
        stats.node_visits += trie.visits_last_query
        for leaf in leaves:
            yield leaf.items  # type: ignore[misc]

    # ------------------------------------------------------------------
    # Index reuse (Sec. III-E2/E3 build on the same trie)
    # ------------------------------------------------------------------
    def built_trie(self) -> PatriciaTrie:
        """The Patricia trie built by the last :meth:`join`/:meth:`prepare`.

        The extensions of Sec. III-E (superset, equality and similarity
        joins) reuse this index rather than building their own — see
        ``PatriciaSetIndex.from_prepared`` for the prepared-index route.

        Raises:
            RuntimeError: If no index has been built yet.
        """
        if self.trie is None:
            raise RuntimeError("no index built yet; run join() or prepare() first")
        return self.trie
