"""Deterministic fault injection for the parallel-join executors.

The resilient executor's recovery paths (retry, pool restart, timeout
fallback, corrupt-result rejection) all involve *worker processes*, so
plain ``monkeypatch``-style injection cannot reach them — the fault has
to travel with the prepared index into the worker.  This module provides
picklable :class:`~repro.core.base.PreparedIndex` proxies that misbehave
on command:

* :class:`CrashingIndex` — raises
  :class:`~repro.errors.InjectedFaultError` from ``probe_many``
  (a recoverable worker exception);
* :class:`DyingIndex` — kills its process with ``os._exit`` (hard worker
  death, surfaces as ``BrokenProcessPool`` in the parent);
* :class:`SleepingIndex` — sleeps through the probe (simulates a hang,
  triggers the timeout path);
* :class:`CorruptingIndex` — returns pairs referencing tuples that were
  never probed (a lying worker).

Determinism without shared memory: a :class:`FaultTrigger` claims flag
*files* in a scratch directory with ``O_EXCL`` creation, so "fire
exactly N times" holds across any mix of processes and start methods
(``fork`` and ``spawn`` alike), and across the parent's own fallback
probes.  A fault that has fired its quota becomes a no-op, which is what
makes "crash on the first attempt, succeed on the retry" a *repeatable*
scenario rather than a race.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Iterator

from repro.core.base import JoinResult, JoinStats, PreparedIndex
from repro.errors import InjectedFaultError
from repro.relations.relation import Relation, SetRecord

__all__ = [
    "FaultTrigger",
    "FaultyIndex",
    "IndexFault",
    "CrashingIndex",
    "DyingIndex",
    "SleepingIndex",
    "CorruptingIndex",
    "SkewedClock",
    "CountdownCancelToken",
    "SteppingSampler",
]


class FaultTrigger:
    """Fire at most ``times`` times, across every process that asks.

    Each firing atomically claims one flag file in ``state_dir`` (created
    with ``O_EXCL``, so two processes can never claim the same slot).
    Instances are picklable — they hold only paths — and survive both
    ``fork`` and ``spawn`` worker transfer.

    Args:
        state_dir: Scratch directory for the flag files (created if
            missing); use a per-test ``tmp_path``.
        name: Distinguishes triggers sharing one directory.
        times: Total firings allowed across all processes.
    """

    def __init__(self, state_dir: str | Path, name: str = "fault", times: int = 1) -> None:
        self.state_dir = Path(state_dir)
        self.name = name
        self.times = times
        self.state_dir.mkdir(parents=True, exist_ok=True)

    def _flag(self, slot: int) -> Path:
        return self.state_dir / f"{self.name}.{slot}.fired"

    def fire(self) -> bool:
        """Claim the next slot; True while the quota is not yet spent."""
        for slot in range(self.times):
            try:
                self._flag(slot).touch(exist_ok=False)
                return True
            except FileExistsError:
                continue
        return False

    def fired(self) -> int:
        """How many times this trigger has fired so far (any process)."""
        return sum(1 for slot in range(self.times) if self._flag(slot).exists())

    def reset(self) -> None:
        """Forget all firings (idempotent)."""
        for slot in range(self.times):
            self._flag(slot).unlink(missing_ok=True)


class FaultyIndex(PreparedIndex):
    """Delegating proxy around a real prepared index.

    Subclasses override :meth:`_interfere` (called before every
    ``probe_many``) and/or :meth:`_tamper` (called on each result) to
    inject their failure.  Everything else — probing, statistics,
    introspection — defers to the wrapped index, so a fault whose trigger
    is spent behaves bit-identically to the real thing.
    """

    def __init__(self, inner: PreparedIndex, trigger: FaultTrigger) -> None:
        super().__init__(inner.algorithm, inner.relation)
        self.inner = inner
        self.trigger = trigger
        self.build_seconds = inner.build_seconds
        self.index_nodes = inner.index_nodes
        self.signature_bits = inner.signature_bits
        self.build_extras = dict(inner.build_extras)

    def probe(self, record: SetRecord, stats: JoinStats | None = None) -> Iterator[int]:
        return self.inner.probe(record, stats)

    def probe_many(self, r: Relation) -> JoinResult:
        self._interfere(r)
        return self._tamper(self.inner.probe_many(r))

    def _interfere(self, r: Relation) -> None:
        """Hook: act before the real probe (raise, die, sleep...)."""

    def _tamper(self, result: JoinResult) -> JoinResult:
        """Hook: act on the real probe's result (corrupt it...)."""
        return result

    def join_stats(self) -> JoinStats:
        return self.inner.join_stats()

    def memory_objects(self, probe_relation: Relation | None = None):
        return self.inner.memory_objects(probe_relation)


class IndexFault:
    """Picklable ``index_transform`` factory for the sharded executor.

    The sharded executor builds each shard's index *inside* the worker
    and applies ``index_transform`` there, so the transform itself must
    cross the process boundary.  ``IndexFault`` carries a fault class,
    a trigger, and keyword arguments; calling it wraps the freshly built
    index.  It captures the constructing process's pid so pid-guarded
    faults (:class:`DyingIndex`) still treat the *parent* — not the
    worker that happens to run the wrap — as the process to spare.

    >>> # transform = IndexFault(CrashingIndex, trigger)
    >>> # ShardedJoin(index_transform=transform, ...)
    """

    def __init__(
        self, fault: type[FaultyIndex], trigger: FaultTrigger, **kwargs: object
    ) -> None:
        self.fault = fault
        self.trigger = trigger
        self.kwargs = dict(kwargs)
        self.parent_pid = os.getpid()

    def __call__(self, inner: PreparedIndex) -> PreparedIndex:
        kwargs = dict(self.kwargs)
        if issubclass(self.fault, DyingIndex):
            kwargs.setdefault("parent_pid", self.parent_pid)
        return self.fault(inner, self.trigger, **kwargs)


class CrashingIndex(FaultyIndex):
    """Raise :class:`~repro.errors.InjectedFaultError` while armed.

    The exception propagates out of the worker as an ordinary task
    failure — the recoverable kind the retry policy exists for.
    """

    def _interfere(self, r: Relation) -> None:
        if self.trigger.fire():
            raise InjectedFaultError(
                f"injected crash probing {len(r)} records (pid {os.getpid()})"
            )


class DyingIndex(FaultyIndex):
    """Kill the probing process outright while armed.

    ``os._exit`` skips all cleanup, exactly like a segfault or an OOM
    kill; a pool worker dying this way breaks the whole
    :class:`~concurrent.futures.ProcessPoolExecutor`.  Never fires in
    the parent process (``parent_pid``), so the in-process fallback and
    ``workers=1`` runs survive it.

    Args:
        parent_pid: The process that must survive; defaults to the
            constructing process.  Pass it explicitly when the wrapper is
            built *inside* a worker (the sharded executor applies its
            transform per shard in the worker) — otherwise the worker
            would register itself as the parent and never die.  Use
            :class:`IndexFault`, which captures it automatically.
    """

    def __init__(
        self,
        inner: PreparedIndex,
        trigger: FaultTrigger,
        exit_code: int = 3,
        parent_pid: int | None = None,
    ) -> None:
        super().__init__(inner, trigger)
        self.exit_code = exit_code
        self.parent_pid = os.getpid() if parent_pid is None else parent_pid

    def _interfere(self, r: Relation) -> None:
        if os.getpid() != self.parent_pid and self.trigger.fire():
            os._exit(self.exit_code)


class SleepingIndex(FaultyIndex):
    """Sleep before probing while armed (simulates a hung worker)."""

    def __init__(
        self, inner: PreparedIndex, trigger: FaultTrigger, sleep_seconds: float = 1.5
    ) -> None:
        super().__init__(inner, trigger)
        self.sleep_seconds = sleep_seconds

    def _interfere(self, r: Relation) -> None:
        if self.trigger.fire():
            time.sleep(self.sleep_seconds)


class CorruptingIndex(FaultyIndex):
    """Return pairs referencing a tuple that was never probed while armed.

    Emulates a worker with scrambled state: the result *looks* healthy
    (right shape, plausible ids) but joins tuples the chunk does not
    contain — precisely what result validation must catch.
    """

    def __init__(
        self, inner: PreparedIndex, trigger: FaultTrigger, alien_id: int = -1
    ) -> None:
        super().__init__(inner, trigger)
        self.alien_id = alien_id

    def _tamper(self, result: JoinResult) -> JoinResult:
        if self.trigger.fire():
            result.pairs.append((self.alien_id, self.alien_id))
        return result


# ----------------------------------------------------------------------
# Governance fault hooks (docs/ROBUSTNESS.md, chaos drills)
# ----------------------------------------------------------------------
class SkewedClock:
    """A monotonic clock reading ``offset_seconds`` into the future.

    Deterministic clock skew for :class:`~repro.governance.deadline.
    Deadline`: a deadline evaluated against a clock skewed past it is
    *already expired*, so drills can prove expiry handling without
    sleeping.  Instances hold only a float and are picklable, so a
    skewed deadline travels into pool workers under both ``fork`` and
    ``spawn``.
    """

    def __init__(self, offset_seconds: float) -> None:
        self.offset_seconds = offset_seconds

    def __call__(self) -> float:
        from repro.obs.clock import monotonic

        return monotonic() + self.offset_seconds


class CountdownCancelToken:
    """A :class:`~repro.governance.deadline.CancelToken` tripping itself.

    Reports cancelled once it has been *asked* ``after_checks`` times —
    a deterministic stand-in for "the user hits Ctrl-C mid-build" that
    needs no timing, no threads and no signals.  The check count is
    per-process state (it does not travel through pickle), so a token
    armed with ``after_checks=N`` trips on the N-th poll of whichever
    process is asking; combine with ``flag_dir`` to make the trip
    visible across processes.
    """

    def __init__(
        self,
        after_checks: int,
        flag_dir: str | Path | None = None,
        name: str = "countdown",
    ) -> None:
        from repro.governance.deadline import CancelToken

        self._base = CancelToken(flag_dir=flag_dir, name=name)
        self.after_checks = after_checks
        self.checks = 0

    @property
    def reason(self) -> str | None:
        return self._base.reason

    def cancel(self, reason: str = "cancel requested") -> None:
        self._base.cancel(reason)

    def cancelled(self) -> bool:
        self.checks += 1
        if self.checks >= self.after_checks and not self._base.cancelled():
            self._base.cancel(f"countdown tripped after {self.checks} checks")
        return self._base.cancelled()

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["checks"] = 0  # per-process countdown
        return state


class SteppingSampler:
    """A scripted memory sampler: returns each reading in turn.

    Replaces the tracemalloc default through
    ``GovernancePolicy(memory_sampler=...)`` so budget-trip drills are
    exact: the governor's base sample consumes the first reading, each
    poll consumes the next, and the final reading repeats forever.
    Intentionally *not* shipped to workers
    (:meth:`~repro.governance.policy.GovernancePolicy.worker_policy`
    strips custom samplers), so use it for parent-side build paths.
    """

    def __init__(self, readings: tuple[int, ...] | list[int]) -> None:
        if not readings:
            raise ValueError("SteppingSampler needs at least one reading")
        self.readings = tuple(int(b) for b in readings)
        self.calls = 0

    def __call__(self) -> int:
        reading = self.readings[min(self.calls, len(self.readings) - 1)]
        self.calls += 1
        return reading
