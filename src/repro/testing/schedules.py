"""Deterministic two-thread interleaving schedules for concurrency tests.

Races are timing bugs, and tests that "usually" catch them are worse
than none — a green run proves nothing and a red run won't reproduce.
:class:`Schedule` turns an interleaving into data: a script of
``(actor, label)`` steps that must happen in exactly that order.  Worker
code (or a test seam inside production code, like
``IndexCache._build_slot`` or the server's ``request_hook``) calls
:meth:`Schedule.point`, which blocks until every earlier scripted step
has happened — so the one interleaving under test is the one that runs,
every time, on any machine.

Two deliberate softenings keep scripts small:

* a ``point`` whose ``(actor, label)`` does not appear in the remaining
  script passes straight through, so shared code paths can carry points
  that only some scenarios pin down;
* once the script is exhausted every point passes through — the script
  pins the *prefix* that matters and lets threads free-run to completion.

A step that never arrives trips ``timeout_seconds`` and raises
:class:`ScheduleError` on every waiting thread (and on :meth:`run`'s
caller) instead of hanging the suite; a worker that raises marks the
schedule failed so its peers unblock immediately.

The harness is two primitives (a scripted rendezvous and a thread
runner) on ``threading.Condition`` — deliberately not a model checker;
it makes the handful of interleavings the serving stack worries about
(singleflight coalescing, admission accounting, registry initialization,
shutdown vs. in-flight requests) reproducible, which is what CI needs.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ReproError
from repro.obs.clock import monotonic

__all__ = ["Schedule", "ScheduleError"]


class ScheduleError(ReproError):
    """A scripted interleaving could not be driven to completion.

    Raised when a scripted step never arrives within the timeout, when a
    worker under :meth:`Schedule.run` raises (the worker's own exception
    is re-raised to the caller; *peers* blocked on the schedule get this
    instead), or when a run leaves script steps unconsumed.
    """


class Schedule:
    """A scripted total order over named synchronization points.

    Args:
        steps: The script — ``(actor, label)`` pairs in the exact order
            they must occur.
        timeout_seconds: How long any single :meth:`point` may wait for
            its turn before the whole schedule is failed.

    Use :meth:`run` to drive named worker callables through the script,
    or call :meth:`point` directly from test seams when the threads are
    owned by production code (a server pool, a cache builder).
    """

    def __init__(
        self, steps: Sequence[tuple[str, str]], timeout_seconds: float = 10.0
    ) -> None:
        self.steps = tuple((str(a), str(b)) for a, b in steps)
        self.timeout_seconds = timeout_seconds
        self._pos = 0
        self._failure: str | None = None
        self._cond = threading.Condition()

    # ------------------------------------------------------------------
    # The rendezvous primitive
    # ------------------------------------------------------------------
    def point(self, actor: str, label: str) -> None:
        """Block until every scripted step before ``(actor, label)`` ran.

        Consumes the step when it is the script head; passes through
        immediately when the pair is absent from the remaining script.
        """
        step = (actor, label)
        deadline = monotonic() + self.timeout_seconds
        with self._cond:
            while True:
                if self._failure is not None:
                    raise ScheduleError(
                        f"schedule already failed: {self._failure} "
                        f"(while {step!r} was arriving)"
                    )
                remaining_script = self.steps[self._pos :]
                if not remaining_script or step not in remaining_script:
                    return
                if remaining_script[0] == step:
                    self._pos += 1
                    self._cond.notify_all()
                    return
                remaining_time = deadline - monotonic()
                if remaining_time <= 0:
                    self._failure = (
                        f"step {step!r} timed out after "
                        f"{self.timeout_seconds}s waiting for "
                        f"{remaining_script[0]!r} (position {self._pos})"
                    )
                    self._cond.notify_all()
                    raise ScheduleError(self._failure)
                self._cond.wait(remaining_time)

    def fail(self, reason: str) -> None:
        """Mark the schedule failed and wake every blocked point."""
        with self._cond:
            if self._failure is None:
                self._failure = reason
            self._cond.notify_all()

    @property
    def remaining(self) -> tuple[tuple[str, str], ...]:
        """Script steps not yet consumed (empty once fully driven)."""
        with self._cond:
            return self.steps[self._pos :]

    # ------------------------------------------------------------------
    # The thread runner
    # ------------------------------------------------------------------
    def run(
        self, workers: Mapping[str, Callable[[], Any]]
    ) -> dict[str, Any]:
        """Run every worker in its own (actor-named) thread to completion.

        Returns ``{actor: return value}``.  A worker exception fails the
        schedule (unblocking peers) and is re-raised here after every
        thread has been joined; a script left partially consumed raises
        :class:`ScheduleError` — the interleaving under test did not
        actually happen, so whatever the workers observed proves nothing.
        """
        results: dict[str, Any] = {}
        errors: dict[str, BaseException] = {}

        def _invoke(name: str, fn: Callable[[], Any]) -> None:
            try:
                results[name] = fn()
            except BaseException as exc:  # re-raised to run()'s caller below
                errors[name] = exc
                self.fail(f"worker {name!r} raised {type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(
                target=_invoke, args=(name, fn), name=f"schedule-{name}"
            )
            for name, fn in workers.items()
        ]
        for thread in threads:
            thread.start()
        join_deadline = monotonic() + self.timeout_seconds * (len(self.steps) + 1)
        for thread in threads:
            thread.join(max(0.0, join_deadline - monotonic()))
        alive = [t.name for t in threads if t.is_alive()]
        if alive:
            self.fail(f"threads still alive at join deadline: {alive}")
            raise ScheduleError(
                f"worker thread(s) never finished: {', '.join(alive)}"
            )
        if errors:
            actor = sorted(errors)[0]
            raise errors[actor]
        if self.remaining:
            raise ScheduleError(
                f"script not fully consumed; remaining steps: {self.remaining}"
            )
        return results
