"""Deterministic test instrumentation for the repro package.

:mod:`repro.testing.faults` wraps a :class:`~repro.core.base.PreparedIndex`
with failure-injecting proxies (crash, hard death, hang, corrupt output)
whose triggers fire a fixed number of times across *all* processes, so
every recovery path of :class:`~repro.exec.resilient.ResilientParallelJoin`
can be exercised without flaky timing or randomness.
"""

from repro.testing.faults import (
    CorruptingIndex,
    CountdownCancelToken,
    CrashingIndex,
    DyingIndex,
    FaultTrigger,
    FaultyIndex,
    SkewedClock,
    SleepingIndex,
    SteppingSampler,
)

__all__ = [
    "FaultTrigger",
    "FaultyIndex",
    "CrashingIndex",
    "DyingIndex",
    "SleepingIndex",
    "CorruptingIndex",
    "SkewedClock",
    "CountdownCancelToken",
    "SteppingSampler",
]
