"""Deterministic test instrumentation for the repro package.

:mod:`repro.testing.faults` wraps a :class:`~repro.core.base.PreparedIndex`
with failure-injecting proxies (crash, hard death, hang, corrupt output)
whose triggers fire a fixed number of times across *all* processes, so
every recovery path of :class:`~repro.exec.resilient.ResilientParallelJoin`
can be exercised without flaky timing or randomness.

:mod:`repro.testing.schedules` scripts thread interleavings as data
(:class:`~repro.testing.schedules.Schedule`), so the concurrency suite
can force the exact orderings — singleflight coalescing, admission
races, shutdown vs. in-flight requests — it claims to test.
"""

from repro.testing.schedules import Schedule, ScheduleError
from repro.testing.faults import (
    CorruptingIndex,
    CountdownCancelToken,
    CrashingIndex,
    DyingIndex,
    FaultTrigger,
    FaultyIndex,
    SkewedClock,
    SleepingIndex,
    SteppingSampler,
)

__all__ = [
    "FaultTrigger",
    "FaultyIndex",
    "CrashingIndex",
    "DyingIndex",
    "SleepingIndex",
    "CorruptingIndex",
    "SkewedClock",
    "CountdownCancelToken",
    "SteppingSampler",
    "Schedule",
    "ScheduleError",
]
