"""Set-valued relations.

The paper's data model is a relation with a set-valued attribute: each tuple
``t`` has a unique id and a set ``t.set`` of elements drawn from an integer
domain.  :class:`SetRecord` is one such tuple and :class:`Relation` is an
ordered collection of them.

Element values are non-negative integers.  String-valued domains (tags,
community names, ...) are encoded to integers with
:class:`repro.relations.universe.Universe` before being stored here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import RelationError

__all__ = ["SetRecord", "Relation"]


@dataclass(frozen=True, slots=True)
class SetRecord:
    """One tuple of a set-valued relation.

    Attributes:
        rid: The tuple id, unique within its relation.
        elements: The set value, as a ``frozenset`` of non-negative ints.
    """

    rid: int
    elements: frozenset[int]

    def __post_init__(self) -> None:
        if not isinstance(self.elements, frozenset):
            object.__setattr__(self, "elements", frozenset(self.elements))  # repro: noqa RPR003 frozen SetRecord normalizing its own field in __post_init__, same escape hatch planner/plan.py uses
        if any((not isinstance(e, int)) or e < 0 for e in self.elements):
            raise RelationError(
                f"record {self.rid}: elements must be non-negative ints, "
                f"got {sorted(self.elements)[:5]!r}..."
            )

    @property
    def cardinality(self) -> int:
        """Number of elements in the set value (``c`` in the paper)."""
        return len(self.elements)

    def sorted_elements(self) -> tuple[int, ...]:
        """The set value as an ascending tuple (the trie insertion order)."""
        return tuple(sorted(self.elements))

    def contains(self, other: "SetRecord") -> bool:
        """True iff this record's set is a superset of ``other``'s set."""
        return self.elements >= other.elements


class Relation:
    """An ordered collection of :class:`SetRecord` with unique ids.

    A :class:`Relation` is immutable once constructed: all join algorithms
    treat it as read-only input.  Records keep their insertion order, and ids
    must be unique (they are the join output currency).

    Args:
        records: The records of the relation.
        name: Optional human-readable name used in reports.

    Raises:
        RelationError: If two records share an id.
    """

    __slots__ = ("_records", "_by_id", "name", "_stats", "_fingerprint")

    def __init__(self, records: Iterable[SetRecord], name: str = "") -> None:
        self._records: tuple[SetRecord, ...] = tuple(records)
        self._by_id: dict[int, SetRecord] = {}
        self.name = name
        # Memoized RelationStats; records are immutable, so the first
        # compute_stats() call fills this and later calls never rescan.
        self._stats = None
        # Memoized content hash; see fingerprint().
        self._fingerprint: str | None = None
        for rec in self._records:
            if rec.rid in self._by_id:
                raise RelationError(f"duplicate record id {rec.rid} in relation {name!r}")
            self._by_id[rec.rid] = rec

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_sets(
        cls,
        sets: Iterable[Iterable[int]],
        name: str = "",
        start_id: int = 0,
    ) -> "Relation":
        """Build a relation from an iterable of element iterables.

        Ids are assigned sequentially from ``start_id``.

        >>> rel = Relation.from_sets([{1, 2}, {3}])
        >>> [rec.rid for rec in rel]
        [0, 1]
        """
        return cls(
            (SetRecord(start_id + i, frozenset(s)) for i, s in enumerate(sets)),
            name=name,
        )

    @classmethod
    def from_mapping(cls, mapping: Mapping[int, Iterable[int]], name: str = "") -> "Relation":
        """Build a relation from a ``{rid: elements}`` mapping."""
        return cls(
            (SetRecord(rid, frozenset(elems)) for rid, elems in mapping.items()),
            name=name,
        )

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[SetRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> SetRecord:
        return self._records[index]

    def __contains__(self, rid: object) -> bool:
        return rid in self._by_id

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._records == other._records

    def __hash__(self) -> int:  # pragma: no cover - relations rarely hashed
        return hash(self._records)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Relation{label} |R|={len(self)}>"

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def records(self) -> Sequence[SetRecord]:
        """The records in insertion order."""
        return self._records

    def get(self, rid: int) -> SetRecord:
        """Return the record with id ``rid``.

        Raises:
            KeyError: If no record has that id.
        """
        return self._by_id[rid]

    def ids(self) -> tuple[int, ...]:
        """All record ids in insertion order."""
        return tuple(rec.rid for rec in self._records)

    def domain(self) -> frozenset[int]:
        """The union of all set values (the *active* domain)."""
        out: set[int] = set()
        for rec in self._records:
            out |= rec.elements
        return frozenset(out)

    def max_element(self) -> int:
        """Largest element appearing in the relation, or ``-1`` if all empty."""
        best = -1
        for rec in self._records:
            if rec.elements:
                m = max(rec.elements)
                if m > best:
                    best = m
        return best

    def fingerprint(self) -> str:
        """A stable content hash of this relation — the index-cache key.

        SHA-256 over the canonical encoding of every ``(rid, elements)``
        pair, records visited in ascending rid order and elements in
        ascending value order.  Two relations holding the same records
        therefore fingerprint identically *regardless of insertion
        order*, while any content change — an element added, removed or
        altered, or a record re-identified — changes the hash.  The
        ``name`` attribute is presentation metadata and is deliberately
        excluded.

        The join server's :class:`~repro.serve.cache.IndexCache` keys
        resident :class:`~repro.core.base.PreparedIndex` objects by this
        value (see ``docs/SERVER.md``), so equal payloads sent by
        different clients share one index build.

        The hash is memoized: records are immutable, so the first call
        pays one scan and later calls are a field read.

        >>> a = Relation.from_mapping({0: {1, 2}, 1: {3}})
        >>> b = Relation.from_mapping({1: {3}, 0: {2, 1}})
        >>> a.fingerprint() == b.fingerprint()
        True
        """
        if self._fingerprint is None:
            import hashlib

            digest = hashlib.sha256()
            update = digest.update
            for rec in sorted(self._records, key=lambda record: record.rid):
                update(b"r%d:" % rec.rid)
                for element in sorted(rec.elements):
                    update(b"%d," % element)
            self._fingerprint = "rf1:" + digest.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # Derivations
    # ------------------------------------------------------------------
    def filter_cardinality(self, minimum: int = 0, maximum: int | None = None) -> "Relation":
        """Keep records with ``minimum <= |set| <= maximum``.

        The paper prunes real datasets this way (e.g. orkut ``c >= 10``,
        webbase ``c > 200``).
        """
        hi = float("inf") if maximum is None else maximum
        return Relation(
            (rec for rec in self._records if minimum <= rec.cardinality <= hi),
            name=self.name,
        )

    def sample(self, count: int, *, seed: int = 0) -> "Relation":
        """Uniform random sample of ``count`` records (without replacement)."""
        import random  # repro: noqa RPR006 Random(seed) below: sampling is deterministic for a caller-supplied seed

        if count >= len(self._records):
            return self
        rng = random.Random(seed)
        picked = rng.sample(range(len(self._records)), count)
        picked.sort()
        return Relation((self._records[i] for i in picked), name=self.name)
