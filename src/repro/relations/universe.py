"""Element dictionary: bidirectional encoding of labels to integer ids.

The paper assumes "domain values and tuple IDs are represented as integers"
(Sec. II).  Real data carries string labels (tags, community names, URLs);
:class:`Universe` maps labels to dense non-negative ints and back, so every
other module only ever sees integers.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

__all__ = ["Universe"]


class Universe:
    """A dense, insertion-ordered label <-> id dictionary.

    Ids are assigned ``0, 1, 2, ...`` in first-seen order, which keeps the
    encoded domain dense — important because signature hashing (``x mod b``)
    and inverted-index arrays assume a compact integer domain.

    >>> u = Universe()
    >>> u.encode("rock"), u.encode("jazz"), u.encode("rock")
    (0, 1, 0)
    >>> u.decode(1)
    'jazz'
    """

    __slots__ = ("_label_to_id", "_id_to_label")

    def __init__(self, labels: Iterable[Hashable] = ()) -> None:
        self._label_to_id: dict[Hashable, int] = {}
        self._id_to_label: list[Hashable] = []
        for label in labels:
            self.encode(label)

    def __len__(self) -> int:
        return len(self._id_to_label)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._label_to_id

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._id_to_label)

    def __repr__(self) -> str:
        return f"<Universe |d|={len(self)}>"

    def encode(self, label: Hashable) -> int:
        """Return the id for ``label``, assigning a fresh one if unseen."""
        existing = self._label_to_id.get(label)
        if existing is not None:
            return existing
        new_id = len(self._id_to_label)
        self._label_to_id[label] = new_id
        self._id_to_label.append(label)
        return new_id

    def encode_set(self, labels: Iterable[Hashable]) -> frozenset[int]:
        """Encode an iterable of labels into a frozenset of ids."""
        return frozenset(self.encode(label) for label in labels)

    def lookup(self, label: Hashable) -> int | None:
        """Return the id for ``label`` or ``None`` without assigning one."""
        return self._label_to_id.get(label)

    def decode(self, element_id: int) -> Hashable:
        """Return the label for ``element_id``.

        Raises:
            IndexError: If the id was never assigned.
        """
        if element_id < 0:
            raise IndexError(f"element id must be non-negative, got {element_id}")
        return self._id_to_label[element_id]

    def decode_set(self, element_ids: Iterable[int]) -> frozenset[Hashable]:
        """Decode a collection of ids back to labels."""
        return frozenset(self.decode(e) for e in element_ids)
