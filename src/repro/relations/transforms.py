"""Relation transformations: densification and relabelling.

Real-world set data arrives with *sparse* element ids (hashes, 64-bit
surrogate keys, pruned dictionaries).  The algorithms stay correct on
sparse ids, but two things degrade:

* the Sec. III-D signature-length rule reads the domain cardinality ``d``
  off the id space — a sparse space inflates it (harmless, the 16c term
  then wins, but the b = d "exact bitmap" option becomes unreachable);
* the paper's ``x mod b`` hash distributes best over dense ids, and
  PRETTI's per-node child maps churn on huge keys.

:func:`densify` remaps a relation onto the dense domain ``0..d-1`` (with
the :class:`~repro.relations.universe.Universe` to map back), and
:func:`relabel_by_frequency` additionally orders ids by descending element
frequency — which packs the Zipf head into the low ids, exactly the
layout the surrogate generators emit and the layout that puts frequent
elements near the PRETTI trie root (the paper's Fig. 7d observation).
"""

from __future__ import annotations

from collections import Counter

from repro.relations.relation import Relation, SetRecord
from repro.relations.universe import Universe

__all__ = ["densify", "relabel_by_frequency", "apply_universe"]


def densify(relation: Relation) -> tuple[Relation, Universe]:
    """Remap elements onto ``0..d-1`` in first-seen order.

    Returns the remapped relation (same tuple ids) and the
    :class:`Universe` whose ``decode`` recovers original element ids.

    >>> rel, uni = densify(Relation.from_sets([{10**9, 7}, {7}]))
    >>> sorted(rel[0].elements), sorted(rel[1].elements)
    ([0, 1], [1])
    """
    universe = Universe()
    records = []
    for rec in relation:
        encoded = frozenset(universe.encode(e) for e in rec.sorted_elements())
        records.append(SetRecord(rec.rid, encoded))
    return Relation(records, name=relation.name), universe


def relabel_by_frequency(relation: Relation) -> tuple[Relation, Universe]:
    """Remap elements onto ``0..d-1`` by descending frequency.

    The most frequent element becomes id 0.  Ties break by original id,
    keeping the transform deterministic.
    """
    counts: Counter[int] = Counter()
    for rec in relation:
        counts.update(rec.elements)
    ordered = sorted(counts, key=lambda e: (-counts[e], e))
    universe = Universe(ordered)
    records = [
        SetRecord(rec.rid, frozenset(universe.encode(e) for e in rec.elements))
        for rec in relation
    ]
    return Relation(records, name=relation.name), universe


def apply_universe(relation: Relation, universe: Universe) -> Relation:
    """Encode a second relation with an existing dictionary.

    Used to put the probe relation on the same dense domain as an already
    densified indexed relation; unseen elements extend the dictionary.
    """
    records = [
        SetRecord(rec.rid, frozenset(universe.encode(e) for e in rec.sorted_elements()))
        for rec in relation
    ]
    return Relation(records, name=relation.name)
