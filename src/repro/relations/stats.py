"""Relation statistics.

Computes the dataset statistics that the paper reports in Table III and uses
throughout: relation size ``|R|``, average and median set cardinality ``c``,
and domain cardinality ``d``.  The statistics drive the signature-length
selection strategy (Sec. III-D), the choice between PTSJ and PRETTI+
(Sec. V-C3: PRETTI+ below ``c ~ 2^5``, PTSJ above) and the cost-based
query planner (:mod:`repro.planner`).

Two layers of memoization keep repeated consultation cheap:

* :func:`compute_stats` caches its result *on the relation object* — the
  planner, the regime rule and reporting code can all ask for statistics
  without ever rescanning the records twice;
* derived quantities on :class:`RelationStats` (skew, density, duplicate
  fraction, ...) are ``functools.cached_property`` values computed once on
  first access from the stored Table III fields.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from functools import cached_property

from repro.relations.relation import Relation

__all__ = ["RelationStats", "compute_stats"]


@dataclass(frozen=True)
class RelationStats:
    """Shape statistics of a set-valued relation (paper Table III columns).

    Frozen but deliberately *not* ``slots=True``: the derived quantities
    below are :func:`functools.cached_property` values, which memoize into
    the instance ``__dict__`` so the planner can consult them repeatedly
    for free.

    Attributes:
        size: Number of tuples (``|R|``).
        avg_cardinality: Mean set cardinality (``avg. c``).
        median_cardinality: Median set cardinality (``median c``).
        min_cardinality: Smallest set cardinality.
        max_cardinality: Largest set cardinality.
        domain_cardinality: Number of distinct elements used (``d``).
        total_elements: Sum of set cardinalities (the data volume).
        duplicate_sets: Number of tuples whose set value equals an earlier
            tuple's set value — the quantity exploited by PTSJ's
            merge-identical-sets extension (Sec. III-E1).
        cardinality_stddev: Population standard deviation of the set
            cardinalities (0 for relations of fewer than two tuples).
        max_element: Largest element value appearing in the relation
            (``-1`` when every set is empty) — the quantity the signature
            algorithms size their hash domain from.
    """

    size: int
    avg_cardinality: float
    median_cardinality: float
    min_cardinality: int
    max_cardinality: int
    domain_cardinality: int
    total_elements: int
    duplicate_sets: int
    cardinality_stddev: float = 0.0
    max_element: int = -1

    def as_table_row(self) -> dict[str, float]:
        """The Table III columns for this relation."""
        return {
            "|R|": self.size,
            "c avg.": round(self.avg_cardinality, 2),
            "c median": self.median_cardinality,
            "d": self.domain_cardinality,
        }

    # ------------------------------------------------------------------
    # Derived quantities (computed once, cached on the instance)
    # ------------------------------------------------------------------
    @cached_property
    def distinct_sets(self) -> int:
        """Number of distinct set values (``|R| -`` duplicates)."""
        return self.size - self.duplicate_sets

    @cached_property
    def duplicate_fraction(self) -> float:
        """Share of tuples that repeat an earlier set value."""
        return self.duplicate_sets / self.size if self.size else 0.0

    @cached_property
    def density(self) -> float:
        """Average fraction of the active domain each set covers."""
        if self.size == 0 or self.domain_cardinality == 0:
            return 0.0
        return self.avg_cardinality / self.domain_cardinality

    @cached_property
    def avg_list_length(self) -> float:
        """Expected inverted-list length (``|R| * c / d``).

        The quantity PRETTI-family cost estimates revolve around: every
        element's posting list holds on average this many tuple ids.
        """
        if self.domain_cardinality == 0:
            return 0.0
        return self.total_elements / self.domain_cardinality

    @cached_property
    def cardinality_skew(self) -> float:
        """How far the mean cardinality sits above the median (ratio).

        1.0 means symmetric; values well above 1 flag the heavy-tailed
        distributions for which Sec. V-C5 says the median — not the mean —
        must drive algorithm choice.
        """
        if self.median_cardinality <= 0:
            return 1.0 if self.avg_cardinality <= 0 else float("inf")
        return self.avg_cardinality / self.median_cardinality

    @cached_property
    def cardinality_cv(self) -> float:
        """Coefficient of variation of the set cardinalities."""
        if self.avg_cardinality <= 0:
            return 0.0
        return self.cardinality_stddev / self.avg_cardinality

    @cached_property
    def signature_domain(self) -> int:
        """Hash-domain size the signature schemes would use (max element + 1)."""
        return max(self.max_element + 1, 1)

    @cached_property
    def log2_size(self) -> float:
        """``log2 |R|`` (0 for empty relations) — trie-height ballpark."""
        return math.log2(self.size) if self.size > 0 else 0.0

    def recommended_algorithm(self) -> str:
        """Pick PTSJ or PRETTI+ per the paper's guidance.

        Sec. V-C3/V-C5: PRETTI+ wins for low set cardinality (below ~2^5);
        PTSJ wins otherwise.  The paper stresses (Sec. V-C5) that skew on set
        cardinality means the *median* matters more than the average, so the
        decision uses the median.
        """
        return "pretti+" if self.median_cardinality < 32 else "ptsj"


def compute_stats(relation: Relation) -> RelationStats:
    """Compute :class:`RelationStats` for ``relation``, memoized per relation.

    The first call scans the records once; the result is cached on the
    relation object (relations are immutable), so the planner and the
    regime rule can consult statistics repeatedly without rescanning.

    Empty relations are reported with zero cardinalities rather than raising,
    so reporting code can run on degenerate inputs.
    """
    cached = getattr(relation, "_stats", None)
    if cached is not None:
        return cached
    stats = _scan(relation)
    try:
        relation._stats = stats
    except AttributeError:  # pragma: no cover - relation-like duck types  # repro: noqa RPR008 best-effort memoization; slotted relation-likes just skip the cache
        pass
    return stats


def _scan(relation: Relation) -> RelationStats:
    """One full pass over ``relation`` computing every stored statistic."""
    cards = [rec.cardinality for rec in relation]
    seen: set[frozenset[int]] = set()
    duplicates = 0
    domain: set[int] = set()
    for rec in relation:
        if rec.elements in seen:
            duplicates += 1
        else:
            seen.add(rec.elements)
        domain |= rec.elements
    if not cards:
        return RelationStats(0, 0.0, 0.0, 0, 0, 0, 0, 0)
    return RelationStats(
        size=len(cards),
        avg_cardinality=sum(cards) / len(cards),
        median_cardinality=float(statistics.median(cards)),
        min_cardinality=min(cards),
        max_cardinality=max(cards),
        domain_cardinality=len(domain),
        total_elements=sum(cards),
        duplicate_sets=duplicates,
        cardinality_stddev=statistics.pstdev(cards) if len(cards) > 1 else 0.0,
        max_element=max(domain) if domain else -1,
    )
