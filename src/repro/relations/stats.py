"""Relation statistics.

Computes the dataset statistics that the paper reports in Table III and uses
throughout: relation size ``|R|``, average and median set cardinality ``c``,
and domain cardinality ``d``.  The statistics drive the signature-length
selection strategy (Sec. III-D) and the choice between PTSJ and PRETTI+
(Sec. V-C3: PRETTI+ below ``c ~ 2^5``, PTSJ above).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.relations.relation import Relation

__all__ = ["RelationStats", "compute_stats"]


@dataclass(frozen=True, slots=True)
class RelationStats:
    """Shape statistics of a set-valued relation (paper Table III columns).

    Attributes:
        size: Number of tuples (``|R|``).
        avg_cardinality: Mean set cardinality (``avg. c``).
        median_cardinality: Median set cardinality (``median c``).
        min_cardinality: Smallest set cardinality.
        max_cardinality: Largest set cardinality.
        domain_cardinality: Number of distinct elements used (``d``).
        total_elements: Sum of set cardinalities (the data volume).
        duplicate_sets: Number of tuples whose set value equals an earlier
            tuple's set value — the quantity exploited by PTSJ's
            merge-identical-sets extension (Sec. III-E1).
    """

    size: int
    avg_cardinality: float
    median_cardinality: float
    min_cardinality: int
    max_cardinality: int
    domain_cardinality: int
    total_elements: int
    duplicate_sets: int

    def as_table_row(self) -> dict[str, float]:
        """The Table III columns for this relation."""
        return {
            "|R|": self.size,
            "c avg.": round(self.avg_cardinality, 2),
            "c median": self.median_cardinality,
            "d": self.domain_cardinality,
        }

    def recommended_algorithm(self) -> str:
        """Pick PTSJ or PRETTI+ per the paper's guidance.

        Sec. V-C3/V-C5: PRETTI+ wins for low set cardinality (below ~2^5);
        PTSJ wins otherwise.  The paper stresses (Sec. V-C5) that skew on set
        cardinality means the *median* matters more than the average, so the
        decision uses the median.
        """
        return "pretti+" if self.median_cardinality < 32 else "ptsj"


def compute_stats(relation: Relation) -> RelationStats:
    """Compute :class:`RelationStats` for ``relation``.

    Empty relations are reported with zero cardinalities rather than raising,
    so reporting code can run on degenerate inputs.
    """
    cards = [rec.cardinality for rec in relation]
    seen: set[frozenset[int]] = set()
    duplicates = 0
    domain: set[int] = set()
    for rec in relation:
        if rec.elements in seen:
            duplicates += 1
        else:
            seen.add(rec.elements)
        domain |= rec.elements
    if not cards:
        return RelationStats(0, 0.0, 0.0, 0, 0, 0, 0, 0)
    return RelationStats(
        size=len(cards),
        avg_cardinality=sum(cards) / len(cards),
        median_cardinality=float(statistics.median(cards)),
        min_cardinality=min(cards),
        max_cardinality=max(cards),
        domain_cardinality=len(domain),
        total_elements=sum(cards),
        duplicate_sets=duplicates,
    )
