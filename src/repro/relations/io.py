"""Plain-text I/O for set-valued relations.

Two formats are supported:

* **set-per-line** (the format used by most public set-join datasets):
  each line is a whitespace-separated list of integer elements; the line
  number is the tuple id.

* **id-prefixed**: each line is ``rid: e1 e2 e3 ...`` — useful when ids are
  not dense (e.g. after :meth:`Relation.filter_cardinality`).

Both writers emit sorted elements so files are canonical and diff-friendly.

Hardened ingestion
------------------

Real dataset files arrive with stray headers, truncated lines and
editor droppings; by default one bad line aborts the whole read.  Every
reader therefore takes an ``on_error`` mode:

* ``"raise"`` (default) — abort with :class:`~repro.errors.RelationError`
  carrying ``path:lineno`` context, exactly as before;
* ``"skip"`` — drop malformed lines silently and keep the good ones;
* ``"collect"`` — like ``"skip"``, but return a ``(value, report)`` pair
  whose :class:`IngestReport` lists every skipped line with its number
  and reason, so a million-line dataset is not discarded for one typo
  *and* the damage stays observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, TextIO

from repro.errors import RelationError
from repro.relations.relation import Relation, SetRecord

__all__ = [
    "SkippedLine",
    "IngestReport",
    "write_relation",
    "read_relation",
    "write_relation_with_ids",
    "read_relation_with_ids",
    "write_join_result",
    "read_join_result",
]

#: Valid ``on_error`` modes for the readers.
_ON_ERROR_MODES = ("raise", "skip", "collect")


@dataclass(frozen=True, slots=True)
class SkippedLine:
    """One malformed input line dropped during a lenient read.

    Attributes:
        lineno: 1-based line number in the source file.
        reason: Why the line was rejected.
        text: The offending line (truncated to 80 characters).
    """

    lineno: int
    reason: str
    text: str


@dataclass(slots=True)
class IngestReport:
    """Structured outcome of reading one file leniently.

    Attributes:
        path: The file that was read.
        total_lines: Lines seen in the file.
        loaded: Records successfully parsed.
        skipped: Every rejected line, in file order.
    """

    path: str
    total_lines: int = 0
    loaded: int = 0
    skipped: list[SkippedLine] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no line was rejected."""
        return not self.skipped

    def summary(self, max_lines: int = 5) -> str:
        """Human-readable digest: counts plus the first few skipped lines."""
        head = (
            f"{self.path}: loaded {self.loaded}/{self.total_lines} lines, "
            f"skipped {len(self.skipped)}"
        )
        details = [
            f"  line {bad.lineno}: {bad.reason} ({bad.text!r})"
            for bad in self.skipped[:max_lines]
        ]
        if len(self.skipped) > max_lines:
            details.append(f"  ... and {len(self.skipped) - max_lines} more")
        return "\n".join([head, *details])


class _LineSink:
    """Shared error-routing for the readers: raise, skip, or collect."""

    def __init__(self, path: str | Path, on_error: str) -> None:
        if on_error not in _ON_ERROR_MODES:
            raise RelationError(
                f"on_error must be one of {_ON_ERROR_MODES}, got {on_error!r}"
            )
        self.on_error = on_error
        self.report = IngestReport(path=str(path))

    def bad_line(self, lineno: int, reason: str, text: str) -> None:
        """Record one malformed line, aborting in ``"raise"`` mode."""
        if self.on_error == "raise":
            raise RelationError(f"{self.report.path}:{lineno}: {reason}")
        self.report.skipped.append(SkippedLine(lineno, reason, text[:80]))

    def finish(self, value, total_lines: int, loaded: int):
        """Return ``value`` or ``(value, report)`` per the chosen mode."""
        self.report.total_lines = total_lines
        self.report.loaded = loaded
        if self.on_error == "collect":
            return value, self.report
        return value


def _open_for_read(path: str | Path) -> TextIO:
    return Path(path).open("r", encoding="utf-8")


def write_relation(relation: Relation, path: str | Path) -> None:
    """Write ``relation`` in set-per-line format (ids become line numbers)."""
    with Path(path).open("w", encoding="utf-8") as out:
        for rec in relation:
            out.write(" ".join(map(str, rec.sorted_elements())))
            out.write("\n")


def read_relation(path: str | Path, name: str = "", on_error: str = "raise"):
    """Read a set-per-line file; tuple ids are 0-based line numbers.

    Blank lines denote empty sets (they are legal set values).  Skipped
    lines keep their line number reserved, so surviving ids still match
    the file's physical lines.

    Args:
        path: The file to read.
        name: Relation name (defaults to the file stem).
        on_error: ``"raise"`` aborts on the first malformed line,
            ``"skip"`` drops malformed lines, ``"collect"`` drops them and
            returns ``(relation, report)`` instead of just the relation.

    Raises:
        RelationError: On a non-integer token (``"raise"`` mode) or an
            unknown ``on_error`` mode.
    """
    sink = _LineSink(path, on_error)
    records: list[SetRecord] = []
    total = 0
    with _open_for_read(path) as src:
        for lineno, line in enumerate(src):
            total += 1
            stripped = line.strip()
            try:
                elements = frozenset(int(tok) for tok in stripped.split()) if stripped else frozenset()
            except ValueError:
                sink.bad_line(lineno + 1, "non-integer element", stripped)
                continue
            try:
                records.append(SetRecord(lineno, elements))
            except RelationError as exc:
                sink.bad_line(lineno + 1, str(exc), stripped)
    relation = Relation(records, name=name or Path(path).stem)
    return sink.finish(relation, total, len(records))


def write_relation_with_ids(relation: Relation, path: str | Path) -> None:
    """Write ``relation`` in ``rid: e1 e2 ...`` format, preserving ids."""
    with Path(path).open("w", encoding="utf-8") as out:
        for rec in relation:
            out.write(f"{rec.rid}: ")
            out.write(" ".join(map(str, rec.sorted_elements())))
            out.write("\n")


def read_relation_with_ids(path: str | Path, name: str = "", on_error: str = "raise"):
    """Read an ``rid: e1 e2 ...`` file, preserving the stored ids.

    Args:
        path: The file to read.
        name: Relation name (defaults to the file stem).
        on_error: ``"raise"`` aborts on the first malformed line,
            ``"skip"`` drops malformed lines, ``"collect"`` drops them and
            returns ``(relation, report)`` instead of just the relation.

    Raises:
        RelationError: On a malformed line or duplicate id (``"raise"``
            mode) or an unknown ``on_error`` mode.
    """
    sink = _LineSink(path, on_error)
    records: list[SetRecord] = []
    seen: set[int] = set()
    total = 0
    with _open_for_read(path) as src:
        for lineno, line in enumerate(src):
            total += 1
            stripped = line.strip()
            if not stripped:
                continue
            head, sep, tail = stripped.partition(":")
            if not sep:
                sink.bad_line(lineno + 1, "missing 'rid:' prefix", stripped)
                continue
            try:
                rid = int(head)
                elements = frozenset(int(tok) for tok in tail.split())
            except ValueError:
                sink.bad_line(lineno + 1, "non-integer token", stripped)
                continue
            if rid in seen:
                sink.bad_line(lineno + 1, f"duplicate record id {rid}", stripped)
                continue
            try:
                records.append(SetRecord(rid, elements))
            except RelationError as exc:
                sink.bad_line(lineno + 1, str(exc), stripped)
                continue
            seen.add(rid)
    relation = Relation(records, name=name or Path(path).stem)
    return sink.finish(relation, total, len(records))


def write_join_result(pairs: Iterable[tuple[int, int]], path: str | Path) -> None:
    """Write join output pairs, one ``r_id s_id`` per line, sorted."""
    with Path(path).open("w", encoding="utf-8") as out:
        for r_id, s_id in sorted(pairs):
            out.write(f"{r_id} {s_id}\n")


def read_join_result(path: str | Path, on_error: str = "raise"):
    """Read pairs written by :func:`write_join_result`.

    Args:
        path: The file to read.
        on_error: ``"raise"`` aborts on the first malformed line,
            ``"skip"`` drops malformed lines, ``"collect"`` drops them and
            returns ``(pairs, report)`` instead of just the pairs.

    Raises:
        RelationError: On wrong arity or a non-integer id (``"raise"``
            mode) or an unknown ``on_error`` mode.
    """
    sink = _LineSink(path, on_error)
    pairs: list[tuple[int, int]] = []
    total = 0
    with _open_for_read(path) as src:
        for lineno, line in enumerate(src):
            total += 1
            stripped = line.strip()
            if not stripped:
                continue
            parts = stripped.split()
            if len(parts) != 2:
                sink.bad_line(lineno + 1, "expected two ids per line", stripped)
                continue
            try:
                pairs.append((int(parts[0]), int(parts[1])))
            except ValueError:
                sink.bad_line(lineno + 1, "non-integer id", stripped)
    return sink.finish(pairs, total, len(pairs))
