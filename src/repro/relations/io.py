"""Plain-text I/O for set-valued relations.

Two formats are supported:

* **set-per-line** (the format used by most public set-join datasets):
  each line is a whitespace-separated list of integer elements; the line
  number is the tuple id.

* **id-prefixed**: each line is ``rid: e1 e2 e3 ...`` — useful when ids are
  not dense (e.g. after :meth:`Relation.filter_cardinality`).

Both writers emit sorted elements so files are canonical and diff-friendly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, TextIO

from repro.errors import RelationError
from repro.relations.relation import Relation, SetRecord

__all__ = [
    "write_relation",
    "read_relation",
    "write_relation_with_ids",
    "read_relation_with_ids",
]


def _open_for_read(path: str | Path) -> TextIO:
    return Path(path).open("r", encoding="utf-8")


def write_relation(relation: Relation, path: str | Path) -> None:
    """Write ``relation`` in set-per-line format (ids become line numbers)."""
    with Path(path).open("w", encoding="utf-8") as out:
        for rec in relation:
            out.write(" ".join(map(str, rec.sorted_elements())))
            out.write("\n")


def read_relation(path: str | Path, name: str = "") -> Relation:
    """Read a set-per-line file; tuple ids are 0-based line numbers.

    Blank lines denote empty sets (they are legal set values).

    Raises:
        RelationError: On a non-integer token.
    """
    records: list[SetRecord] = []
    with _open_for_read(path) as src:
        for lineno, line in enumerate(src):
            stripped = line.strip()
            try:
                elements = frozenset(int(tok) for tok in stripped.split()) if stripped else frozenset()
            except ValueError as exc:
                raise RelationError(f"{path}:{lineno + 1}: non-integer element") from exc
            records.append(SetRecord(lineno, elements))
    return Relation(records, name=name or Path(path).stem)


def write_relation_with_ids(relation: Relation, path: str | Path) -> None:
    """Write ``relation`` in ``rid: e1 e2 ...`` format, preserving ids."""
    with Path(path).open("w", encoding="utf-8") as out:
        for rec in relation:
            out.write(f"{rec.rid}: ")
            out.write(" ".join(map(str, rec.sorted_elements())))
            out.write("\n")


def read_relation_with_ids(path: str | Path, name: str = "") -> Relation:
    """Read an ``rid: e1 e2 ...`` file, preserving the stored ids.

    Raises:
        RelationError: On a malformed line or duplicate id.
    """
    records: list[SetRecord] = []
    with _open_for_read(path) as src:
        for lineno, line in enumerate(src):
            stripped = line.strip()
            if not stripped:
                continue
            head, sep, tail = stripped.partition(":")
            if not sep:
                raise RelationError(f"{path}:{lineno + 1}: missing 'rid:' prefix")
            try:
                rid = int(head)
                elements = frozenset(int(tok) for tok in tail.split())
            except ValueError as exc:
                raise RelationError(f"{path}:{lineno + 1}: non-integer token") from exc
            records.append(SetRecord(rid, elements))
    return Relation(records, name=name or Path(path).stem)


def write_join_result(pairs: Iterable[tuple[int, int]], path: str | Path) -> None:
    """Write join output pairs, one ``r_id s_id`` per line, sorted."""
    with Path(path).open("w", encoding="utf-8") as out:
        for r_id, s_id in sorted(pairs):
            out.write(f"{r_id} {s_id}\n")


def read_join_result(path: str | Path) -> list[tuple[int, int]]:
    """Read pairs written by :func:`write_join_result`."""
    pairs: list[tuple[int, int]] = []
    with _open_for_read(path) as src:
        for lineno, line in enumerate(src):
            stripped = line.strip()
            if not stripped:
                continue
            parts = stripped.split()
            if len(parts) != 2:
                raise RelationError(f"{path}:{lineno + 1}: expected two ids per line")
            pairs.append((int(parts[0]), int(parts[1])))
    return pairs
