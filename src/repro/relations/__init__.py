"""Set-valued relations: the data model every join algorithm consumes.

Public surface:

* :class:`~repro.relations.relation.SetRecord` — one tuple ``(rid, elements)``.
* :class:`~repro.relations.relation.Relation` — an immutable collection of records.
* :class:`~repro.relations.universe.Universe` — label <-> int dictionary.
* :class:`~repro.relations.stats.RelationStats` / :func:`~repro.relations.stats.compute_stats`
  — the Table III statistics.
* :mod:`repro.relations.io` — plain-text (de)serialisation.
"""

from repro.relations.io import (
    IngestReport,
    SkippedLine,
    read_join_result,
    read_relation,
    read_relation_with_ids,
    write_join_result,
    write_relation,
    write_relation_with_ids,
)
from repro.relations.relation import Relation, SetRecord
from repro.relations.stats import RelationStats, compute_stats
from repro.relations.transforms import apply_universe, densify, relabel_by_frequency
from repro.relations.universe import Universe

__all__ = [
    "Relation",
    "SetRecord",
    "Universe",
    "RelationStats",
    "compute_stats",
    "densify",
    "relabel_by_frequency",
    "apply_universe",
    "IngestReport",
    "SkippedLine",
    "read_relation",
    "write_relation",
    "read_relation_with_ids",
    "write_relation_with_ids",
    "read_join_result",
    "write_join_result",
]
