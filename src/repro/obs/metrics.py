"""Process-local metrics: named counters, gauges and histograms.

:class:`MetricsRegistry` generalises the hand-maintained counters of
:class:`~repro.core.base.JoinStats`: a join run with a registry-backed
tracer feeds the same ``pairs`` / ``candidates`` / ``verifications`` /
``node_visits`` deltas into named :class:`Counter` instruments, timings
into :class:`Histogram` instruments, and any component can add its own
without touching the stats dataclass.  ``JoinStats.snapshot_registry``
copies a registry snapshot into ``stats.extras``, so the existing extras
mechanism is one *view* of the registry rather than a parallel system.

Registries are plain objects — create one per run for isolation, or use
the process-wide :func:`default_registry` for long-lived serving
processes that want cumulative counts.  Mutation is thread-safe: every
instrument guards its update with a lock, and instrument creation is
guarded by a registry-wide lock, so the join server's concurrent request
threads can hammer one shared registry without dropping increments
(``tests/test_obs.py`` has the thread-hammer regression).  The locks are
uncontended in single-threaded runs — a couple hundred nanoseconds per
update, invisible next to per-record join work.
"""

from __future__ import annotations

import threading
from typing import Mapping, MutableMapping

from repro.analysis.concurrency import tracked_lock

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "reset_default_registry",
]


class Counter:
    """A monotonically-increasing named value (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, n: float = 1) -> None:
        """Add ``n`` (must be non-negative) to the counter."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n})")
        with self._lock:
            self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A named value that can move in both directions (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, n: float) -> None:
        with self._lock:
            self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Summary statistics of observed values (count/sum/min/max).

    A full bucketed histogram is overkill for wall-time distributions at
    this scale; count, sum and extrema answer the questions the benchmarks
    ask (mean probe latency, worst batch) without unbounded state.
    Observations are thread-safe, so the four fields stay mutually
    consistent under concurrent request accounting.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def _fold(self, count: int, total: float, lo: float, hi: float) -> None:
        """Merge another histogram's summary into this one (see ``merge``)."""
        with self._lock:
            self.count += count
            self.total += total
            if lo < self.min:
                self.min = lo
            if hi > self.max:
                self.max = hi

    def summary(self) -> tuple[int, float, float, float]:
        """A consistent ``(count, total, min, max)`` reading.

        The four fields are taken under the instrument's own lock, so a
        concurrent :meth:`observe` can never produce a torn view (a count
        that includes an observation whose total does not).  This is the
        only sanctioned way to read a histogram from outside — snapshot
        and merge paths must not reach for ``hist._lock`` (rule RPR012).
        """
        with self._lock:
            return self.count, self.total, self.min, self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.6g}>"


class MetricsRegistry:
    """A namespace of counters, gauges and histograms.

    Instruments are created on first access (Prometheus-client style), so
    call sites never need registration boilerplate::

        registry = MetricsRegistry()
        registry.counter("pairs").inc(42)
        registry.histogram("probe_seconds").observe(0.003)
        registry.snapshot()   # {'pairs': 42.0, 'probe_seconds.count': 1, ...}
    """

    __slots__ = ("_counters", "_gauges", "_histograms", "_lock")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        # The creation lock is tracked under REPRO_RACEDETECT (it is
        # acquired from request threads, cache internals and lock-release
        # paths, so its ordering matters) but carries no hold-time
        # registry: a registry stamping hold times into itself while its
        # instrument table is mid-creation would recurse.
        self._lock = tracked_lock("metrics.registry")

    def counter(self, name: str) -> Counter:
        """The counter ``name``, created on first use."""
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    instrument = Counter(name)
                    self._counters[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge ``name``, created on first use."""
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.get(name)
                if instrument is None:
                    instrument = Gauge(name)
                    self._gauges[name] = instrument
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram ``name``, created on first use."""
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    instrument = Histogram(name)
                    self._histograms[name] = instrument
        return instrument

    def snapshot(self) -> dict[str, float]:
        """A flat name → value view of every instrument.

        Histograms expand to ``name.count`` / ``name.sum`` / ``name.min``
        / ``name.max`` entries (extrema omitted while empty).
        """
        out: dict[str, float] = {}
        for name, counter in list(self._counters.items()):
            out[name] = counter.value
        for name, gauge in list(self._gauges.items()):
            out[name] = gauge.value
        for name, hist in list(self._histograms.items()):
            count, total, lo, hi = hist.summary()
            out[f"{name}.count"] = float(count)
            out[f"{name}.sum"] = total
            if count:
                out[f"{name}.min"] = lo
                out[f"{name}.max"] = hi
        return out

    def snapshot_into(
        self, extras: MutableMapping[str, float], prefix: str = "metric."
    ) -> None:
        """Copy :meth:`snapshot` into ``extras`` under ``prefix``.

        This is how :class:`~repro.core.base.JoinStats` absorbs a run's
        registry — see ``JoinStats.snapshot_registry``.
        """
        for name, value in self.snapshot().items():
            extras[f"{prefix}{name}"] = value

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one."""
        for name, counter in list(other._counters.items()):
            self.counter(name).inc(counter.value)
        for name, gauge in list(other._gauges.items()):
            self.gauge(name).set(gauge.value)
        for name, hist in list(other._histograms.items()):
            self.histogram(name)._fold(*hist.summary())

    def reset(self) -> None:
        """Drop every instrument (isolation between runs/tests)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)}>"
        )


#: The process-wide registry for long-lived processes; tests use fresh
#: instances (or :func:`reset_default_registry`) for isolation.
_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry."""
    return _DEFAULT


def reset_default_registry() -> None:
    """Clear the process-wide registry (test isolation)."""
    _DEFAULT.reset()
