"""repro.obs — zero-dependency observability for every join.

Three cooperating pieces (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.tracer` — phase-scoped spans (``build``, ``probe``,
  ``signature_filter``, ``verify``, ``spill``, ...), merged by name into
  a bounded tree; a no-op :class:`NullTracer` is active by default so the
  hot path pays nothing when tracing is off.
* :mod:`repro.obs.metrics` — a process-local registry of named counters,
  gauges and histograms that :class:`~repro.core.base.JoinStats` can
  snapshot into ``extras``.
* :mod:`repro.obs.export` — JSONL trace files (``repro-scj join --trace``)
  plus a plain-text tree renderer; :mod:`repro.obs.profile` gates
  ``cProfile`` per phase.
"""

from repro.obs.clock import monotonic, perf_counter, wall_clock
from repro.obs.export import read_trace, render_tree, write_trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
)
from repro.obs.profile import PhaseProfiler
from repro.obs.tracer import (
    PHASES,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    set_tracer,
    use,
)

__all__ = [
    "PHASES",
    "perf_counter",
    "monotonic",
    "wall_clock",
    "Span",
    "Tracer",
    "NullTracer",
    "current_tracer",
    "set_tracer",
    "use",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "reset_default_registry",
    "PhaseProfiler",
    "write_trace",
    "read_trace",
    "render_tree",
]
