"""Per-phase ``cProfile`` hook.

Whole-join profiles drown the interesting phase in harness noise; a
:class:`PhaseProfiler` instead arms ``cProfile`` only while spans of the
requested phases are open, so ``repro-scj join --profile probe`` shows
exactly the probe loop's hot functions and nothing else.

``cProfile`` forbids nested activation, so when a gated phase opens
inside another gated phase (``verify`` under ``probe``) the inner span is
simply covered by the outer profile — the profiler tracks one active
phase at a time and attributes the capture to the span that armed it.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Iterable

__all__ = ["PhaseProfiler"]


class PhaseProfiler:
    """Collects one aggregated ``cProfile`` capture per gated phase.

    Args:
        phases: Span names to profile (e.g. ``{"probe", "build"}``).

    The tracer drives it: :meth:`enter` arms the profiler when the span's
    name is gated and nothing is being profiled yet; :meth:`exit` disarms
    it and folds the capture into that phase's accumulated stats.
    """

    def __init__(self, phases: Iterable[str]) -> None:
        self.phases = frozenset(phases)
        self._active_phase: str | None = None
        self._profile: cProfile.Profile | None = None
        self._stats: dict[str, pstats.Stats] = {}

    def enter(self, name: str) -> bool:
        """Arm the profiler for span ``name``; True when armed."""
        if name not in self.phases or self._active_phase is not None:
            return False
        self._active_phase = name
        self._profile = cProfile.Profile()
        self._profile.enable()
        return True

    def exit(self, name: str) -> None:
        """Disarm after the span that armed the profiler closes."""
        if self._active_phase != name or self._profile is None:
            return
        self._profile.disable()
        capture = pstats.Stats(self._profile)
        existing = self._stats.get(name)
        if existing is None:
            self._stats[name] = capture
        else:
            existing.add(self._profile)
        self._active_phase = None
        self._profile = None

    def profiled_phases(self) -> tuple[str, ...]:
        """Phases for which at least one capture exists."""
        return tuple(self._stats)

    def stats(self, phase: str) -> pstats.Stats | None:
        """The accumulated ``pstats.Stats`` for ``phase`` (or ``None``)."""
        return self._stats.get(phase)

    def summary(self, phase: str, limit: int = 15) -> str:
        """Top ``limit`` functions by cumulative time for ``phase``."""
        captured = self._stats.get(phase)
        if captured is None:
            return f"(no profile captured for phase {phase!r})"
        buffer = io.StringIO()
        captured.stream = buffer  # type: ignore[attr-defined]
        captured.sort_stats("cumulative").print_stats(limit)
        return buffer.getvalue()
