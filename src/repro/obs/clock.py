"""The one clock: every timestamp in repro flows through this module.

PR 3 established the "one clock" discipline — phase timings reported by
:class:`~repro.core.base.JoinStats` and the tracer must come from the same
monotonic source so span trees, ``build_seconds``/``probe_seconds`` and
benchmark records are directly comparable.  This module is the single place
outside the standard library where ``time`` is read; lint rule ``RPR001``
(:mod:`repro.analysis.rules.clocks`) rejects any other call site.

Three readings are exposed:

* :func:`perf_counter` — high-resolution monotonic clock for phase
  durations (spans, ``build_seconds``, ``probe_seconds``, bench records).
* :func:`monotonic` — coarser monotonic clock for deadline arithmetic
  (retry budgets in :mod:`repro.exec.resilient`).
* :func:`wall_clock` — epoch seconds, for human-facing timestamps in
  exported artifacts only; never used for durations.

``time.sleep`` is not a clock read and stays allowed everywhere.
"""

from __future__ import annotations

import time as _time

__all__ = ["perf_counter", "monotonic", "wall_clock"]

# Direct aliases, not wrappers: the hot path calls perf_counter() twice per
# probe batch and must not pay an extra Python frame.
perf_counter = _time.perf_counter
monotonic = _time.monotonic
wall_clock = _time.time
