"""JSONL trace export/import and plain-text span-tree rendering.

Trace files are newline-delimited JSON, one record per line:

* the first line is a ``{"type": "meta", ...}`` record carrying whatever
  run context the producer supplies (algorithm, dataset, timestamp);
* every further line is a ``{"type": "span", "id": n, "parent": p, ...}``
  record, written depth-first, parents before children, so the file can
  be reconstructed in one pass and grepped/streamed line-by-line.

The format is the contract between ``repro-scj join --trace FILE``, the
benchmark harness and external consumers; ``tests/test_obs.py`` pins the
round-trip.  See ``docs/OBSERVABILITY.md`` for the field reference.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ReproError
from repro.obs.tracer import Span

__all__ = [
    "write_trace",
    "read_trace",
    "render_tree",
    "span_to_dict",
]


def span_to_dict(span: Span, span_id: int, parent: int | None) -> dict[str, Any]:
    """One span as its JSONL record (children are separate records)."""
    record: dict[str, Any] = {
        "type": "span",
        "id": span_id,
        "parent": parent,
        "name": span.name,
        "seconds": span.seconds,
        "calls": span.calls,
    }
    if span.counters:
        record["counters"] = dict(span.counters)
    if span.mem_peak_bytes:
        record["mem_peak_bytes"] = span.mem_peak_bytes
    return record


def write_trace(
    path: str | Path, root: Span, meta: Mapping[str, Any] | None = None
) -> None:
    """Write a span tree (plus an optional meta header) as JSONL."""
    with Path(path).open("w", encoding="utf-8") as out:
        header: dict[str, Any] = {"type": "meta", "root": root.name}
        if meta:
            header.update(meta)
        out.write(json.dumps(header, sort_keys=True) + "\n")
        next_id = 0
        stack: list[tuple[Span, int | None]] = [(root, None)]
        while stack:
            span, parent = stack.pop()
            span_id = next_id
            next_id += 1
            out.write(json.dumps(span_to_dict(span, span_id, parent)) + "\n")
            # Reversed so children pop (and serialise) in insertion order.
            for child in reversed(list(span.children.values())):
                stack.append((child, span_id))


def read_trace(path: str | Path) -> tuple[Span, dict[str, Any]]:
    """Reconstruct ``(root_span, meta)`` from a JSONL trace file.

    Raises:
        ReproError: On a malformed file (bad JSON, missing root, a span
            referencing an unknown parent).
    """
    source = Path(path)
    meta: dict[str, Any] = {}
    spans: dict[int, Span] = {}
    root: Span | None = None
    with source.open("r", encoding="utf-8") as src:
        for lineno, line in enumerate(src, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(f"{source}:{lineno}: invalid JSON: {exc}") from exc
            kind = record.get("type")
            if kind == "meta":
                meta = {k: v for k, v in record.items() if k != "type"}
                continue
            if kind != "span":
                raise ReproError(f"{source}:{lineno}: unknown record type {kind!r}")
            span = Span(record["name"])
            span.seconds = float(record["seconds"])
            span.calls = int(record["calls"])
            span.counters = dict(record.get("counters", {}))
            span.mem_peak_bytes = int(record.get("mem_peak_bytes", 0))
            spans[int(record["id"])] = span
            parent = record.get("parent")
            if parent is None:
                if root is not None:
                    raise ReproError(f"{source}:{lineno}: multiple root spans")
                root = span
            else:
                parent_span = spans.get(int(parent))
                if parent_span is None:
                    raise ReproError(
                        f"{source}:{lineno}: span {record['id']} references "
                        f"unknown parent {parent}"
                    )
                parent_span.children[span.name] = span
    if root is None:
        raise ReproError(f"{source}: trace file contains no root span")
    return root, meta


def render_tree(root: Span, min_seconds: float = 0.0) -> str:
    """A human-readable indented rendering of a span tree.

    Args:
        root: The tree to render.
        min_seconds: Hide spans (and their subtrees) faster than this.
    """
    lines: list[str] = []
    total = sum(child.seconds for child in root.children.values()) or root.seconds

    def emit(span: Span, depth: int) -> None:
        if depth and span.seconds < min_seconds:
            return
        share = f" ({span.seconds / total * 100.0:5.1f}%)" if depth and total > 0 else ""
        counters = ""
        if span.counters:
            shown = ", ".join(
                f"{k}={int(v) if float(v).is_integer() else v}"
                for k, v in sorted(span.counters.items())
            )
            counters = f"  [{shown}]"
        mem = f"  peak={span.mem_peak_bytes}B" if span.mem_peak_bytes else ""
        lines.append(
            f"{'  ' * depth}{span.name:<20} {span.seconds * 1e3:10.3f} ms"
            f"{share}  x{span.calls}{counters}{mem}"
        )
        for child in span.children.values():
            emit(child, depth + 1)

    emit(root, 0)
    return "\n".join(lines)
