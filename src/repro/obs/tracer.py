"""Phase-scoped tracing: nested spans with wall time and counter deltas.

The paper's evaluation (Sec. V) reasons about joins *per phase* — the
index-build share of the runtime (Sec. V-A3), the ``N·|R|`` verification
cost and the ``V·|R|`` trie-visit cost of the signature algorithms
(Sec. III-C) — so the instrumentation follows the same shape: a
:class:`Tracer` maintains a tree of :class:`Span` nodes named after the
phase taxonomy (``build``, ``probe``, ``signature_filter``, ``verify``,
``invert``, ``traverse``, ``spill``, ``load``, ``retry``, ``fallback``;
see ``docs/OBSERVABILITY.md``), and every join entry point opens spans as
it moves through its phases.

Spans *merge by name*: re-entering ``span("verify")`` under the same
parent accumulates into one node (``seconds`` summed, ``calls``
incremented) instead of growing an unbounded list.  That is what makes
per-record phases and per-chunk worker probes aggregate into a bounded
tree — a thousand probe batches still produce one ``probe`` span with
``calls == 1000``.

The default tracer is a :class:`NullTracer` whose every operation is a
no-op on shared singletons, so the un-traced hot path stays unchanged
(``tests/test_obs.py`` asserts the overhead bound).  Activate tracing
with::

    from repro.obs import Tracer, use

    tracer = Tracer()
    with use(tracer):
        result = set_containment_join(r, s, algorithm="ptsj")
    print(tracer.root.children["probe"].seconds)

Externally-measured work — a worker process's probe time arriving as a
:class:`~repro.core.base.JoinStats` — is merged with :meth:`Tracer.record`
rather than a context manager, so parallel executors can fold per-chunk
spans into the parent's tree without cross-process plumbing.
"""

from __future__ import annotations

import os
import threading
import time
import tracemalloc
from contextlib import contextmanager
from typing import Iterator, Mapping

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "current_tracer",
    "set_tracer",
    "use",
    "PHASES",
]

#: The span taxonomy (documented in docs/OBSERVABILITY.md).  Tracers accept
#: arbitrary names; these are the ones the built-in algorithms emit.
PHASES = (
    "plan",
    "build",
    "probe",
    "signature_filter",
    "verify",
    "invert",
    "traverse",
    "probe_trie_build",
    "spill",
    "load",
    "shard",
    "retry",
    "timeout",
    "fallback",
    "governance",
)


class Span:
    """One node of the phase tree: accumulated wall time plus counters.

    Attributes:
        name: Phase name (``build``, ``probe``, ``verify``, ...).
        seconds: Total wall time accumulated over every entry.
        calls: How many times the phase was entered (or recorded).
        counters: Named counter deltas attributed to this phase.
        children: Child phases, merged by name.
        mem_peak_bytes: Highest tracemalloc peak-over-entry delta observed
            across entries, when memory sampling is enabled; 0 otherwise.
    """

    __slots__ = ("name", "seconds", "calls", "counters", "children", "mem_peak_bytes")

    def __init__(self, name: str) -> None:
        self.name = name
        self.seconds = 0.0
        self.calls = 0
        self.counters: dict[str, float] = {}
        self.children: dict[str, Span] = {}
        self.mem_peak_bytes = 0

    def child(self, name: str) -> "Span":
        """The child span named ``name``, created on first use."""
        node = self.children.get(name)
        if node is None:
            node = Span(name)
            self.children[name] = node
        return node

    def add_counters(self, counters: Mapping[str, float] | None) -> None:
        """Fold counter deltas into this span."""
        if not counters:
            return
        own = self.counters
        for key, value in counters.items():
            own[key] = own.get(key, 0) + value

    def find(self, *path: str) -> "Span | None":
        """Descend ``path`` from this span; ``None`` when absent."""
        node: Span | None = self
        for name in path:
            if node is None:
                return None
            node = node.children.get(name)
        return node

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "Span"]]:
        """Depth-first ``(depth, span)`` traversal, children in insertion order."""
        yield depth, self
        for child in self.children.values():
            yield from child.walk(depth + 1)

    def phase_seconds(self) -> dict[str, float]:
        """Wall time of each *direct* child phase (the top-level breakdown)."""
        return {name: child.seconds for name, child in self.children.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.name} {self.seconds:.6f}s calls={self.calls} "
            f"children={list(self.children)}>"
        )


class _SpanHandle:
    """Context manager for one entry into a (merged) span."""

    __slots__ = ("_tracer", "_span", "_start", "_mem_start", "_profiled")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._start = 0.0
        self._mem_start = 0
        self._profiled = False

    def __enter__(self) -> Span:
        tracer = self._tracer
        tracer._stack.append(self._span)
        if tracer.sample_memory and tracemalloc.is_tracing():
            self._mem_start = tracemalloc.get_traced_memory()[0]
        if tracer.profiler is not None:
            self._profiled = tracer.profiler.enter(self._span.name)
        self._start = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        tracer = self._tracer
        span = self._span
        if tracer.profiler is not None and self._profiled:
            tracer.profiler.exit(span.name)
        span.seconds += elapsed
        span.calls += 1
        if tracer.sample_memory and tracemalloc.is_tracing():
            peak = tracemalloc.get_traced_memory()[1] - self._mem_start
            if peak > span.mem_peak_bytes:
                span.mem_peak_bytes = peak
        popped = tracer._stack.pop()
        assert popped is span, "span stack corrupted (unbalanced enter/exit)"


class Tracer:
    """An active tracer: spans nest under a root and merge by name.

    Args:
        name: Name of the root span (defaults to ``"trace"``).
        registry: Optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when given, :meth:`count` mirrors every counter into it and
            :meth:`observe` feeds its histograms, so one run's span deltas
            double as process metrics.
        sample_memory: When True, each span records its peak
            ``tracemalloc`` delta.  Tracing is started if not already
            active (and stopped again by :meth:`finish`).
        profiler: Optional :class:`~repro.obs.profile.PhaseProfiler`;
            spans whose name it gates run under ``cProfile``.
    """

    enabled = True

    def __init__(
        self,
        name: str = "trace",
        registry: MetricsRegistry | None = None,
        sample_memory: bool = False,
        profiler=None,
    ) -> None:
        self.root = Span(name)
        self.registry = registry
        self.sample_memory = sample_memory
        self.profiler = profiler
        self._stack: list[Span] = [self.root]
        self._started_tracemalloc = False
        if sample_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True

    # ------------------------------------------------------------------
    # Span API
    # ------------------------------------------------------------------
    @property
    def current(self) -> Span:
        """The innermost open span (the root when none is open)."""
        return self._stack[-1]

    def span(self, name: str) -> _SpanHandle:
        """Open (or re-enter) the child phase ``name`` under the current span."""
        return _SpanHandle(self, self.current.child(name))

    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name`` on the current span (and registry)."""
        counters = self.current.counters
        counters[name] = counters.get(name, 0) + n
        if self.registry is not None:
            self.registry.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        """Feed ``value`` into the registry histogram ``name`` (if any)."""
        if self.registry is not None:
            self.registry.histogram(name).observe(value)

    def record(
        self,
        name: str,
        seconds: float,
        counters: Mapping[str, float] | None = None,
        calls: int = 1,
        mirror: bool = True,
    ) -> Span:
        """Merge an externally-measured span under the current span.

        The parallel executors use this to fold a worker's per-chunk probe
        time (carried home in its :class:`JoinStats`) into the parent's
        tree: the chunk's wall time was measured in the worker, so the
        parent must not re-time it with a context manager.

        Args:
            mirror: Mirror ``counters`` into the registry (like
                :meth:`count` does).  Pass False when the record is a
                per-phase *breakdown* of quantities the enclosing span
                already counted — mirroring those again would double the
                registry totals.
        """
        span = self.current.child(name)
        span.seconds += seconds
        span.calls += calls
        span.add_counters(counters)
        if mirror and self.registry is not None:
            for key, value in (counters or {}).items():
                self.registry.counter(key).inc(value)
        return span

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def finish(self) -> Span:
        """Close the tracer: stop tracemalloc if this tracer started it.

        Under ``REPRO_SANITIZE=1`` also verifies that every span handle
        was exited — an unbalanced stack means some phase's time was
        attributed to the wrong parent.
        """
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracemalloc = False
        if len(self._stack) != 1 and os.environ.get(
            "REPRO_SANITIZE", ""
        ).strip().lower() not in ("", "0", "false", "no", "off"):
            from repro.errors import SanitizerError

            open_spans = ".".join(span.name for span in self._stack[1:])
            raise SanitizerError(
                f"tracer finished with {len(self._stack) - 1} span(s) still "
                "open", path=open_spans,
            )
        return self.root

    def phase_seconds(self) -> dict[str, float]:
        """Top-level phase breakdown (direct children of the root)."""
        return self.root.phase_seconds()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tracer root={self.root.name!r} phases={list(self.root.children)}>"


class _NullSpanHandle:
    """Shared no-op context manager returned by :meth:`NullTracer.span`."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpanHandle()


class NullTracer:
    """The default tracer: every operation is a no-op on shared objects.

    Kept deliberately allocation-free so leaving tracing off costs a few
    attribute lookups per *batch* (never per record — per-record
    instrumentation is gated on :attr:`enabled`).
    """

    enabled = False
    registry = None
    sample_memory = False
    profiler = None
    root = None

    def span(self, name: str) -> _NullSpanHandle:
        return _NULL_SPAN

    def count(self, name: str, n: float = 1) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def record(self, name, seconds, counters=None, calls=1, mirror=True) -> None:
        return None

    def finish(self) -> None:
        return None

    def phase_seconds(self) -> dict[str, float]:
        return {}


#: Thread-local current tracer.  Each thread starts with the shared
#: NullTracer: worker *processes* install their own (parallel executors
#: aggregate worker time via stats instead), and the join server's
#: request threads each install a per-request tracer without clobbering
#: one another — span trees are never shared across threads.
_STATE = threading.local()
_NULL = NullTracer()


def current_tracer() -> Tracer | NullTracer:
    """The tracer active in this thread (a :class:`NullTracer` by default)."""
    return getattr(_STATE, "tracer", _NULL)


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install ``tracer`` as this thread's tracer; returns the previous one."""
    previous = getattr(_STATE, "tracer", _NULL)
    _STATE.tracer = tracer
    return previous


@contextmanager
def use(tracer: Tracer | NullTracer) -> Iterator[Tracer | NullTracer]:
    """Scope ``tracer`` as the current tracer for a ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
