"""k-bisimulation partition encoder (substrate for the *twitter* dataset).

The paper's *twitter* dataset (Table III) is derived from external-memory
k-bisimulation of a graph [28]: "tuples are the partitions of the graph,
and sets are the encoded neighborhood information each partition
represents", with neighborhoods of up to 5 steps.  The original Twitter
graph is unavailable offline, so this module implements the same pipeline
on synthetic graphs:

1. iteratively refine a k-bisimulation partition of a directed graph
   (block of a node at level ``i+1`` = its level-``i`` block plus the
   multiset of its successors' level-``i`` blocks);
2. encode, per node, the neighborhood information ``(level, block)`` seen
   along the refinement as integer features via a
   :class:`~repro.relations.universe.Universe`;
3. emit one tuple per final partition block whose set is the union of its
   members' features.

Set-containment joins over this relation then express exactly the graph
similarity / query-answering use case the paper motivates.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable, Mapping

from repro.errors import DataGenError
from repro.relations.relation import Relation
from repro.relations.universe import Universe

__all__ = ["kbisim_blocks", "kbisim_relation", "random_power_law_digraph"]


def kbisim_blocks(
    successors: Mapping[Hashable, Iterable[Hashable]],
    k: int,
) -> dict[Hashable, int]:
    """Compute the k-bisimulation block id of every node.

    Args:
        successors: Adjacency mapping ``node -> successor nodes`` (every
            node that appears as a successor must also be a key).
        k: Refinement depth (the paper's twitter dataset uses 5).

    Returns:
        ``{node: block_id}`` with dense block ids; two nodes share a block
        iff they are k-bisimilar (same local structure to depth ``k``).

    Raises:
        DataGenError: If ``k`` is negative or a successor is not a node.
    """
    if k < 0:
        raise DataGenError(f"bisimulation depth must be non-negative, got {k}")
    nodes = list(successors)
    node_set = set(nodes)
    for v in nodes:
        for u in successors[v]:
            if u not in node_set:
                raise DataGenError(f"successor {u!r} of {v!r} is not a graph node")
    blocks: dict[Hashable, int] = {v: 0 for v in nodes}
    for _ in range(k):
        signatures = {
            v: (blocks[v], tuple(sorted(Counter(blocks[u] for u in successors[v]).items())))
            for v in nodes
        }
        canon: dict[tuple, int] = {}
        new_blocks: dict[Hashable, int] = {}
        for v in nodes:
            sig = signatures[v]
            block = canon.setdefault(sig, len(canon))
            new_blocks[v] = block
        if len(canon) == len(set(blocks.values())):
            # Fixpoint reached early: further refinement cannot split blocks.
            blocks = new_blocks
            break
        blocks = new_blocks
    return blocks


def kbisim_relation(
    successors: Mapping[Hashable, Iterable[Hashable]],
    k: int,
) -> tuple[Relation, Universe]:
    """Build the paper's twitter-style relation from a graph.

    One tuple per final bisimulation block; the tuple's set is the union of
    ``(level, block-of-neighbor)`` features its member nodes collected
    during refinement, integer-encoded via a fresh :class:`Universe`.

    Returns:
        ``(relation, universe)`` — the universe decodes feature ids back to
        ``(level, block_id)`` pairs.
    """
    if k < 0:
        raise DataGenError(f"bisimulation depth must be non-negative, got {k}")
    nodes = list(successors)
    universe = Universe()
    features: dict[Hashable, set[int]] = {v: set() for v in nodes}
    blocks: dict[Hashable, int] = {v: 0 for v in nodes}
    for level in range(1, k + 1):
        signatures = {
            v: (blocks[v], tuple(sorted(Counter(blocks[u] for u in successors[v]).items())))
            for v in nodes
        }
        canon: dict[tuple, int] = {}
        blocks = {v: canon.setdefault(signatures[v], len(canon)) for v in nodes}
        for v in nodes:
            features[v].add(universe.encode((level, blocks[v])))
            for u in successors[v]:
                features[v].add(universe.encode((level, blocks[u])))
    partitions: dict[int, set[int]] = {}
    for v in nodes:
        partitions.setdefault(blocks[v], set()).update(features[v])
    relation = Relation.from_sets(
        (partitions[b] for b in sorted(partitions)), name=f"kbisim(k={k})"
    )
    return relation, universe


def random_power_law_digraph(
    nodes: int,
    avg_out_degree: float,
    seed: int = 0,
) -> dict[int, list[int]]:
    """A random directed graph with Zipf-skewed in-degrees.

    Stands in for the social/web graphs of the paper's datasets: each node
    draws a Poisson out-degree and picks targets Zipf-distributed over the
    node ids (popular nodes attract most edges), without self-loops.

    Raises:
        DataGenError: On non-positive ``nodes`` or ``avg_out_degree``.
    """
    import numpy as np

    from repro.datagen.distributions import PoissonDist, ZipfDist

    if nodes <= 0 or avg_out_degree <= 0:
        raise DataGenError("nodes and avg_out_degree must be positive")
    rng = np.random.default_rng(seed)
    out_degrees = PoissonDist(avg_out_degree, low=0, high=nodes - 1).sample(rng, nodes)
    target_dist = ZipfDist(nodes, s=1.0)
    graph: dict[int, list[int]] = {}
    for v in range(nodes):
        degree = int(out_degrees[v])
        targets: set[int] = set()
        while len(targets) < degree:
            batch = target_dist.sample(rng, max(4, degree - len(targets)))
            targets.update(int(t) for t in batch if int(t) != v)
        graph[v] = sorted(targets)
    return graph
