"""Samplers for the paper's data distributions (Sec. V-A1).

The paper's generator varies both the *set cardinality* distribution and
the *set element* distribution over {uniform, Poisson, Zipf} ("distributions
commonly found in real-world scenarios", built there on Apache Commons
Math).  This module provides the equivalent samplers on top of numpy's
``Generator``:

* :class:`UniformDist` — uniform integers on ``[low, high]``;
* :class:`PoissonDist` — Poisson with mean ``lam``, truncated to a range;
* :class:`ZipfDist` — *bounded* Zipf over ``{1..n}`` with exponent ``s``
  (numpy's ``zipf`` is unbounded; set elements need a bounded domain, so we
  sample from the normalised finite distribution via inverse-CDF lookup).

All samplers draw vectors (numpy arrays) for speed and are deterministic
given the ``Generator`` passed in.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataGenError

__all__ = ["UniformDist", "PoissonDist", "ZipfDist", "make_distribution"]


class UniformDist:
    """Uniform integers on the inclusive range ``[low, high]``.

    Raises:
        DataGenError: If ``low > high`` or ``low`` is negative.
    """

    __slots__ = ("low", "high")

    def __init__(self, low: int, high: int) -> None:
        if low < 0 or low > high:
            raise DataGenError(f"invalid uniform range [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` values."""
        return rng.integers(self.low, self.high + 1, size=count)

    @property
    def mean(self) -> float:
        """Expected value of one draw."""
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"UniformDist({self.low}, {self.high})"


class PoissonDist:
    """Poisson with mean ``lam``, clipped to ``[low, high]``.

    Clipping keeps draws valid as cardinalities (>= 1) or element ids
    (< domain).  The clipped mean drifts slightly from ``lam``; for the
    paper's configurations (``lam`` well inside the range) the drift is
    negligible.

    Raises:
        DataGenError: If ``lam`` is not positive or the range is invalid.
    """

    __slots__ = ("lam", "low", "high")

    def __init__(self, lam: float, low: int = 0, high: int | None = None) -> None:
        if lam <= 0:
            raise DataGenError(f"poisson mean must be positive, got {lam}")
        if high is not None and low > high:
            raise DataGenError(f"invalid poisson clip range [{low}, {high}]")
        self.lam = lam
        self.low = low
        self.high = high

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` values."""
        values = rng.poisson(self.lam, size=count)
        hi = self.high if self.high is not None else None
        return np.clip(values, self.low, hi)

    @property
    def mean(self) -> float:
        """Nominal (unclipped) mean."""
        return self.lam

    def __repr__(self) -> str:
        return f"PoissonDist(lam={self.lam}, low={self.low}, high={self.high})"


class ZipfDist:
    """Bounded Zipf over ranks ``1..n`` mapped to values ``offset..offset+n-1``.

    ``P(rank = i) ∝ 1 / i**s``.  Sampling is inverse-CDF on the precomputed
    cumulative weights (``searchsorted``), so each draw is O(log n) and the
    distribution is exactly the normalised finite Zipf, unlike numpy's
    unbounded ``Generator.zipf``.

    Args:
        n: Number of ranks (support size).
        s: Skew exponent; the paper's Zipf workloads use moderate skew
            (default 1.0).
        offset: Value of rank 1 (element ids usually start at 0).

    Raises:
        DataGenError: If ``n`` is not positive or ``s`` is negative.
    """

    __slots__ = ("n", "s", "offset", "_cdf")

    def __init__(self, n: int, s: float = 1.0, offset: int = 0) -> None:
        if n <= 0:
            raise DataGenError(f"zipf support size must be positive, got {n}")
        if s < 0:
            raise DataGenError(f"zipf exponent must be non-negative, got {s}")
        self.n = n
        self.s = s
        self.offset = offset
        weights = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** s
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        self._cdf = cdf

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` values; rank 1 (most frequent) maps to ``offset``."""
        u = rng.random(count)
        ranks = np.searchsorted(self._cdf, u, side="left")
        return ranks + self.offset

    @property
    def mean(self) -> float:
        """Expected value of one draw."""
        ranks = np.arange(1, self.n + 1, dtype=np.float64)
        weights = 1.0 / ranks ** self.s
        return float((ranks - 1 + self.offset) @ weights / weights.sum())

    def __repr__(self) -> str:
        return f"ZipfDist(n={self.n}, s={self.s}, offset={self.offset})"


def make_distribution(
    kind: str,
    *,
    mean: float,
    low: int,
    high: int,
    zipf_skew: float = 1.0,
):
    """Build a sampler by name for a target mean on ``[low, high]``.

    ``kind`` is one of ``uniform``, ``poisson``, ``zipf``:

    * ``uniform`` spans ``[low, min(high, 2*mean - low)]`` so the mean is
      approximately ``mean`` (the paper's base setting draws cardinalities
      uniformly around the configured average);
    * ``poisson`` uses ``lam = mean`` clipped to the range;
    * ``zipf`` puts rank 1 at ``low`` spanning the full range (the paper's
      Fig. 7c axis is therefore the *maximum* cardinality).

    Raises:
        DataGenError: For an unknown ``kind`` or inconsistent parameters.
    """
    key = kind.strip().lower()
    if key == "uniform":
        upper = min(high, max(low, int(round(2 * mean)) - low))
        return UniformDist(low, max(low, upper))
    if key == "poisson":
        return PoissonDist(mean, low=low, high=high)
    if key == "zipf":
        return ZipfDist(high - low + 1, s=zipf_skew, offset=low)
    raise DataGenError(f"unknown distribution kind {kind!r}")
