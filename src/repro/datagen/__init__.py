"""Dataset generation: synthetic workloads and real-world surrogates.

* :mod:`repro.datagen.distributions` — uniform / Poisson / bounded-Zipf
  samplers (paper Sec. V-A1).
* :mod:`repro.datagen.synthetic` — Table IV-style configurable relations.
* :mod:`repro.datagen.realworld` — Table III dataset surrogates.
* :mod:`repro.datagen.bisimulation` — graph k-bisimulation encoder (the
  substrate behind the paper's *twitter* dataset).
"""

from repro.datagen.bisimulation import (
    kbisim_blocks,
    kbisim_relation,
    random_power_law_digraph,
)
from repro.datagen.distributions import (
    PoissonDist,
    UniformDist,
    ZipfDist,
    make_distribution,
)
from repro.datagen.realworld import (
    SURROGATE_SPECS,
    SurrogateSpec,
    flickr_surrogate,
    make_surrogate,
    orkut_surrogate,
    scaled_sizes,
    twitter_surrogate,
    webbase_surrogate,
)
from repro.datagen.synthetic import SyntheticConfig, generate_pair, generate_relation

__all__ = [
    "UniformDist",
    "PoissonDist",
    "ZipfDist",
    "make_distribution",
    "SyntheticConfig",
    "generate_relation",
    "generate_pair",
    "SurrogateSpec",
    "SURROGATE_SPECS",
    "make_surrogate",
    "scaled_sizes",
    "flickr_surrogate",
    "orkut_surrogate",
    "twitter_surrogate",
    "webbase_surrogate",
    "kbisim_blocks",
    "kbisim_relation",
    "random_power_law_digraph",
]
