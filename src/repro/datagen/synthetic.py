"""Synthetic relation generator (paper Sec. V-A1, Table IV).

Generates set-valued relations with configurable relation size, set
cardinality, domain cardinality and distributions on both the cardinality
and element axes — the three scaling dimensions of the paper's study.

The paper's base setting draws set cardinalities uniformly around the
configured average with elements uniform over the domain; Fig. 7 swaps in
Poisson and Zipf on either axis.  :class:`SyntheticConfig` captures one
such configuration; :func:`generate_relation` materialises it
deterministically from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.datagen.distributions import make_distribution
from repro.errors import DataGenError
from repro.relations.relation import Relation, SetRecord

__all__ = ["SyntheticConfig", "generate_relation", "generate_pair"]


@dataclass(frozen=True, slots=True)
class SyntheticConfig:
    """One synthetic-dataset configuration (a Table IV row).

    Attributes:
        size: Relation size ``|R|``.
        avg_cardinality: Target average set cardinality ``c``.
        domain: Domain cardinality ``d`` (elements are ``0..d-1``).
        cardinality_dist: ``uniform`` | ``poisson`` | ``zipf`` on ``c``.
        element_dist: ``uniform`` | ``poisson`` | ``zipf`` on elements.
        zipf_skew: Skew exponent for Zipf axes.
        seed: Generator seed (each config is fully deterministic).
        name: Label used in reports.
    """

    size: int
    avg_cardinality: int
    domain: int
    cardinality_dist: str = "uniform"
    element_dist: str = "uniform"
    zipf_skew: float = 1.0
    seed: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        if self.size < 0:
            raise DataGenError(f"relation size must be non-negative, got {self.size}")
        if self.avg_cardinality <= 0:
            raise DataGenError(
                f"average cardinality must be positive, got {self.avg_cardinality}"
            )
        if self.domain <= 0:
            raise DataGenError(f"domain cardinality must be positive, got {self.domain}")
        if self.avg_cardinality > self.domain:
            raise DataGenError(
                f"average cardinality {self.avg_cardinality} exceeds domain {self.domain}"
            )

    def with_seed(self, seed: int) -> "SyntheticConfig":
        """Same configuration under a different seed (for R/S pairs)."""
        return replace(self, seed=seed)

    def label(self) -> str:
        """Short description for benchmark output."""
        if self.name:
            return self.name
        return (
            f"|R|={self.size} c={self.avg_cardinality} d={self.domain} "
            f"cdist={self.cardinality_dist} edist={self.element_dist}"
        )


def _sample_distinct(
    rng: np.random.Generator,
    element_sampler,
    k: int,
    domain: int,
) -> frozenset[int]:
    """Draw ``k`` *distinct* elements from ``element_sampler``.

    Oversampling + dedup loop; when ``k`` approaches the domain size the
    loop falls back to a full permutation, which always terminates.
    """
    if k >= domain:
        return frozenset(range(domain))
    out: set[int] = set()
    attempts = 0
    while len(out) < k:
        need = k - len(out)
        batch = element_sampler.sample(rng, max(need * 2, 8))
        out.update(int(x) for x in batch)
        attempts += 1
        if attempts > 64:
            # Heavily skewed samplers can stall on nearly-full sets; finish
            # with uniform draws over the missing part of the domain.
            remaining = np.setdiff1d(
                np.arange(domain), np.fromiter(out, dtype=np.int64), assume_unique=False
            )
            extra = rng.choice(remaining, size=need, replace=False)
            out.update(int(x) for x in extra)
            break
    if len(out) > k:
        # Trim the oversampled surplus without biasing toward small ids.
        kept = rng.choice(np.fromiter(sorted(out), dtype=np.int64), size=k, replace=False)
        out = {int(x) for x in kept}
    return frozenset(out)


def generate_relation(config: SyntheticConfig, start_id: int = 0) -> Relation:
    """Materialise one relation from ``config``.

    Cardinalities below 1 are clipped to 1 and above ``domain`` to
    ``domain`` (a set cannot repeat elements).

    >>> rel = generate_relation(SyntheticConfig(size=10, avg_cardinality=4, domain=32))
    >>> len(rel)
    10
    """
    rng = np.random.default_rng(config.seed)
    card_sampler = make_distribution(
        config.cardinality_dist,
        mean=float(config.avg_cardinality),
        low=1,
        high=config.domain,
        zipf_skew=config.zipf_skew,
    )
    element_sampler = make_distribution(
        config.element_dist,
        mean=config.domain / 2.0,
        low=0,
        high=config.domain - 1,
        zipf_skew=config.zipf_skew,
    )
    cards = np.clip(card_sampler.sample(rng, config.size), 1, config.domain)
    records = [
        SetRecord(start_id + i, _sample_distinct(rng, element_sampler, int(k), config.domain))
        for i, k in enumerate(cards)
    ]
    return Relation(records, name=config.label())


def generate_pair(config: SyntheticConfig) -> tuple[Relation, Relation]:
    """Generate the ``(R, S)`` pair for one experiment configuration.

    Both relations follow the same configuration but independent seeds
    (``seed`` and ``seed + 1``), matching the paper's setup where both join
    inputs share one Table IV configuration.
    """
    r = generate_relation(config)
    s = generate_relation(config.with_seed(config.seed + 1))
    return r, s
