"""Surrogates for the paper's four real-world datasets (Sec. V-A2, Table III).

The originals (flickr tags, orkut communities, twitter k-bisimulation,
webbase outlinks) are multi-gigabyte downloads behind dead or offline
links, so — per this repository's substitution policy (DESIGN.md §3) —
each is *simulated*: a generator reproduces the dataset's published shape
(relation-size ratios, average and median set cardinality, domain
cardinality regime, Zipf-skewed element popularity) at a configurable
scale.  What the paper's Fig. 8 measures is precisely these shape regimes
(low / low-to-medium / medium / high set cardinality), which the
surrogates preserve:

=========  ==========  ======  ========  =========================
dataset    |R| (paper)  avg c  median c  d (paper)    regime
=========  ==========  ======  ========  =========================
flickr     3.55e6       5.36       4     6.19e5   low cardinality
orkut      1.85e6      57.16      22     1.53e7   low-to-medium
twitter    3.70e5      65.96      61     1318     medium, tiny domain
webbase    1.69e5     462.64     334     1.51e7   high cardinality
=========  ==========  ======  ========  =========================

Cardinalities are drawn from (shifted) log-normals fitted to the published
mean/median pairs; elements are Zipf-distributed over the scaled domain.
The twitter surrogate can alternatively be *derived* from an actual
k-bisimulation of a synthetic graph via
:func:`repro.datagen.bisimulation.kbisim_relation` (``from_graph=True``),
exercising the full pipeline of the paper's source [28].
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.datagen.bisimulation import kbisim_relation, random_power_law_digraph
from repro.datagen.distributions import ZipfDist
from repro.errors import DataGenError
from repro.relations.relation import Relation, SetRecord

__all__ = [
    "SurrogateSpec",
    "SURROGATE_SPECS",
    "make_surrogate",
    "flickr_surrogate",
    "orkut_surrogate",
    "twitter_surrogate",
    "webbase_surrogate",
]


@dataclass(frozen=True, slots=True)
class SurrogateSpec:
    """Shape parameters of one real-world surrogate.

    Attributes:
        name: Dataset name as in Table III.
        median_cardinality: Target median of the *excess* over ``min_card``.
        mean_cardinality: Target mean set cardinality.
        min_cardinality: Pruning threshold (paper: orkut >= 10, twitter
            >= 30, webbase > 200).
        domain_per_tuple: Scaled domain cardinality = this factor x size.
        element_skew: Zipf exponent for element popularity.
    """

    name: str
    median_cardinality: float
    mean_cardinality: float
    min_cardinality: int
    domain_per_tuple: float
    element_skew: float

    def lognormal_params(self) -> tuple[float, float]:
        """``(mu, sigma)`` of the excess-over-minimum log-normal.

        A log-normal's median is ``exp(mu)`` and its mean
        ``exp(mu + sigma^2 / 2)``, so matching the published median and
        mean of ``c - min_card`` fixes both parameters.
        """
        median_excess = max(self.median_cardinality - self.min_cardinality, 1.0)
        mean_excess = max(self.mean_cardinality - self.min_cardinality, median_excess * 1.01)
        mu = math.log(median_excess)
        sigma = math.sqrt(2.0 * math.log(mean_excess / median_excess))
        return mu, sigma


#: Table III shapes.  ``domain_per_tuple`` is the paper's d / |R| ratio.
SURROGATE_SPECS: dict[str, SurrogateSpec] = {
    "flickr": SurrogateSpec("flickr", 4.0, 5.36, 1, 0.174, 1.0),
    "orkut": SurrogateSpec("orkut", 22.0, 57.16, 10, 8.27, 0.9),
    "twitter": SurrogateSpec("twitter", 61.0, 65.96, 30, 0.00356, 0.8),
    "webbase": SurrogateSpec("webbase", 334.0, 462.64, 201, 89.3, 1.0),
}

#: Paper relation sizes, used to scale the four datasets proportionally.
_PAPER_SIZES: dict[str, int] = {
    "flickr": 3_550_000,
    "orkut": 1_850_000,
    "twitter": 370_000,
    "webbase": 169_000,
}


def _draw_cardinalities(spec: SurrogateSpec, size: int, rng: np.random.Generator, domain: int) -> np.ndarray:
    mu, sigma = spec.lognormal_params()
    excess = rng.lognormal(mu, sigma, size=size)
    cards = spec.min_cardinality + np.floor(excess).astype(np.int64)
    return np.clip(cards, spec.min_cardinality, max(spec.min_cardinality, domain))


def make_surrogate(name: str, size: int, seed: int = 0) -> Relation:
    """Generate the ``name`` surrogate with ``size`` tuples.

    The domain scales with ``size`` through the dataset's published
    ``d / |R|`` ratio (with a floor so tiny test datasets stay non-trivial);
    element popularity is Zipf with the dataset's skew.

    Raises:
        DataGenError: For an unknown dataset name or non-positive size.
    """
    spec = SURROGATE_SPECS.get(name.strip().lower())
    if spec is None:
        raise DataGenError(
            f"unknown dataset {name!r}; available: {', '.join(SURROGATE_SPECS)}"
        )
    if size <= 0:
        raise DataGenError(f"size must be positive, got {size}")
    rng = np.random.default_rng(seed)
    domain = max(int(round(spec.domain_per_tuple * size)), 4 * spec.min_cardinality, 64)
    cards = _draw_cardinalities(spec, size, rng, domain)
    element_dist = ZipfDist(domain, s=spec.element_skew)
    records = []
    for i, k in enumerate(cards):
        k = int(k)
        if k >= domain:
            records.append(SetRecord(i, frozenset(range(domain))))
            continue
        chosen: set[int] = set()
        attempts = 0
        while len(chosen) < k:
            batch = element_dist.sample(rng, max(2 * (k - len(chosen)), 8))
            chosen.update(int(x) for x in batch)
            attempts += 1
            if attempts > 64:
                remaining = np.setdiff1d(np.arange(domain), np.fromiter(chosen, dtype=np.int64))
                chosen.update(
                    int(x) for x in rng.choice(remaining, size=k - len(chosen), replace=False)
                )
                break
        if len(chosen) > k:
            kept = rng.choice(np.fromiter(sorted(chosen), dtype=np.int64), size=k, replace=False)
            chosen = {int(x) for x in kept}
        records.append(SetRecord(i, frozenset(chosen)))
    return Relation(records, name=f"{spec.name}-surrogate")


def scaled_sizes(base: int) -> dict[str, int]:
    """Per-dataset sizes preserving the paper's relative relation sizes.

    ``base`` is the size of the *smallest* dataset (webbase); the others
    scale by their Table III ratios.
    """
    smallest = _PAPER_SIZES["webbase"]
    return {
        name: max(1, round(base * paper_size / smallest))
        for name, paper_size in _PAPER_SIZES.items()
    }


def flickr_surrogate(size: int = 3000, seed: int = 0) -> Relation:
    """Low-cardinality photo/tag surrogate (paper: avg c 5.36, median 4)."""
    return make_surrogate("flickr", size, seed)


def orkut_surrogate(size: int = 1500, seed: int = 0) -> Relation:
    """Low-to-medium community-membership surrogate (avg c 57, median 22)."""
    return make_surrogate("orkut", size, seed)


def twitter_surrogate(size: int = 400, seed: int = 0, from_graph: bool = False) -> Relation:
    """Medium-cardinality, tiny-domain bisimulation surrogate.

    With ``from_graph=True`` the relation is *derived* — a synthetic
    power-law digraph is 5-bisimulated and encoded exactly as the paper's
    source pipeline [28]; otherwise the published shape is sampled
    directly (deterministic size, much faster).
    """
    if from_graph:
        graph = random_power_law_digraph(max(4 * size, 64), avg_out_degree=8.0, seed=seed)
        relation, _ = kbisim_relation(graph, k=5)
        pruned = relation.filter_cardinality(minimum=30)
        return pruned if len(pruned) > 0 else relation
    return make_surrogate("twitter", size, seed)


def webbase_surrogate(size: int = 170, seed: int = 0) -> Relation:
    """High-cardinality web-graph outlink surrogate (avg c 463, c > 200)."""
    return make_surrogate("webbase", size, seed)
