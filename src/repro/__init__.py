"""repro — trie-based set-containment joins (Luo et al., ICDE 2015).

A complete, from-scratch reproduction of *"Efficient and scalable
trie-based algorithms for computing set containment relations"*:

* **PTSJ** — Patricia Trie-based Signature Join (:class:`repro.PTSJ`);
* **PRETTI+** — Patricia-trie PRETTI (:class:`repro.PRETTIPlus`);
* baselines **SHJ**, **PRETTI**, **TSJ** and a nested-loop oracle;
* extensions: superset, set-equality and Hamming set-similarity joins on
  the same Patricia index, plus a disk-based partitioned join;
* a synthetic/surrogate data generator and the full benchmark harness for
  every table and figure of the paper's evaluation.

Quickstart::

    from repro import Relation, set_containment_join

    profiles = Relation.from_sets([{1, 3, 5, 6}, {0, 2, 7}, {0, 2, 3}])
    prefs = Relation.from_sets([{1, 3}, {1, 5, 6}, {0, 2, 7}])
    result = set_containment_join(profiles, prefs)   # picks PTSJ or PRETTI+
    print(sorted(result.pairs))                      # [(0, 0), (0, 1), (1, 2)]

Probing the same indexed relation repeatedly?  Build once, probe many::

    from repro import prepare_index

    index = prepare_index(prefs)          # one build
    result = index.probe_many(profiles)   # reuses it; index.probe(rec) streams

Wondering *why* a join ran the way it did?  Every join is planned first;
the plan is explainable and serializable::

    from repro import plan

    query_plan = plan(profiles, prefs)
    print(query_plan.explain())           # EXPLAIN-style decision tree
"""

from repro.baselines import SHJ, TSJ, NestedLoopJoin, PRETTI
from repro.core import (
    ALGORITHMS,
    ValidationReport,
    verify_join_result,
    PTSJ,
    JoinResult,
    JoinStats,
    PreparedIndex,
    PRETTIPlus,
    SetContainmentJoin,
    available_algorithms,
    choose_algorithm_name,
    make_algorithm,
    prepare_index,
    set_containment_join,
)
from repro.errors import (
    AlgorithmError,
    DataGenError,
    ExternalMemoryError,
    InjectedFaultError,
    JoinTimeoutError,
    RelationError,
    ReproError,
    RetryExhaustedError,
    SanitizerError,
    SignatureError,
    TrieError,
    WorkerError,
)
from repro.core.registry import cost_profile, execute_plan, plan
from repro.errors import PlanError
from repro.obs import MetricsRegistry, NullTracer, Tracer, current_tracer, use
from repro.planner import Plan, Planner, Workload
from repro.relations import Relation, RelationStats, SetRecord, Universe, compute_stats

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # data model
    "Relation",
    "SetRecord",
    "Universe",
    "RelationStats",
    "compute_stats",
    # algorithms
    "PTSJ",
    "PRETTIPlus",
    "SHJ",
    "PRETTI",
    "TSJ",
    "NestedLoopJoin",
    "SetContainmentJoin",
    "JoinResult",
    "JoinStats",
    "PreparedIndex",
    # registry
    "ALGORITHMS",
    "available_algorithms",
    "choose_algorithm_name",
    "make_algorithm",
    "prepare_index",
    "set_containment_join",
    "ValidationReport",
    "verify_join_result",
    # planner
    "Planner",
    "Plan",
    "Workload",
    "plan",
    "execute_plan",
    "cost_profile",
    # observability
    "Tracer",
    "NullTracer",
    "MetricsRegistry",
    "current_tracer",
    "use",
    # errors
    "ReproError",
    "RelationError",
    "SignatureError",
    "TrieError",
    "DataGenError",
    "ExternalMemoryError",
    "AlgorithmError",
    "WorkerError",
    "JoinTimeoutError",
    "RetryExhaustedError",
    "InjectedFaultError",
    "PlanError",
    "SanitizerError",
]
