"""Multi-core partition-parallel join (paper Sec. VI future work).

"Extending the algorithms to nontrivial multi-core ... settings will be
essential when relation size goes beyond millions of tuples."

This module provides the straightforward first step on top of the
prepared-index split: the index over ``S`` is built **exactly once** in
the parent, the probe relation ``R`` is split into chunks, and each
worker process probes the shared index with its chunks.  Output equals
the sequential join's because ``R ⋈⊇ S = ⋃_i (R_i ⋈⊇ S)``.

Index sharing is zero-copy on POSIX: :class:`~concurrent.futures.
ProcessPoolExecutor` forks, so workers inherit the parent's prepared
index through copy-on-write pages via the pool *initializer*.  Under a
``spawn`` start method (e.g. macOS/Windows defaults) the same initializer
path still works, but the index is pickled to each worker once — still
one *build*, never one build per worker or per chunk.

:class:`ParallelJoin` is the fail-fast executor: any worker failure
aborts the join.  :class:`repro.exec.resilient.ResilientParallelJoin`
layers per-chunk retry, timeouts and an in-process fallback on top of
the same chunking, and :class:`repro.exec.sharded.ShardedJoin`
partitions the *index side* instead of sharing it — see
``docs/EXECUTORS.md`` for the full matrix.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Any, ClassVar

from repro.core.base import JoinResult, JoinStats, PreparedIndex
from repro.core.options import validate_chunks, validate_start_method, validate_workers
from repro.exec.merge import merge_stats
from repro.exec.protocol import BaseExecutor
from repro.external.partition import partition_relation
from repro.governance.policy import GovernancePolicy, current_policy, governor, set_policy
from repro.obs.tracer import current_tracer
from repro.relations.relation import Relation

__all__ = ["ParallelJoin", "parallel_join", "record_chunk_span", "merge_chunk_stats"]

#: Backwards-compatible alias: chunk merging is now the shared
#: :func:`repro.exec.merge.merge_stats` fold (identical numbers on the
#: chunk path — chunks report zero build time and the shared index's own
#: signature bits, so the unified fold's extra fields are no-ops here).
merge_chunk_stats = merge_stats

#: The prepared index shared with worker processes.  Set once per worker by
#: :func:`_init_worker` (inherited for free when the pool forks; transferred
#: by pickle exactly once per worker under ``spawn``).
_WORKER_INDEX: PreparedIndex | None = None


def _init_worker(index: PreparedIndex, policy: GovernancePolicy | None = None) -> None:
    """Pool initializer: bind the parent's prepared index in this worker.

    The parent's governance policy (deadline/cancel token) travels the
    same way, so worker probe loops poll the *parent's* bounds — the
    deadline is an absolute monotonic instant (system-wide on POSIX) and
    the token can be flag-file backed, so both read identically here.
    """
    global _WORKER_INDEX
    _WORKER_INDEX = index
    set_policy(policy)


def _probe_chunk(r_chunk: Relation) -> tuple[list[tuple[int, int]], JoinStats]:
    """Worker entry point (module-level so it pickles): probe, never build."""
    assert _WORKER_INDEX is not None, "worker pool initializer did not run"
    result = _WORKER_INDEX.probe_many(r_chunk)
    return result.pairs, result.stats


def record_chunk_span(tracer, chunk_stats: JoinStats) -> None:
    """Fold one worker-measured chunk probe into the parent's span tree.

    Workers run with their own (null) tracer; their probe wall time comes
    home inside the chunk's :class:`JoinStats`.  Recording it — rather
    than re-timing with a context manager — merges every chunk into one
    ``probe`` span whose ``seconds`` equals the *summed* per-chunk probe
    time (what ``stats.probe_seconds`` reports), not the smaller parallel
    wall time, so the span tree and the stats stay consistent.
    """
    if not tracer.enabled:
        return
    tracer.record(
        "probe",
        chunk_stats.probe_seconds,
        {
            "chunks": 1,
            "pairs": chunk_stats.pairs,
            "candidates": chunk_stats.candidates,
            "verifications": chunk_stats.verifications,
            "node_visits": chunk_stats.node_visits,
            "intersections": chunk_stats.intersections,
        },
    )
    tracer.observe("chunk_probe_seconds", chunk_stats.probe_seconds)


class ParallelJoin(BaseExecutor):
    """Partition-parallel set-containment join over worker processes.

    Args:
        algorithm: Registry name of the in-memory algorithm whose prepared
            index is shared by all workers.
        workers: Worker process count (>= 1).  ``workers=1`` probes the
            chunks in-process (no pool), which keeps tests and small
            inputs cheap — the index is still prepared exactly once.
        chunks: Number of R-chunks; defaults to ``workers``.
        start_method: Multiprocessing start method for the pool
            (``"fork"``, ``"spawn"``, ``"forkserver"``); ``None`` uses the
            platform default.
        **algorithm_kwargs: Forwarded to the algorithm factory.

    Raises:
        AlgorithmError: On a non-positive worker or chunk count, or an
            unknown start method.
    """

    name: ClassVar[str] = "parallel"

    def __init__(
        self,
        algorithm: str = "ptsj",
        workers: int = 2,
        chunks: int | None = None,
        start_method: str | None = None,
        **algorithm_kwargs,
    ) -> None:
        validate_workers(workers)
        validate_chunks(chunks)
        validate_start_method(start_method)
        super().__init__(algorithm=algorithm, **algorithm_kwargs)
        self.workers = workers
        self.chunks = chunks or workers
        self.start_method = start_method

    def _describe_options(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "chunks": self.chunks,
            "start_method": self.start_method,
        }

    def _make_pool(self, index: PreparedIndex) -> ProcessPoolExecutor:
        """Create the worker pool, every worker bound to ``index``."""
        context = (
            multiprocessing.get_context(self.start_method)
            if self.start_method is not None
            else None
        )
        policy = current_policy()
        if policy is not None:
            policy = policy.worker_policy()
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(index, policy),
        )

    def _partition(self, r: Relation, stats: JoinStats) -> list[Relation]:
        """Split ``r`` into the configured number of chunks."""
        chunk_size = max(1, -(-len(r) // self.chunks)) if len(r) else 1
        r_chunks = partition_relation(r, chunk_size)
        stats.extras["workers"] = self.workers
        stats.extras["chunks"] = len(r_chunks)
        return r_chunks

    def join(self, r: Relation, s: Relation) -> JoinResult:
        """Compute ``R ⋈⊇ S``: one index build, parallel chunk probes."""
        stats = JoinStats(algorithm=f"parallel-{self.algorithm}")
        r_chunks = self._partition(r, stats)

        index = self.prepare(s, probe_hint=r)
        stats.build_seconds = index.build_seconds
        stats.signature_bits = index.signature_bits
        stats.index_nodes = index.index_nodes
        stats.extras["index_builds"] = 1

        pairs: list[tuple[int, int]] = []
        tracer = current_tracer()
        if self.workers == 1:
            # In-process probes run under the active tracer directly, so
            # probe_many opens the spans itself — no explicit recording.
            outcomes = [
                (res.pairs, res.stats)
                for res in (index.probe_many(chunk) for chunk in r_chunks)
            ]
        else:
            gov = governor("probe", stats)
            with self._make_pool(index) as pool:
                outcomes = []
                for outcome in pool.map(_probe_chunk, r_chunks):
                    outcomes.append(outcome)
                    # Fail-fast executor: the parent re-checks the bounds
                    # between chunk completions, so a breach that never
                    # reaches a worker (e.g. cancel without a flag file)
                    # still stops the join within one chunk.
                    if gov is not None:
                        gov.poll()
            for _, chunk_stats in outcomes:
                record_chunk_span(tracer, chunk_stats)
        for chunk_pairs, chunk_stats in outcomes:
            pairs.extend(chunk_pairs)
            merge_stats(stats, chunk_stats)
        return JoinResult(pairs, stats)


def parallel_join(
    r: Relation,
    s: Relation,
    algorithm: str = "ptsj",
    workers: int = 2,
    **algorithm_kwargs,
) -> JoinResult:
    """One-shot helper around :class:`ParallelJoin`."""
    return ParallelJoin(algorithm=algorithm, workers=workers, **algorithm_kwargs).join(r, s)
