"""The in-process executor: the classic single-process join path.

``InlineJoin`` is what ``execute_plan`` runs for ``executor="inline"``
plans — byte-for-byte the historical
``make_algorithm(name, **kwargs).join(r, s)`` call, so pinned plans keep
reproducing explicit-algorithm runs exactly (same
:class:`~repro.core.base.JoinStats`, same pair order).  Formalising it as
an :class:`~repro.exec.protocol.Executor` lets the plan dispatcher treat
all five executors uniformly instead of special-casing the in-process
path.
"""

from __future__ import annotations

from typing import Any, ClassVar

from repro.core.base import JoinResult
from repro.exec.protocol import BaseExecutor
from repro.relations.relation import Relation

__all__ = ["InlineJoin"]


class InlineJoin(BaseExecutor):
    """Single-process set-containment join (no pool, no spill).

    Args:
        algorithm: Registry name of the in-memory algorithm.
        **algorithm_kwargs: Forwarded to the algorithm factory.
    """

    name: ClassVar[str] = "inline"

    def join(self, r: Relation, s: Relation) -> JoinResult:
        """Run the classic one-shot join: prepare + one ``probe_many``."""
        from repro.core.registry import make_algorithm

        return make_algorithm(self.algorithm, **self.algorithm_kwargs).join(r, s)

    def _describe_options(self) -> dict[str, Any]:
        return {}
