"""The in-process executor: the classic single-process join path.

``InlineJoin`` is what ``execute_plan`` runs for ``executor="inline"``
plans — byte-for-byte the historical
``make_algorithm(name, **kwargs).join(r, s)`` call, so pinned plans keep
reproducing explicit-algorithm runs exactly (same
:class:`~repro.core.base.JoinStats`, same pair order).  Formalising it as
an :class:`~repro.exec.protocol.Executor` lets the plan dispatcher treat
all five executors uniformly instead of special-casing the in-process
path.
"""

from __future__ import annotations

from typing import Any, ClassVar

from repro.core.base import JoinResult
from repro.errors import AlgorithmError
from repro.exec.protocol import BaseExecutor
from repro.relations.relation import Relation

__all__ = ["InlineJoin"]

#: Bounds only the pooled executors can honor.  Accepting them here would
#: silently drop a user's budget whenever a plan falls back to the inline
#: path — the failure mode this guard turns into a loud error.
_POOLED_ONLY_OPTIONS = (
    "timeout_seconds",
    "retries",
    "retry_policy",
    "fallback",
    "validate_results",
)


class InlineJoin(BaseExecutor):
    """Single-process set-containment join (no pool, no spill).

    Args:
        algorithm: Registry name of the in-memory algorithm.
        **algorithm_kwargs: Forwarded to the algorithm factory.

    Raises:
        AlgorithmError: If a pooled-executor resilience option
            (``timeout_seconds``, ``retries``, ...) is passed: the inline
            path cannot enforce per-chunk bounds, and dropping them
            silently would lose the caller's budget.  Whole-join bounds
            belong in a :class:`~repro.governance.GovernancePolicy`
            (``deadline_seconds``), which the inline path *does* honor.
    """

    name: ClassVar[str] = "inline"

    def __init__(self, algorithm: str = "ptsj", **algorithm_kwargs) -> None:
        rejected = [key for key in _POOLED_ONLY_OPTIONS if key in algorithm_kwargs]
        if rejected:
            raise AlgorithmError(
                f"InlineJoin cannot honor {', '.join(sorted(rejected))}: "
                "per-chunk resilience options need a pooled executor "
                "(parallel/resilient/sharded); for a whole-join bound use "
                "deadline_seconds instead"
            )
        super().__init__(algorithm=algorithm, **algorithm_kwargs)

    def join(self, r: Relation, s: Relation) -> JoinResult:
        """Run the classic one-shot join: prepare + one ``probe_many``."""
        from repro.core.registry import make_algorithm

        return make_algorithm(self.algorithm, **self.algorithm_kwargs).join(r, s)

    def _describe_options(self) -> dict[str, Any]:
        return {}
