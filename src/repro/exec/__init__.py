"""Join executors: every way a set-containment join can run.

One package, one contract.  The :class:`~repro.exec.protocol.Executor`
protocol (``prepare`` / ``join`` / ``from_plan`` / ``describe``) is
implemented by all five executors:

==========  ============================================  =======================
name        class                                         scales by
==========  ============================================  =======================
inline      :class:`~repro.exec.inline.InlineJoin`        nothing (the baseline)
parallel    :class:`~repro.exec.parallel.ParallelJoin`    probe chunks, shared index
resilient   :class:`~repro.exec.resilient.\
ResilientParallelJoin`                                    probe chunks + recovery
disk        :class:`~repro.exec.disk.DiskPartitionedJoin` on-disk partitions
sharded     :class:`~repro.exec.sharded.ShardedJoin`      S-index shards + recovery
==========  ============================================  =======================

:func:`repro.planner.executor.execute_plan` dispatches through
:func:`executor_class` — one registry lookup, no per-class branches.
The pre-refactor import paths (``repro.future.parallel``,
``repro.future.resilient``, ``repro.external.disk_join``) remain as
deprecation shims re-exporting from here.  See ``docs/EXECUTORS.md``.
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.exec.protocol import BaseExecutor, Executor
from repro.exec.merge import ADDITIVE_FIELDS, STRUCTURAL_FIELDS, merge_stats
from repro.exec.inline import InlineJoin
from repro.exec.parallel import ParallelJoin, parallel_join, record_chunk_span
from repro.exec.resilient import (
    RESILIENCE_EXTRAS,
    ResilientParallelJoin,
    RetryPolicy,
    resilient_parallel_join,
)
from repro.exec.disk import DiskPartitionedJoin, disk_partitioned_join
from repro.exec.sharded import SHARD_EXTRAS, ShardedJoin, sharded_join

__all__ = [
    "Executor",
    "BaseExecutor",
    "EXECUTOR_CLASSES",
    "executor_class",
    "merge_stats",
    "ADDITIVE_FIELDS",
    "STRUCTURAL_FIELDS",
    "InlineJoin",
    "ParallelJoin",
    "parallel_join",
    "record_chunk_span",
    "ResilientParallelJoin",
    "RetryPolicy",
    "resilient_parallel_join",
    "RESILIENCE_EXTRAS",
    "DiskPartitionedJoin",
    "disk_partitioned_join",
    "ShardedJoin",
    "sharded_join",
    "SHARD_EXTRAS",
]

#: Plan-facing executor name -> implementing class (the dispatch table
#: ``execute_plan`` uses; keys match ``repro.planner.plan.EXECUTORS``).
EXECUTOR_CLASSES: dict[str, type[BaseExecutor]] = {
    cls.name: cls
    for cls in (InlineJoin, ParallelJoin, ResilientParallelJoin, DiskPartitionedJoin, ShardedJoin)
}


def executor_class(name: str) -> type[BaseExecutor]:
    """Resolve a plan-facing executor name to its implementing class.

    Raises:
        PlanError: For a name no executor registers.
    """
    try:
        return EXECUTOR_CLASSES[name]
    except KeyError:
        raise PlanError(
            f"unknown executor {name!r}; available: {sorted(EXECUTOR_CLASSES)}"
        ) from None
