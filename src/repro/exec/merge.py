"""The one way partial :class:`~repro.core.base.JoinStats` are merged.

Every partitioned executor decomposes a join into independent pieces —
probe chunks (parallel/resilient), partition pairs (disk), S-shards
(sharded) — and each piece comes home with its own stats.  Historically
the fold lived twice: ``merge_chunk_stats`` in the parallel executor and
``_accumulate`` in the disk join, with subtly different field coverage.
This module is now the single definition, used by all four partitioned
paths and property-tested for the algebra the decomposition relies on:

* the **additive** fields (``build_seconds``, ``probe_seconds``,
  ``candidates``, ``verifications``, ``node_visits``,
  ``intersections``) are summed — work done is work done, wherever it
  ran;
* the **structural** fields (``index_nodes``, ``signature_bits``) are
  maxed — they describe the largest index a piece probed, not an amount
  of work, so summing them would double-count one structure per piece.

Sum and max are associative and commutative, so folding pieces in *any*
order — or merging pre-merged sub-aggregates — yields identical totals
(``tests/test_merge_stats.py`` proves this with hypothesis).  That is
what makes the merged stats of a pooled run deterministic even though
piece *completion* order is not.

Probe-chunk merging stays exact under this unified fold: chunk stats
report zero build time (they come from ``probe_many`` on an
already-prepared index) and carry the shared index's own
``signature_bits``, so the added fields are no-ops on that path.
"""

from __future__ import annotations

from repro.core.base import JoinStats

__all__ = [
    "merge_stats",
    "ADDITIVE_FIELDS",
    "STRUCTURAL_FIELDS",
    "ADDITIVE_EXTRAS",
    "MARKER_EXTRAS",
]

#: JoinStats fields summed by :func:`merge_stats` (work accumulates).
ADDITIVE_FIELDS = (
    "build_seconds",
    "probe_seconds",
    "candidates",
    "verifications",
    "node_visits",
    "intersections",
)

#: JoinStats fields maxed by :func:`merge_stats` (structure, not work).
STRUCTURAL_FIELDS = ("index_nodes", "signature_bits")

#: Governance ``extras`` summed across pieces when present: bound checks
#: performed and chunks stranded by an abort accumulate like work.
ADDITIVE_EXTRAS = ("deadline_polls", "cancelled_chunks")

#: ``extras`` combined by ``max`` when present: a degradation marker
#: names the executor a piece was re-planned onto, and the kernel-backend
#: marker names the backend the pieces' shared index was packed with
#: (identical across pieces of one join).  Lexicographic max is
#: associative and commutative, so a partial (cancelled) shard set
#: merges to the same marker in any fold order.
MARKER_EXTRAS = ("degraded_to", "kernel_backend")


def merge_stats(total: JoinStats, part: JoinStats) -> JoinStats:
    """Fold one piece's stats into the join-level aggregate, in place.

    Args:
        total: The aggregate being built; mutated and returned (so the
            fold composes: ``reduce(merge_stats, parts, total)``).
        part: One independent piece's stats — a probe chunk, a disk
            partition pair, or an S-shard.  Never mutated.

    Returns:
        ``total``, for reduce-style chaining.

    ``pairs`` is deliberately not merged here: it is derived from the
    concatenated pair list by :class:`~repro.core.base.JoinResult`, which
    keeps the counter impossible to desynchronise from the output.
    ``extras`` are piece-shape-specific (chunk vs partition vs shard) and
    are maintained by each executor — with one exception: the governance
    extras (:data:`ADDITIVE_EXTRAS`, :data:`MARKER_EXTRAS`) mean the same
    thing on every path, so pieces that carry them merge here (summed and
    maxed respectively, both associative and commutative).
    """
    total.build_seconds += part.build_seconds
    total.probe_seconds += part.probe_seconds
    total.candidates += part.candidates
    total.verifications += part.verifications
    total.node_visits += part.node_visits
    total.intersections += part.intersections
    total.index_nodes = max(total.index_nodes, part.index_nodes)
    total.signature_bits = max(total.signature_bits, part.signature_bits)
    for key in ADDITIVE_EXTRAS:
        if key in part.extras:
            total.extras[key] = total.extras.get(key, 0) + part.extras[key]
    for key in MARKER_EXTRAS:
        if key in part.extras:
            seen = total.extras.get(key)
            value = part.extras[key]
            total.extras[key] = value if seen is None else max(seen, value)
    return total
