"""Fault-tolerant partition-parallel join: retry, timeout, fallback.

:class:`~repro.exec.parallel.ParallelJoin` is fail-fast: one crashed,
hung or lying worker aborts the whole join.  Because the prepared-index
split makes chunks independent (``R ⋈⊇ S = ⋃_i (R_i ⋈⊇ S)``), every
chunk can instead be retried, timed out and — as a last resort —
probed in-process against the parent's own copy of the index, so a join
*degrades* instead of failing.  :class:`ResilientParallelJoin` implements
exactly that:

* **Retry** — a failed chunk is resubmitted up to
  :attr:`RetryPolicy.max_attempts` times with deterministic (jitter-free)
  exponential backoff, so tests can assert exact schedules.
* **Timeout** — a chunk that exceeds ``timeout_seconds`` is abandoned
  (its worker may be hung) and completed via the in-process fallback;
  the hung worker is terminated at shutdown rather than awaited.
* **Worker death** — a worker that dies hard (segfault, ``os._exit``)
  breaks the whole :class:`~concurrent.futures.ProcessPoolExecutor`; the
  pool is re-created and every in-flight chunk resubmitted.
* **Corrupt results** — each chunk result is checked against the chunk's
  own tuple ids and the indexed relation's ids; a worker returning alien
  pairs is treated as failed and retried.
* **Fallback** — a chunk whose retries are exhausted is probed
  sequentially in the parent process, which holds a known-good copy of
  the index.  Only if *that* also fails does the join raise.

Degradation is observable: ``stats.extras`` always carries ``retries``,
``timeouts``, ``fallback_chunks``, ``pool_restarts`` and
``corrupt_chunks`` (all zero on a clean run), so callers and dashboards
can alert on silent degradation.  See ``docs/ROBUSTNESS.md`` for the
full semantics and :mod:`repro.testing.faults` for the deterministic
fault-injection harness that exercises every path above.  The same
:class:`RetryPolicy` ladder also guards shard loss in
:class:`repro.exec.sharded.ShardedJoin`.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable

from dataclasses import replace

from repro.core.base import JoinResult, JoinStats, PreparedIndex
from repro.core.options import validate_timeout_seconds
from repro.obs.clock import monotonic
from repro.errors import (
    AlgorithmError,
    BudgetExceededError,
    GovernanceError,
    JoinTimeoutError,
    RetryExhaustedError,
    WorkerError,
)
from repro.exec.merge import merge_stats
from repro.exec.parallel import (
    ParallelJoin,
    _probe_chunk,
    record_chunk_span,
)
from repro.governance.policy import current_policy, govern, governor
from repro.obs.tracer import current_tracer
from repro.relations.relation import Relation

__all__ = ["RetryPolicy", "ResilientParallelJoin", "resilient_parallel_join"]

#: Stats extras every resilient join reports (zero on a clean run).
RESILIENCE_EXTRAS = ("retries", "timeouts", "fallback_chunks", "pool_restarts", "corrupt_chunks")


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How often and how patiently a failed chunk is retried.

    The schedule is fully deterministic — exponential backoff with *no*
    jitter — so recovery tests can run without flaky timing assertions.
    Production deployments that need jitter can subclass and override
    :meth:`delay`.

    Attributes:
        max_attempts: Total attempts per chunk (first try included), >= 1.
        backoff_seconds: Delay before the first retry; 0 disables sleeping.
        backoff_multiplier: Factor applied per further retry.
        backoff_cap_seconds: Upper bound on any single delay.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.0
    backoff_multiplier: float = 2.0
    backoff_cap_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise AlgorithmError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_seconds < 0 or self.backoff_cap_seconds < 0:
            raise AlgorithmError("backoff delays must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise AlgorithmError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )

    def delay(self, retry: int) -> float:
        """Seconds to wait before retry number ``retry`` (1-based)."""
        if retry < 1 or self.backoff_seconds == 0.0:
            return 0.0
        raw = self.backoff_seconds * self.backoff_multiplier ** (retry - 1)
        return min(raw, self.backoff_cap_seconds)

    def schedule(self) -> list[float]:
        """Every retry delay this policy can produce, in order."""
        return [self.delay(i) for i in range(1, self.max_attempts)]


class _ChunkTask:
    """Book-keeping for one chunk's journey through the executor."""

    __slots__ = ("idx", "chunk", "attempts", "deadline")

    def __init__(self, idx: int, chunk: Relation) -> None:
        self.idx = idx
        self.chunk = chunk
        self.attempts = 0
        self.deadline: float | None = None


class ResilientParallelJoin(ParallelJoin):
    """Partition-parallel join that survives worker failures.

    Args:
        algorithm: Registry name of the in-memory algorithm whose prepared
            index is shared by all workers.
        workers: Worker process count (>= 1).  ``workers=1`` probes the
            chunks in-process; retry and fallback still apply, but
            ``timeout_seconds`` does not (in-process probes cannot be
            pre-empted).
        chunks: Number of R-chunks; defaults to ``workers``.
        start_method: Multiprocessing start method for the pool.
        retry_policy: Retry schedule per chunk (default: 3 attempts,
            no backoff).
        timeout_seconds: Per-chunk wall-clock budget; an over-budget chunk
            is abandoned and completed via the in-process fallback.
            ``None`` disables timeouts.
        fallback: When True (default), a chunk whose retries are exhausted
            is probed sequentially in the parent instead of raising
            :class:`~repro.errors.RetryExhaustedError`.
        validate_results: When True (default), chunk results are checked
            for alien tuple ids; corrupt results are retried.
        index_transform: Optional hook applied to the prepared index
            before it is shared with workers — the seam the
            :mod:`repro.testing.faults` harness uses to inject failures.
        **algorithm_kwargs: Forwarded to the algorithm factory.

    Raises:
        AlgorithmError: On invalid configuration.
        RetryExhaustedError: When a chunk fails every attempt and
            ``fallback`` is disabled.
        JoinTimeoutError: When a chunk exceeds ``timeout_seconds`` and
            ``fallback`` is disabled.
    """

    name = "resilient"

    def __init__(
        self,
        algorithm: str = "ptsj",
        workers: int = 2,
        chunks: int | None = None,
        start_method: str | None = None,
        retry_policy: RetryPolicy | None = None,
        timeout_seconds: float | None = None,
        fallback: bool = True,
        validate_results: bool = True,
        index_transform: Callable[[PreparedIndex], PreparedIndex] | None = None,
        **algorithm_kwargs,
    ) -> None:
        super().__init__(
            algorithm=algorithm,
            workers=workers,
            chunks=chunks,
            start_method=start_method,
            **algorithm_kwargs,
        )
        validate_timeout_seconds(timeout_seconds)
        self.retry_policy = retry_policy or RetryPolicy()
        self.timeout_seconds = timeout_seconds
        self.fallback = fallback
        self.validate_results = validate_results
        self.index_transform = index_transform

    def _describe_options(self) -> dict[str, Any]:
        options = super()._describe_options()
        options.update(
            {
                "max_attempts": self.retry_policy.max_attempts,
                "timeout_seconds": self.timeout_seconds,
                "fallback": self.fallback,
                "validate_results": self.validate_results,
            }
        )
        return options

    # ------------------------------------------------------------------
    # Join driver
    # ------------------------------------------------------------------
    def join(self, r: Relation, s: Relation) -> JoinResult:
        """Compute ``R ⋈⊇ S`` with per-chunk retry/timeout/fallback."""
        stats = JoinStats(algorithm=f"resilient-{self.algorithm}")
        r_chunks = self._partition(r, stats)

        # ``pristine`` never leaves the parent: it is the known-good copy
        # the in-process fallback probes.  Workers get the (possibly
        # fault-wrapped) ``index``.
        try:
            pristine = self.prepare(s, probe_hint=r)
        except BudgetExceededError as breach:
            # The one governance error the ladder recovers from: a build
            # that cannot fit in memory is re-planned onto a partitioned
            # executor instead of failing the join (docs/ROBUSTNESS.md).
            return self._degrade(r, s, breach, stats)
        index = pristine
        if self.index_transform is not None:
            index = self.index_transform(pristine)
        stats.build_seconds = pristine.build_seconds
        stats.signature_bits = pristine.signature_bits
        stats.index_nodes = pristine.index_nodes
        stats.extras["index_builds"] = 1
        for key in RESILIENCE_EXTRAS:
            stats.extras[key] = 0

        s_ids = frozenset(rec.rid for rec in pristine.relation)
        tasks = [_ChunkTask(i, chunk) for i, chunk in enumerate(r_chunks)]
        if self.workers == 1:
            outcomes = [
                self._run_chunk_inline(task, index, pristine, s_ids, stats) for task in tasks
            ]
        else:
            outcomes = self._run_chunks_pooled(tasks, index, pristine, s_ids, stats)

        pairs: list[tuple[int, int]] = []
        for chunk_pairs, chunk_stats in outcomes:
            pairs.extend(chunk_pairs)
            merge_stats(stats, chunk_stats)
        return JoinResult(pairs, stats)

    # ------------------------------------------------------------------
    # Memory-pressure degradation
    # ------------------------------------------------------------------
    def _degrade(
        self, r: Relation, s: Relation, breach: BudgetExceededError, stats: JoinStats
    ) -> JoinResult:
        """Re-plan a budget-breached build onto a partitioned executor.

        The breach carries partial accounting (bytes used, records
        indexed), which sizes the degraded run: with workers to spare the
        index side is sharded so each shard's build fits the budget;
        single-worker joins degrade to the disk executor with a
        ``max_tuples`` derived the same way.  The degraded run keeps the
        deadline and cancel token but drops the byte budget — its
        partitions were sized *from* the budget, and re-tripping inside a
        shard would turn recovery into a loop.
        """
        per_record = breach.used_bytes / max(breach.records_indexed, 1)
        tracer = current_tracer()
        policy = current_policy()
        with tracer.span("governance"):
            if tracer.enabled:
                tracer.count("budget_breaches")
            if self.workers > 1:
                from repro.exec.sharded import ShardedJoin

                target = "sharded"
                need = (len(s) * per_record) / max(breach.budget_bytes, 1)
                shards = max(self.workers, 2, int(need) + (1 if need > int(need) else 0))
                executor: ParallelJoin | Any = ShardedJoin(
                    algorithm=self.algorithm,
                    workers=self.workers,
                    shards=shards,
                    start_method=self.start_method,
                    retry_policy=self.retry_policy,
                    timeout_seconds=self.timeout_seconds,
                    fallback=self.fallback,
                    validate_results=self.validate_results,
                    **self.algorithm_kwargs,
                )
            else:
                from repro.exec.disk import DiskPartitionedJoin

                target = "disk"
                max_tuples = max(1, int(breach.budget_bytes / max(per_record, 1.0)))
                executor = DiskPartitionedJoin(
                    algorithm=self.algorithm,
                    max_tuples=max_tuples,
                    **self.algorithm_kwargs,
                )
            degraded_policy = (
                replace(policy, memory_budget_bytes=None) if policy is not None else None
            )
            with govern(degraded_policy):
                result = executor.join(r, s)
        merged = result.stats
        merged.extras["degraded_to"] = target
        merged.extras["budget_breach_bytes"] = breach.used_bytes
        merged.extras.setdefault("deadline_polls", 0)
        merged.extras["deadline_polls"] += stats.extras.get("deadline_polls", 0)
        return JoinResult(result.pairs, merged)

    # ------------------------------------------------------------------
    # In-process execution (workers == 1)
    # ------------------------------------------------------------------
    def _run_chunk_inline(
        self,
        task: _ChunkTask,
        index: PreparedIndex,
        pristine: PreparedIndex,
        s_ids: frozenset[int],
        stats: JoinStats,
    ) -> tuple[list[tuple[int, int]], JoinStats]:
        """Probe one chunk in-process, retrying per the policy."""
        last_error: Exception | None = None
        while task.attempts < self.retry_policy.max_attempts:
            task.attempts += 1
            if task.attempts > 1:
                stats.extras["retries"] += 1
                delay = self.retry_policy.delay(task.attempts - 1)
                current_tracer().record("retry", delay, {"retries": 1})
                time.sleep(delay)
            try:
                result = index.probe_many(task.chunk)
                self._check_result(task, result.pairs, s_ids, stats)
                return result.pairs, result.stats
            except GovernanceError:
                # Deadline/cancel/budget bounds are terminal by design:
                # retrying a chunk cannot buy back elapsed wall time.
                raise
            except Exception as exc:  # noqa: BLE001 - any worker fault is retryable
                last_error = exc
        return self._exhausted(task, pristine, stats, last_error)

    # ------------------------------------------------------------------
    # Pooled execution (workers > 1)
    # ------------------------------------------------------------------
    def _run_chunks_pooled(
        self,
        tasks: list[_ChunkTask],
        index: PreparedIndex,
        pristine: PreparedIndex,
        s_ids: frozenset[int],
        stats: JoinStats,
    ) -> list[tuple[list[tuple[int, int]], JoinStats]]:
        """Drive all chunks through a worker pool, recovering failures."""
        results: list[tuple[list[tuple[int, int]], JoinStats] | None] = [None] * len(tasks)
        pool = self._make_pool(index)
        pending: dict[Future, _ChunkTask] = {}
        abandoned = False
        completed = False
        gov = governor("probe", stats)
        try:
            for task in tasks:
                self._submit(pool, task, pending)
            while pending:
                # The parent re-checks the bounds once per scheduling round:
                # even if every worker is wedged (so no chunk ever reports a
                # governance error itself), _wait_round's bounded sleep plus
                # this poll stops the join within one poll interval.
                if gov is not None:
                    gov.poll()
                done = self._wait_round(pending)
                pool_broken = False
                for future in done:
                    task = pending.pop(future)
                    try:
                        chunk_pairs, chunk_stats = future.result()
                        self._check_result(task, chunk_pairs, s_ids, stats)
                        record_chunk_span(current_tracer(), chunk_stats)
                        results[task.idx] = (chunk_pairs, chunk_stats)
                        continue
                    except BrokenProcessPool:
                        pool_broken = True
                        retry_now = False
                    except GovernanceError:
                        # A worker hit the deadline/cancel bound: terminal,
                        # never retried, never completed via fallback.
                        raise
                    except Exception as exc:  # noqa: BLE001 - retryable worker fault
                        last_error = exc
                        retry_now = True
                    if retry_now:
                        if task.attempts < self.retry_policy.max_attempts:
                            stats.extras["retries"] += 1
                            delay = self.retry_policy.delay(task.attempts)
                            current_tracer().record("retry", delay, {"retries": 1})
                            time.sleep(delay)
                            self._submit(pool, task, pending)
                        else:
                            results[task.idx] = self._exhausted(task, pristine, stats, last_error)
                    else:
                        # Pool broke under this chunk: resubmission waits for
                        # the pool restart below.
                        pending[future] = task
                if pool_broken:
                    pool = self._restart_pool(pool, index, pristine, pending, results, stats)
                abandoned |= self._expire_overdue(pending, pristine, stats, results)
            completed = True
        except GovernanceError:
            # Record how many chunks the abort stranded before the finally
            # block force-terminates their workers.  tracer.record survives
            # the raise, so the span tree stays balanced and still shows
            # the abort.
            cancelled = sum(1 for outcome in results if outcome is None)
            stats.extras["cancelled_chunks"] = (
                stats.extras.get("cancelled_chunks", 0) + cancelled
            )
            current_tracer().record("governance", 0.0, {"cancelled_chunks": cancelled})
            raise
        finally:
            # An abnormal exit may leave hung workers behind; terminate
            # them rather than letting shutdown await a process that will
            # never finish.
            self._shutdown_pool(pool, force=abandoned or not completed)
        assert all(outcome is not None for outcome in results)
        return results  # type: ignore[return-value]

    def _submit(
        self, pool: ProcessPoolExecutor, task: _ChunkTask, pending: dict[Future, _ChunkTask]
    ) -> None:
        """Submit one attempt for ``task`` and start its timeout clock."""
        task.attempts += 1
        future = pool.submit(_probe_chunk, task.chunk)
        if self.timeout_seconds is not None:
            task.deadline = monotonic() + self.timeout_seconds
        pending[future] = task

    def _wait_round(self, pending: dict[Future, _ChunkTask]) -> set[Future]:
        """Block until a future completes or the nearest bound passes.

        The wait is additionally capped by the governance policy so the
        blocked parent wakes to poll: at the join deadline's remaining
        time, and at 50ms whenever a cancel token is armed (a token has
        no absolute instant to sleep until).
        """
        wait_timeout: float | None = None
        if self.timeout_seconds is not None:
            nearest = min(task.deadline for task in pending.values() if task.deadline)
            wait_timeout = max(0.0, nearest - monotonic())
        policy = current_policy()
        if policy is not None:
            if policy.cancel is not None:
                wait_timeout = 0.05 if wait_timeout is None else min(wait_timeout, 0.05)
            if policy.deadline is not None:
                remaining = max(0.0, policy.deadline.remaining())
                wait_timeout = (
                    remaining if wait_timeout is None else min(wait_timeout, remaining)
                )
        done, _ = wait(set(pending), timeout=wait_timeout, return_when=FIRST_COMPLETED)
        return done

    def _restart_pool(
        self,
        pool: ProcessPoolExecutor,
        index: PreparedIndex,
        pristine: PreparedIndex,
        pending: dict[Future, _ChunkTask],
        results: list,
        stats: JoinStats,
    ) -> ProcessPoolExecutor:
        """Replace a broken pool and resubmit every in-flight chunk."""
        stats.extras["pool_restarts"] += 1
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("pool_restarts")
        stranded = list(pending.values())
        pending.clear()
        pool.shutdown(wait=False, cancel_futures=True)
        pool = self._make_pool(index)
        for task in stranded:
            if task.attempts < self.retry_policy.max_attempts:
                stats.extras["retries"] += 1
                delay = self.retry_policy.delay(task.attempts)
                tracer.record("retry", delay, {"retries": 1})
                time.sleep(delay)
                self._submit(pool, task, pending)
            else:
                results[task.idx] = self._exhausted(
                    task, pristine, stats,
                    WorkerError(f"worker died while probing chunk {task.idx}"),
                )
        return pool

    def _expire_overdue(
        self,
        pending: dict[Future, _ChunkTask],
        pristine: PreparedIndex,
        stats: JoinStats,
        results: list,
    ) -> bool:
        """Abandon chunks past their deadline; complete them in-process.

        The worker serving an overdue chunk may be hung, and
        :class:`~concurrent.futures.ProcessPoolExecutor` cannot cancel a
        *running* task — so the future is dropped (its eventual result,
        if any, is discarded) and the chunk is probed in the parent.
        Returns True when anything was abandoned, so shutdown knows to
        terminate stragglers instead of awaiting them.
        """
        if self.timeout_seconds is None:
            return False
        now = monotonic()
        overdue = [
            future
            for future, task in pending.items()
            if not future.done() and task.deadline is not None and task.deadline <= now
        ]
        abandoned = False
        for future in overdue:
            task = pending.pop(future)
            if future.cancel():
                # Never started: the pool is saturated, not hung; retry the
                # chunk in-process anyway — its budget is spent.
                pass
            else:
                abandoned = True
            stats.extras["timeouts"] += 1
            current_tracer().record("timeout", 0.0, {"timeouts": 1})
            if not self.fallback:
                raise JoinTimeoutError(
                    f"chunk {task.idx} exceeded its {self.timeout_seconds}s budget "
                    f"on attempt {task.attempts} and fallback is disabled"
                )
            results[task.idx] = self._fallback(task, pristine, stats)
        return abandoned

    # ------------------------------------------------------------------
    # Last resorts
    # ------------------------------------------------------------------
    def _exhausted(
        self,
        task: _ChunkTask,
        pristine: PreparedIndex,
        stats: JoinStats,
        last_error: Exception | None,
    ) -> tuple[list[tuple[int, int]], JoinStats]:
        """Retries used up: fall back in-process or raise."""
        if not self.fallback:
            raise RetryExhaustedError(
                f"chunk {task.idx} failed all {task.attempts} attempts: {last_error}",
                attempts=task.attempts,
            ) from last_error
        return self._fallback(task, pristine, stats)

    def _fallback(
        self, task: _ChunkTask, pristine: PreparedIndex, stats: JoinStats
    ) -> tuple[list[tuple[int, int]], JoinStats]:
        """Probe a chunk sequentially in the parent, on the pristine index.

        The fallback deliberately bypasses ``index_transform``: whatever
        wrapper was shipped to the workers, the parent's untouched copy is
        the ground truth of last resort.  The probe itself runs in-process
        under the active tracer (so it opens the ``probe`` span directly);
        a zero-duration ``fallback`` marker span carries the count without
        double-charging the probe time.
        """
        stats.extras["fallback_chunks"] += 1
        current_tracer().record("fallback", 0.0, {"fallback_chunks": 1})
        result = pristine.probe_many(task.chunk)
        return result.pairs, result.stats

    def _check_result(
        self,
        task: _ChunkTask,
        pairs: list[tuple[int, int]],
        s_ids: frozenset[int],
        stats: JoinStats,
    ) -> None:
        """Reject chunk output that references tuples the chunk never probed."""
        if not self.validate_results:
            return
        chunk_ids = frozenset(rec.rid for rec in task.chunk)
        for r_id, s_id in pairs:
            if r_id not in chunk_ids or s_id not in s_ids:
                stats.extras["corrupt_chunks"] += 1
                raise WorkerError(
                    f"chunk {task.idx} returned corrupt pair ({r_id}, {s_id}): "
                    "ids do not belong to the probed chunk / indexed relation"
                )

    @staticmethod
    def _shutdown_pool(pool: ProcessPoolExecutor, force: bool) -> None:
        """Shut the pool down; terminate workers when any were abandoned."""
        if force:
            for proc in list(getattr(pool, "_processes", {}).values()):
                proc.terminate()
            pool.shutdown(wait=False, cancel_futures=True)
        else:
            pool.shutdown(wait=True, cancel_futures=True)


def resilient_parallel_join(
    r: Relation,
    s: Relation,
    algorithm: str = "ptsj",
    workers: int = 2,
    **kwargs,
) -> JoinResult:
    """One-shot helper around :class:`ResilientParallelJoin`."""
    return ResilientParallelJoin(algorithm=algorithm, workers=workers, **kwargs).join(r, s)
