"""The ``Executor`` protocol: one contract for every way a join can run.

Before this package existed, the four execution paths — in-process,
partition-parallel (fail-fast and resilient) and disk-partitioned — lived
in three packages with ad-hoc ``from_plan`` constructors and duplicated
stats merging, and :func:`repro.planner.executor.execute_plan` dispatched
on the plan's executor name with one hand-written branch per class.  The
protocol formalises what those branches all assumed:

* ``prepare(s, probe_hint=None)`` — build the in-memory
  :class:`~repro.core.base.PreparedIndex` this executor's join is based
  on (the full, single-process index: partitioned executors still expose
  it for parameter parity and as the fallback of last resort);
* ``join(r, s)`` — compute ``R ⋈⊇ S`` end to end and return a
  :class:`~repro.core.base.JoinResult`;
* ``from_plan(plan)`` — construct the executor from an immutable
  :class:`~repro.planner.plan.Plan` (algorithm kwargs and executor
  options forwarded verbatim);
* ``describe()`` — a JSON-friendly dict of the executor's configuration,
  for logs, EXPLAIN output and tests.

:class:`BaseExecutor` is the shared implementation: every concrete
executor in this package subclasses it, and ``execute_plan`` dispatches
through :func:`repro.exec.executor_class` with no per-class branches.
See ``docs/EXECUTORS.md`` for the executor matrix.
"""

from __future__ import annotations

from typing import Any, ClassVar, Protocol, runtime_checkable

from repro.core.base import JoinResult, PreparedIndex
from repro.relations.relation import Relation

__all__ = ["Executor", "BaseExecutor"]


@runtime_checkable
class Executor(Protocol):
    """Structural type every join executor satisfies.

    ``runtime_checkable`` so tests (and defensive callers) can assert
    ``isinstance(executor, Executor)``; the check covers method presence,
    not signatures — :class:`BaseExecutor` is the canonical
    implementation.
    """

    #: Plan-facing executor name (the value of ``Plan.executor``).
    name: ClassVar[str]

    def prepare(
        self, s: Relation, probe_hint: Relation | None = None
    ) -> PreparedIndex: ...

    def join(self, r: Relation, s: Relation) -> JoinResult: ...

    @classmethod
    def from_plan(cls, plan: Any) -> "Executor": ...

    def describe(self) -> dict[str, Any]: ...


class BaseExecutor:
    """Common machinery shared by every executor in :mod:`repro.exec`.

    Holds the algorithm binding (registry name + constructor kwargs),
    implements the protocol's ``prepare``/``from_plan``/``describe``
    once, and leaves ``join`` — the part that actually differs — to the
    subclass.

    Args:
        algorithm: Registry name of the in-memory algorithm this executor
            runs (``"ptsj"``, ``"pretti+"``, ...).
        **algorithm_kwargs: Forwarded verbatim to the algorithm factory.
    """

    #: Plan-facing executor name; subclasses override.
    name: ClassVar[str] = "abstract"

    def __init__(self, algorithm: str = "ptsj", **algorithm_kwargs: Any) -> None:
        self.algorithm = algorithm
        self.algorithm_kwargs = algorithm_kwargs

    @classmethod
    def from_plan(cls, plan: Any) -> "BaseExecutor":
        """Build this executor from a :class:`~repro.planner.plan.Plan`.

        The plan's executor options become constructor options and its
        algorithm kwargs are forwarded verbatim, so a deserialized plan
        reconstructs the exact executor the planner decided on.
        """
        return cls(algorithm=plan.algorithm, **plan.options(), **plan.kwargs())

    def prepare(
        self, s: Relation, probe_hint: Relation | None = None
    ) -> PreparedIndex:
        """Build the single-process index this executor's join is based on."""
        from repro.core.registry import make_algorithm

        return make_algorithm(self.algorithm, **self.algorithm_kwargs).prepare(
            s, probe_hint=probe_hint
        )

    def join(self, r: Relation, s: Relation) -> JoinResult:
        raise NotImplementedError  # pragma: no cover - subclasses implement

    def describe(self) -> dict[str, Any]:
        """This executor's configuration as a JSON-friendly dict."""
        info: dict[str, Any] = {"executor": self.name, "algorithm": self.algorithm}
        if self.algorithm_kwargs:
            info["algorithm_kwargs"] = dict(self.algorithm_kwargs)
        info.update(self._describe_options())
        return info

    def _describe_options(self) -> dict[str, Any]:
        """Executor-specific knobs for :meth:`describe`; subclasses extend."""
        return {}

    def __repr__(self) -> str:
        return f"<{type(self).__name__} ({self.name}) algorithm={self.algorithm}>"
