"""Disk-based partitioned nested-loop join (paper Sec. III-E4).

"A straightforward implementation is to perform a nested-loop join over
partitions of the data [...] for each pair of partitions from both
relations, we load them into main memory and perform the join.  In this
case, the algorithm will have a quadratic behavior with respect to the
number of partitions."

:class:`DiskPartitionedJoin` wraps any in-memory algorithm from the
registry; the paper's observation that PTSJ's small memory footprint makes
it the best fit for this strategy is reproduced by
``benchmarks/test_ablation_disk.py``.  The paper also notes PRETTI(+) may
*gain* from partitioning (shallower per-partition tries); the stats
reported here let that be observed as well.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Any, ClassVar

from repro.core.base import JoinResult, JoinStats
from repro.core.options import validate_max_tuples
from repro.exec.merge import merge_stats
from repro.exec.protocol import BaseExecutor
from repro.governance.policy import governor
from repro.obs.tracer import current_tracer
from repro.external.partition import SpilledRelation
from repro.obs.clock import perf_counter
from repro.relations.relation import Relation

__all__ = ["DiskPartitionedJoin", "disk_partitioned_join"]


class DiskPartitionedJoin(BaseExecutor):
    """Block nested-loop join over on-disk partitions.

    Args:
        algorithm: Registry name of the in-memory algorithm used per
            partition pair (default ``"ptsj"``).
        max_tuples: Memory budget, expressed as the largest partition that
            "fits" in memory.
        workdir: Spill directory; a temporary directory is created (and
            removed) when omitted.
        **algorithm_kwargs: Forwarded to the per-pair algorithm factory.

    Raises:
        ExternalMemoryError: On a non-positive ``max_tuples``.
    """

    name: ClassVar[str] = "disk"

    def __init__(
        self,
        algorithm: str = "ptsj",
        max_tuples: int = 4096,
        workdir: str | Path | None = None,
        **algorithm_kwargs,
    ) -> None:
        validate_max_tuples(max_tuples)
        super().__init__(algorithm=algorithm, **algorithm_kwargs)
        self.max_tuples = max_tuples
        self.workdir = workdir

    @classmethod
    def from_plan(cls, plan, workdir: str | Path | None = None) -> "DiskPartitionedJoin":
        """Build this executor from a :class:`~repro.planner.plan.Plan`.

        The plan's ``max_tuples`` executor option (the planner derives it
        from ``Workload.memory_budget_tuples``) sizes the partitions; the
        algorithm kwargs are forwarded verbatim.
        """
        return cls(
            algorithm=plan.algorithm, workdir=workdir, **plan.options(), **plan.kwargs()
        )

    def _describe_options(self) -> dict[str, Any]:
        return {
            "max_tuples": self.max_tuples,
            "workdir": str(self.workdir) if self.workdir is not None else None,
        }

    def join(self, r: Relation, s: Relation) -> JoinResult:
        """Spill, then join every partition pair in memory.

        The returned stats aggregate the per-pair runs; ``extras`` records
        the partition counts, partition loads (I/O operations) and spill
        time so the quadratic I/O behaviour is observable.
        """
        from repro.core.registry import make_algorithm

        stats = JoinStats(algorithm=f"disk-{self.algorithm}")
        own_tmp: tempfile.TemporaryDirectory | None = None
        if self.workdir is None:
            own_tmp = tempfile.TemporaryDirectory(prefix="repro-scj-")
            workdir = Path(own_tmp.name)
        else:
            workdir = Path(self.workdir)
        tracer = current_tracer()
        r_spill: SpilledRelation | None = None
        s_spill: SpilledRelation | None = None
        try:
            with tracer.span("spill"):
                spill_start = perf_counter()
                r_named = r if r.name else Relation(r.records, name="R")
                s_named = s if s.name else Relation(s.records, name="S")
                r_spill = SpilledRelation(r_named, workdir / "r", self.max_tuples)
                s_spill = SpilledRelation(s_named, workdir / "s", self.max_tuples)
                spill_seconds = perf_counter() - spill_start
                if tracer.enabled:
                    tracer.count("spilled_partitions", len(r_spill) + len(s_spill))

            # Each per-pair join opens its own build/probe spans, which
            # merge under the current span — the trace shows the summed
            # build/probe cost exactly as the aggregated stats do, with
            # the quadratic partition-load I/O visible as ``load``.
            # Governance bounds are re-checked between partition pairs, so
            # a cancelled or over-deadline join stops after the pair in
            # flight (each per-pair join also polls internally).
            gov = governor("probe", stats)
            pairs: list[tuple[int, int]] = []
            for s_index in range(len(s_spill)):
                with tracer.span("load"):
                    s_part = s_spill.load(s_index)
                for r_index in range(len(r_spill)):
                    if gov is not None:
                        gov.poll()
                    with tracer.span("load"):
                        r_part = r_spill.load(r_index)
                    algo = make_algorithm(self.algorithm, **self.algorithm_kwargs)
                    part_result = algo.join(r_part, s_part)
                    pairs.extend(part_result.pairs)
                    merge_stats(stats, part_result.stats)
            stats.extras["r_partitions"] = len(r_spill)
            stats.extras["s_partitions"] = len(s_spill)
            stats.extras["partition_loads"] = r_spill.reads + s_spill.reads
            stats.extras["spill_seconds"] = spill_seconds
        finally:
            # Spill files must never outlive the join — an abort between
            # spill and merge (deadline, cancel, per-pair failure) would
            # otherwise leak partitions into a caller-owned workdir.
            if r_spill is not None:
                r_spill.cleanup()
            if s_spill is not None:
                s_spill.cleanup()
            if own_tmp is not None:
                own_tmp.cleanup()
        return JoinResult(pairs, stats)


def disk_partitioned_join(
    r: Relation,
    s: Relation,
    algorithm: str = "ptsj",
    max_tuples: int = 4096,
    **algorithm_kwargs,
) -> JoinResult:
    """One-shot helper around :class:`DiskPartitionedJoin`.

    Example:
        >>> from repro.relations import Relation
        >>> r = Relation.from_sets([{1, 2, 3}, {2, 4}])
        >>> s = Relation.from_sets([{2}, {1, 3}])
        >>> sorted(disk_partitioned_join(r, s, max_tuples=1).pairs)
        [(0, 0), (0, 1), (1, 0)]
    """
    return DiskPartitionedJoin(
        algorithm=algorithm, max_tuples=max_tuples, **algorithm_kwargs
    ).join(r, s)
