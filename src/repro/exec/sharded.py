"""Shard-partitioned scale-out join: partition the *index*, not the probes.

Every other parallel path in this package shares one prepared index and
splits the probe side.  That caps the joinable ``S`` at what one process
can hold — exactly the wall the paper's Sec. VI names when "relation size
goes beyond millions of tuples".  :class:`ShardedJoin` crosses it by
partitioning ``S`` into disjoint shards, building one *small* index per
shard inside its worker, and routing each probe record only to the shards
that could possibly contain its subsets.  Partitioning the indexed side
follows the distribution strategies surveyed in "Set Containment Join
Revisited" (Bouros et al.).

Two partition strategies:

* ``"element"`` — shard ``s`` by ``min(s.elements) % shards``.  Routing
  exploits containment: ``s ⊆ r`` implies ``min(s) ∈ r``, so probing the
  shards ``{e % shards for e in r.elements}`` reaches every subset of
  ``r``.  Probes fan out only as far as their distinct element residues —
  the *small side* (the probe record) is replicated, never the index.
  Empty sets are a special case: ``∅ ⊆ r`` for every ``r``, so empty
  ``s`` live in shard 0 and every probe also routes there while ``S``
  contains an empty set.
* ``"signature"`` — shard ``s`` by a stable hash of its elements
  (uniform placement, immune to element skew) at the price of
  *broadcasting* every probe to all shards.

Each shard is one worker task carrying everything it needs (algorithm
name, its S-partition, its routed probes), so shards survive pool
restarts without initializer state.  The resilience ladder from
:class:`~repro.exec.resilient.RetryPolicy` extends to **shard loss**:
a crashed or dying shard worker is retried with deterministic backoff, a
hung shard is timed out and abandoned, and a shard whose retries are
exhausted is rebuilt and probed in the parent process (the fallback of
last resort — the parent rebuilds the shard index *without* any fault
transform).  Degradation is observable via ``stats.extras``:
``retries``, ``timeouts``, ``fallback_shards``, ``pool_restarts`` and
``corrupt_shards`` are always present and zero on a clean run.

Determinism: shard membership and probe routing are pure functions of
record elements, results are merged in shard-id order with
:func:`repro.exec.merge.merge_stats`, and pair lists concatenate in
shard-id order — so pairs-sorted output and merged counters are
bit-for-bit reproducible across runs, worker counts and start methods.
With ``shards=1`` the single shard holds all of ``S`` and receives every
probe in order, so merged counters equal the inline oracle's exactly.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, ClassVar

from repro.core.base import JoinResult, JoinStats, PreparedIndex
from repro.core.options import (
    validate_shard_strategy,
    validate_shards,
    validate_start_method,
    validate_timeout_seconds,
    validate_workers,
)
from repro.errors import GovernanceError, JoinTimeoutError, RetryExhaustedError, WorkerError
from repro.exec.merge import merge_stats
from repro.exec.protocol import BaseExecutor
from repro.exec.resilient import RetryPolicy
from repro.governance.policy import GovernancePolicy, current_policy, governor, set_policy
from repro.obs.clock import monotonic
from repro.obs.tracer import current_tracer
from repro.relations.relation import Relation, SetRecord

__all__ = ["ShardedJoin", "sharded_join", "SHARD_EXTRAS"]

#: Stats extras every sharded join reports (the last five zero on a clean run).
SHARD_EXTRAS = ("retries", "timeouts", "fallback_shards", "pool_restarts", "corrupt_shards")

#: Multiplier for the stable signature hash (same prime CPython's tuple
#: hash historically used; any odd multiplier works).
_HASH_MULTIPLIER = 1000003
_HASH_MASK = (1 << 61) - 1


def stable_signature_hash(elements: frozenset[int]) -> int:
    """Order-independent, process-independent hash of an element set.

    Python's ``hash(frozenset)`` is stable for ints today, but that is an
    implementation detail; shard placement must never depend on one.
    Folding the *sorted* elements keeps the value identical in every
    interpreter and start method.
    """
    h = len(elements) & _HASH_MASK
    for e in sorted(elements):
        h = (h * _HASH_MULTIPLIER + e + 1) & _HASH_MASK
    return h


def shard_of(record: SetRecord, shards: int, strategy: str) -> int:
    """The single shard a ``S``-record lives in (pure, deterministic)."""
    if shards == 1:
        return 0
    if strategy == "signature":
        return stable_signature_hash(record.elements) % shards
    if not record.elements:
        return 0
    return min(record.elements) % shards


def route_probe(
    record: SetRecord, shards: int, strategy: str, s_has_empty: bool
) -> list[int]:
    """Every shard a probe record must visit, ascending (pure, deterministic).

    Element routing is complete because ``s ⊆ r ∧ s ≠ ∅`` implies
    ``min(s) ∈ r``, hence ``min(s) % shards`` is among ``r``'s element
    residues; empty ``s`` (⊆ everything) live in shard 0, which is added
    whenever ``S`` contains one.  Signature placement has no such
    locality, so signature probes broadcast.
    """
    if shards == 1:
        return [0]
    if strategy == "signature":
        return list(range(shards))
    targets = {e % shards for e in record.elements}
    if s_has_empty or not record.elements:
        targets.add(0)
    return sorted(targets)


def _join_shard(
    payload: tuple[
        int,
        str,
        dict[str, Any],
        Relation,
        Relation,
        Callable[[PreparedIndex], PreparedIndex] | None,
        GovernancePolicy | None,
    ],
) -> tuple[list[tuple[int, int]], JoinStats]:
    """Worker entry point (module-level so it pickles): build *and* probe.

    Unlike the chunk executors, each shard task is self-contained — it
    carries its S-partition and routed probes, builds the shard index
    locally, applies the (picklable) fault transform if any, and probes.
    The returned stats include the shard's build time, nodes and
    signature bits, so the parent's merge accounts for every build.

    The payload's last slot is the parent's governance policy (or None):
    the deadline is an absolute monotonic instant and the cancel token
    can be flag-file backed, so the worker's build/probe loops poll the
    *parent's* bounds.  An in-process call passes None and inherits the
    caller's ambient policy instead of clobbering it.
    """
    shard_id, algorithm, algorithm_kwargs, s_part, probes, transform, policy = payload
    from repro.core.registry import make_algorithm

    previous = set_policy(policy) if policy is not None else None
    try:
        index = make_algorithm(algorithm, **algorithm_kwargs).prepare(
            s_part, probe_hint=probes
        )
        if transform is not None:
            index = transform(index)
        result = index.probe_many(probes)
    finally:
        if policy is not None:
            set_policy(previous)
    stats = result.stats
    stats.build_seconds += index.build_seconds
    stats.index_nodes = max(stats.index_nodes, index.index_nodes)
    stats.signature_bits = max(stats.signature_bits, index.signature_bits)
    return result.pairs, stats


def record_shard_span(tracer, shard_id: int, shard_stats: JoinStats) -> None:
    """Fold one worker-measured shard run into the parent's span tree.

    Mirrors :func:`repro.exec.parallel.record_chunk_span`: the shard's
    build+probe wall time was measured in the worker and comes home in
    its :class:`JoinStats`; recording it keeps the ``shard`` span's total
    equal to the summed per-shard time the merged stats report.
    """
    if not tracer.enabled:
        return
    tracer.record(
        "shard",
        shard_stats.build_seconds + shard_stats.probe_seconds,
        {
            "shards": 1,
            "pairs": shard_stats.pairs,
            "candidates": shard_stats.candidates,
            "verifications": shard_stats.verifications,
            "node_visits": shard_stats.node_visits,
            "intersections": shard_stats.intersections,
        },
    )
    tracer.observe("shard_seconds", shard_stats.build_seconds + shard_stats.probe_seconds)


class _ShardTask:
    """Book-keeping for one shard's journey through the executor."""

    __slots__ = ("shard_id", "s_part", "probes", "attempts", "deadline")

    def __init__(self, shard_id: int, s_part: Relation, probes: Relation) -> None:
        self.shard_id = shard_id
        self.s_part = s_part
        self.probes = probes
        self.attempts = 0
        self.deadline: float | None = None


class ShardedJoin(BaseExecutor):
    """Scale-out set-containment join over S-index shards.

    Args:
        algorithm: Registry name of the in-memory algorithm built per
            shard.
        workers: Worker process count (>= 1).  ``workers=1`` runs the
            shard tasks in-process (retry and fallback still apply;
            ``timeout_seconds`` does not — in-process probes cannot be
            pre-empted).
        shards: Number of S-partitions; defaults to ``workers``.
        strategy: ``"element"`` (routed probes, default) or
            ``"signature"`` (uniform placement, broadcast probes).
        start_method: Multiprocessing start method for the pool.
        retry_policy: Retry schedule per shard (default: 3 attempts, no
            backoff) — the same ladder the resilient executor uses for
            chunks.
        timeout_seconds: Per-shard wall-clock budget; an over-budget shard
            is abandoned and rebuilt in the parent.  ``None`` disables.
        fallback: When True (default), a shard whose retries are
            exhausted is rebuilt and probed in the parent instead of
            raising :class:`~repro.errors.RetryExhaustedError`.
        validate_results: When True (default), shard results are checked
            for alien tuple ids; corrupt shards are retried.
        index_transform: Optional *picklable* hook applied to each shard
            index inside its worker — the seam
            :class:`repro.testing.faults.IndexFault` uses to inject shard
            loss.  (Unlike the resilient executor's transform, this one
            crosses a process boundary, so lambdas won't do.)
        **algorithm_kwargs: Forwarded to the per-shard algorithm factory.

    Raises:
        AlgorithmError: On invalid configuration.
        RetryExhaustedError: When a shard fails every attempt and
            ``fallback`` is disabled.
        JoinTimeoutError: When a shard exceeds ``timeout_seconds`` and
            ``fallback`` is disabled.
    """

    name: ClassVar[str] = "sharded"

    def __init__(
        self,
        algorithm: str = "ptsj",
        workers: int = 2,
        shards: int | None = None,
        strategy: str = "element",
        start_method: str | None = None,
        retry_policy: RetryPolicy | None = None,
        timeout_seconds: float | None = None,
        fallback: bool = True,
        validate_results: bool = True,
        index_transform: Callable[[PreparedIndex], PreparedIndex] | None = None,
        **algorithm_kwargs,
    ) -> None:
        validate_workers(workers)
        validate_shards(shards)
        validate_shard_strategy(strategy)
        validate_start_method(start_method)
        validate_timeout_seconds(timeout_seconds)
        super().__init__(algorithm=algorithm, **algorithm_kwargs)
        self.workers = workers
        self.shards = shards or workers
        self.strategy = strategy
        self.start_method = start_method
        self.retry_policy = retry_policy or RetryPolicy()
        self.timeout_seconds = timeout_seconds
        self.fallback = fallback
        self.validate_results = validate_results
        self.index_transform = index_transform

    def _describe_options(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "shards": self.shards,
            "strategy": self.strategy,
            "start_method": self.start_method,
            "max_attempts": self.retry_policy.max_attempts,
            "timeout_seconds": self.timeout_seconds,
            "fallback": self.fallback,
            "validate_results": self.validate_results,
        }

    # ------------------------------------------------------------------
    # Partitioning and routing
    # ------------------------------------------------------------------
    def _partition_s(self, s: Relation) -> list[list[SetRecord]]:
        """Distribute ``S`` into shards, preserving record order within each."""
        parts: list[list[SetRecord]] = [[] for _ in range(self.shards)]
        gov = governor("build")
        for rec in s:
            if gov is not None:
                gov.tick()
            parts[shard_of(rec, self.shards, self.strategy)].append(rec)
        return parts

    def _route_r(self, r: Relation, s_has_empty: bool) -> list[list[SetRecord]]:
        """Replicate each probe record to its target shards, in R order."""
        routed: list[list[SetRecord]] = [[] for _ in range(self.shards)]
        gov = governor("probe")
        for rec in r:
            if gov is not None:
                gov.tick()
            for shard_id in route_probe(rec, self.shards, self.strategy, s_has_empty):
                routed[shard_id].append(rec)
        return routed

    def _make_tasks(self, r: Relation, s: Relation, stats: JoinStats) -> list[_ShardTask]:
        """Build one task per populated shard; record the routing extras."""
        s_parts = self._partition_s(s)
        s_has_empty = any(not rec.elements for rec in s)
        routed = self._route_r(r, s_has_empty)
        tasks = [
            _ShardTask(
                shard_id,
                Relation(tuple(s_parts[shard_id]), name=f"S#{shard_id}"),
                Relation(tuple(routed[shard_id]), name=f"R#{shard_id}"),
            )
            for shard_id in range(self.shards)
            if s_parts[shard_id]
        ]
        stats.extras["workers"] = self.workers
        stats.extras["shards"] = self.shards
        stats.extras["index_builds"] = len(tasks)
        stats.extras["routed_probes"] = sum(len(task.probes) for task in tasks)
        for key in SHARD_EXTRAS:
            stats.extras[key] = 0
        return tasks

    def _payload(self, task: _ShardTask, policy: GovernancePolicy | None = None):
        return (
            task.shard_id,
            self.algorithm,
            self.algorithm_kwargs,
            task.s_part,
            task.probes,
            self.index_transform,
            policy,
        )

    # ------------------------------------------------------------------
    # Join driver
    # ------------------------------------------------------------------
    def join(self, r: Relation, s: Relation) -> JoinResult:
        """Compute ``R ⋈⊇ S`` across shards with retry/timeout/fallback."""
        stats = JoinStats(algorithm=f"sharded-{self.algorithm}")
        tasks = self._make_tasks(r, s, stats)

        if self.workers == 1:
            outcomes = [self._run_shard_inline(task, stats) for task in tasks]
        else:
            outcomes = self._run_shards_pooled(tasks, stats)

        # Merge in shard-id order — task lists are already ascending and
        # the pooled driver writes results back by position, so the fold
        # (and the concatenated pair list) is deterministic regardless of
        # completion order.
        pairs: list[tuple[int, int]] = []
        for shard_pairs, shard_stats in outcomes:
            pairs.extend(shard_pairs)
            merge_stats(stats, shard_stats)
        return JoinResult(pairs, stats)

    # ------------------------------------------------------------------
    # In-process execution (workers == 1)
    # ------------------------------------------------------------------
    def _run_shard_inline(
        self, task: _ShardTask, stats: JoinStats
    ) -> tuple[list[tuple[int, int]], JoinStats]:
        """Run one shard in-process, retrying per the policy."""
        last_error: Exception | None = None
        while task.attempts < self.retry_policy.max_attempts:
            task.attempts += 1
            if task.attempts > 1:
                stats.extras["retries"] += 1
                delay = self.retry_policy.delay(task.attempts - 1)
                current_tracer().record("retry", delay, {"retries": 1})
                time.sleep(delay)
            try:
                shard_pairs, shard_stats = _join_shard(self._payload(task))
                self._check_result(task, shard_pairs, stats)
                return shard_pairs, shard_stats
            except GovernanceError:
                # Deadline/cancel/budget bounds are terminal by design:
                # retrying a shard cannot buy back elapsed wall time.
                raise
            except Exception as exc:  # noqa: BLE001 - any shard fault is retryable
                last_error = exc
        return self._exhausted(task, stats, last_error)

    # ------------------------------------------------------------------
    # Pooled execution (workers > 1)
    # ------------------------------------------------------------------
    def _run_shards_pooled(
        self, tasks: list[_ShardTask], stats: JoinStats
    ) -> list[tuple[list[tuple[int, int]], JoinStats]]:
        """Drive all shards through a worker pool, recovering losses."""
        results: list[tuple[list[tuple[int, int]], JoinStats] | None] = [None] * len(tasks)
        positions = {task.shard_id: i for i, task in enumerate(tasks)}
        pool = self._make_pool()
        pending: dict[Future, _ShardTask] = {}
        abandoned = False
        completed = False
        gov = governor("probe", stats)
        try:
            for task in tasks:
                self._submit(pool, task, pending)
            while pending:
                # Parent-side bound check once per scheduling round, so a
                # breach stops the join even when every worker is wedged.
                if gov is not None:
                    gov.poll()
                done = self._wait_round(pending)
                pool_broken = False
                for future in done:
                    task = pending.pop(future)
                    try:
                        shard_pairs, shard_stats = future.result()
                        self._check_result(task, shard_pairs, stats)
                        record_shard_span(current_tracer(), task.shard_id, shard_stats)
                        results[positions[task.shard_id]] = (shard_pairs, shard_stats)
                        continue
                    except BrokenProcessPool:
                        pool_broken = True
                        retry_now = False
                    except GovernanceError:
                        # A worker hit the deadline/cancel bound: terminal,
                        # never retried, never completed via fallback.
                        raise
                    except Exception as exc:  # noqa: BLE001 - retryable shard fault
                        last_error = exc
                        retry_now = True
                    if retry_now:
                        if task.attempts < self.retry_policy.max_attempts:
                            stats.extras["retries"] += 1
                            delay = self.retry_policy.delay(task.attempts)
                            current_tracer().record("retry", delay, {"retries": 1})
                            time.sleep(delay)
                            self._submit(pool, task, pending)
                        else:
                            results[positions[task.shard_id]] = self._exhausted(
                                task, stats, last_error
                            )
                    else:
                        # Pool broke under this shard: resubmission waits
                        # for the pool restart below.
                        pending[future] = task
                if pool_broken:
                    pool = self._restart_pool(pool, pending, positions, results, stats)
                abandoned |= self._expire_overdue(pending, positions, results, stats)
            completed = True
        except GovernanceError:
            # Record how many shards the abort stranded before the finally
            # block force-terminates their workers.
            cancelled = sum(1 for outcome in results if outcome is None)
            stats.extras["cancelled_chunks"] = (
                stats.extras.get("cancelled_chunks", 0) + cancelled
            )
            current_tracer().record("governance", 0.0, {"cancelled_chunks": cancelled})
            raise
        finally:
            self._shutdown_pool(pool, force=abandoned or not completed)
        assert all(outcome is not None for outcome in results)
        return results  # type: ignore[return-value]

    def _make_pool(self) -> ProcessPoolExecutor:
        """Create the worker pool; shard payloads carry their own state."""
        import multiprocessing

        context = (
            multiprocessing.get_context(self.start_method)
            if self.start_method is not None
            else None
        )
        return ProcessPoolExecutor(
            max_workers=min(self.workers, max(1, self.shards)), mp_context=context
        )

    def _submit(
        self, pool: ProcessPoolExecutor, task: _ShardTask, pending: dict[Future, _ShardTask]
    ) -> None:
        """Submit one attempt for ``task`` and start its timeout clock."""
        task.attempts += 1
        policy = current_policy()
        if policy is not None:
            policy = policy.worker_policy()
        future = pool.submit(_join_shard, self._payload(task, policy))
        if self.timeout_seconds is not None:
            task.deadline = monotonic() + self.timeout_seconds
        pending[future] = task

    def _wait_round(self, pending: dict[Future, _ShardTask]) -> set[Future]:
        """Block until a future completes or the nearest bound passes.

        As in the resilient executor, the wait is capped by the active
        governance policy (deadline remaining; 50ms when a cancel token
        is armed) so the blocked parent wakes to poll.
        """
        wait_timeout: float | None = None
        if self.timeout_seconds is not None:
            nearest = min(task.deadline for task in pending.values() if task.deadline)
            wait_timeout = max(0.0, nearest - monotonic())
        policy = current_policy()
        if policy is not None:
            if policy.cancel is not None:
                wait_timeout = 0.05 if wait_timeout is None else min(wait_timeout, 0.05)
            if policy.deadline is not None:
                remaining = max(0.0, policy.deadline.remaining())
                wait_timeout = (
                    remaining if wait_timeout is None else min(wait_timeout, remaining)
                )
        done, _ = wait(set(pending), timeout=wait_timeout, return_when=FIRST_COMPLETED)
        return done

    def _restart_pool(
        self,
        pool: ProcessPoolExecutor,
        pending: dict[Future, _ShardTask],
        positions: dict[int, int],
        results: list,
        stats: JoinStats,
    ) -> ProcessPoolExecutor:
        """Replace a broken pool and resubmit every in-flight shard."""
        stats.extras["pool_restarts"] += 1
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("pool_restarts")
        stranded = list(pending.values())
        pending.clear()
        pool.shutdown(wait=False, cancel_futures=True)
        pool = self._make_pool()
        for task in stranded:
            if task.attempts < self.retry_policy.max_attempts:
                stats.extras["retries"] += 1
                delay = self.retry_policy.delay(task.attempts)
                tracer.record("retry", delay, {"retries": 1})
                time.sleep(delay)
                self._submit(pool, task, pending)
            else:
                results[positions[task.shard_id]] = self._exhausted(
                    task, stats,
                    WorkerError(f"worker died while joining shard {task.shard_id}"),
                )
        return pool

    def _expire_overdue(
        self,
        pending: dict[Future, _ShardTask],
        positions: dict[int, int],
        results: list,
        stats: JoinStats,
    ) -> bool:
        """Abandon shards past their deadline; rebuild them in the parent."""
        if self.timeout_seconds is None:
            return False
        now = monotonic()
        overdue = [
            future
            for future, task in pending.items()
            if not future.done() and task.deadline is not None and task.deadline <= now
        ]
        abandoned = False
        for future in overdue:
            task = pending.pop(future)
            if not future.cancel():
                abandoned = True
            stats.extras["timeouts"] += 1
            current_tracer().record("timeout", 0.0, {"timeouts": 1})
            if not self.fallback:
                raise JoinTimeoutError(
                    f"shard {task.shard_id} exceeded its {self.timeout_seconds}s budget "
                    f"on attempt {task.attempts} and fallback is disabled"
                )
            results[positions[task.shard_id]] = self._fallback(task, stats)
        return abandoned

    # ------------------------------------------------------------------
    # Last resorts
    # ------------------------------------------------------------------
    def _exhausted(
        self, task: _ShardTask, stats: JoinStats, last_error: Exception | None
    ) -> tuple[list[tuple[int, int]], JoinStats]:
        """Retries used up: rebuild in the parent or raise."""
        if not self.fallback:
            raise RetryExhaustedError(
                f"shard {task.shard_id} failed all {task.attempts} attempts: {last_error}",
                attempts=task.attempts,
            ) from last_error
        return self._fallback(task, stats)

    def _fallback(
        self, task: _ShardTask, stats: JoinStats
    ) -> tuple[list[tuple[int, int]], JoinStats]:
        """Rebuild and probe one lost shard in the parent process.

        Deliberately bypasses ``index_transform``: whatever fault wrapper
        the workers ran with, the parent rebuilds the shard from its own
        pristine S-partition.  The rebuild's cost lands in the shard's
        returned stats, so the merge still accounts for it.
        """
        stats.extras["fallback_shards"] += 1
        current_tracer().record("fallback", 0.0, {"fallback_shards": 1})
        payload = (
            task.shard_id,
            self.algorithm,
            self.algorithm_kwargs,
            task.s_part,
            task.probes,
            None,
            None,
        )
        return _join_shard(payload)

    def _check_result(
        self, task: _ShardTask, pairs: list[tuple[int, int]], stats: JoinStats
    ) -> None:
        """Reject shard output referencing tuples the shard never held."""
        if not self.validate_results:
            return
        probe_ids = frozenset(rec.rid for rec in task.probes)
        s_ids = frozenset(rec.rid for rec in task.s_part)
        for r_id, s_id in pairs:
            if r_id not in probe_ids or s_id not in s_ids:
                stats.extras["corrupt_shards"] += 1
                raise WorkerError(
                    f"shard {task.shard_id} returned corrupt pair ({r_id}, {s_id}): "
                    "ids do not belong to the routed probes / shard partition"
                )

    @staticmethod
    def _shutdown_pool(pool: ProcessPoolExecutor, force: bool) -> None:
        """Shut the pool down; terminate workers when any were abandoned."""
        if force:
            for proc in list(getattr(pool, "_processes", {}).values()):
                proc.terminate()
            pool.shutdown(wait=False, cancel_futures=True)
        else:
            pool.shutdown(wait=True, cancel_futures=True)


def sharded_join(
    r: Relation,
    s: Relation,
    algorithm: str = "ptsj",
    workers: int = 2,
    shards: int | None = None,
    **kwargs,
) -> JoinResult:
    """One-shot helper around :class:`ShardedJoin`."""
    return ShardedJoin(algorithm=algorithm, workers=workers, shards=shards, **kwargs).join(r, s)
