"""Plan data model: workload hints, costed decisions, and EXPLAIN rendering.

A :class:`Plan` is the planner's output contract: an immutable, serializable
description of *how* one join (or prepare-once/probe-many workload) will be
executed — chosen algorithm, signature parameterisation, executor and
chunking — where every decision carries the cost estimates that justified
it and the alternatives that were rejected, so :meth:`Plan.explain` can
render an EXPLAIN-style tree and benchmarks can measure planner regret
afterwards.

Plans deliberately separate *decision* from *execution*: building one
touches only :class:`~repro.relations.stats.RelationStats` (never the
records), and :func:`repro.planner.executor.execute_plan` is the single
place a plan turns into actual work.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import PlanError

__all__ = [
    "Workload",
    "CostEstimate",
    "Alternative",
    "Decision",
    "Plan",
    "EXECUTORS",
    "WORKLOAD_MODES",
    "JOIN_VARIANTS",
]

#: Executors a plan may select (see ``docs/PLANNER.md`` for the mapping).
EXECUTORS = ("inline", "parallel", "resilient", "disk", "sharded")

#: Workload shapes the planner distinguishes.
WORKLOAD_MODES = ("oneshot", "probe_many")

#: Join variants the planner accepts (extensions share the PTSJ index).
JOIN_VARIANTS = ("containment", "superset", "equality", "similarity")


@dataclass(frozen=True)
class Workload:
    """Caller-supplied hints about how the join will be used.

    Attributes:
        mode: ``"oneshot"`` (classic ``join(r, s)``) or ``"probe_many"``
            (prepare the index once, probe it repeatedly).
        probe_batches: Expected probe batches for ``probe_many`` workloads;
            amortises the build cost in the planner's estimates.
        memory_budget_tuples: Largest relation slice that fits in memory,
            in tuples; ``None`` means unconstrained.  When the inputs
            exceed it, the planner selects the disk-partitioned executor.
        workers: Available worker processes; above 1 the planner considers
            the partition-parallel executors.
        fault_tolerance: Prefer the resilient executor (per-chunk retry,
            timeout, fallback) whenever a worker pool is used.
        variant: Join variant (``containment`` is the R ⋈⊇ S join; the
            Sec. III-E extensions reuse the same prepared Patricia index).
        shards: Requested S-shard count for the scale-out executor;
            ``None`` (default) lets the planner decide whether sharding
            pays off at all.  Setting it selects the sharded executor for
            one-shot workloads.
        deadline_seconds: Whole-join wall-clock bound.  The planner
            rejects plans whose cost estimate cannot finish inside it
            (EXPLAIN-visible), and ``execute_plan`` derives a
            :class:`~repro.governance.Deadline` from it so every
            build/probe loop polls.  Distinct from the executors'
            per-chunk ``timeout_seconds`` — see ``docs/ROBUSTNESS.md``.
        max_memory_bytes: Index-build memory budget in bytes, enforced by
            the tracemalloc-backed governor; a breach raises
            :class:`~repro.errors.BudgetExceededError` (or degrades, on
            the resilient path).
    """

    mode: str = "oneshot"
    probe_batches: int = 1
    memory_budget_tuples: int | None = None
    workers: int = 1
    fault_tolerance: bool = False
    variant: str = "containment"
    shards: int | None = None
    deadline_seconds: float | None = None
    max_memory_bytes: int | None = None

    def __post_init__(self) -> None:
        from repro.core.options import (
            validate_deadline_seconds,
            validate_max_memory_bytes,
            validate_max_tuples,
            validate_probe_batches,
            validate_shards,
            validate_workers,
        )

        if self.mode not in WORKLOAD_MODES:
            raise PlanError(f"unknown workload mode {self.mode!r}; expected one of {WORKLOAD_MODES}")
        if self.variant not in JOIN_VARIANTS:
            raise PlanError(f"unknown join variant {self.variant!r}; expected one of {JOIN_VARIANTS}")
        validate_probe_batches(self.probe_batches)
        validate_workers(self.workers)
        validate_shards(self.shards)
        if self.memory_budget_tuples is not None:
            validate_max_tuples(self.memory_budget_tuples)
        validate_deadline_seconds(self.deadline_seconds)
        validate_max_memory_bytes(self.max_memory_bytes)

    def to_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "probe_batches": self.probe_batches,
            "memory_budget_tuples": self.memory_budget_tuples,
            "workers": self.workers,
            "fault_tolerance": self.fault_tolerance,
            "variant": self.variant,
            "shards": self.shards,
            "deadline_seconds": self.deadline_seconds,
            "max_memory_bytes": self.max_memory_bytes,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Workload":
        return cls(**dict(payload))


@dataclass(frozen=True)
class CostEstimate:
    """One configuration's cost breakdown in model units (Sec. III-C style).

    *Model units* count expected elementary operations, not seconds; they
    are comparable across configurations of one algorithm and — with the
    calibration caveats spelled out in ``docs/PLANNER.md`` — indicative
    across algorithms.
    """

    build: float
    probe: float

    @property
    def total(self) -> float:
        return self.build + self.probe

    def to_dict(self) -> dict[str, float]:
        return {"build": self.build, "probe": self.probe, "total": self.total}

    @classmethod
    def from_dict(cls, payload: Mapping[str, float]) -> "CostEstimate":
        return cls(build=payload["build"], probe=payload["probe"])


@dataclass(frozen=True)
class Alternative:
    """A rejected option of one decision, kept for explainability.

    Attributes:
        choice: What was considered (an algorithm name, ``"bits=512"``, an
            executor name, ...).
        reason: Why it lost.
        cost: Its estimated cost at this workload, when the planner has a
            model for it (``None`` for options rejected on principle).
    """

    choice: str
    reason: str
    cost: CostEstimate | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "choice": self.choice,
            "reason": self.reason,
            "cost": self.cost.to_dict() if self.cost is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Alternative":
        cost = payload.get("cost")
        return cls(
            choice=payload["choice"],
            reason=payload["reason"],
            cost=CostEstimate.from_dict(cost) if cost else None,
        )


@dataclass(frozen=True)
class Decision:
    """One planner decision: what was chosen, why, and what was not.

    Attributes:
        name: Decision slot (``algorithm``, ``signature``, ``executor``,
            ``chunking``).
        choice: The selected option.
        reason: Human-readable justification (rendered by ``explain``).
        cost: Cost estimate of the chosen option, when modelled.
        rejected: The alternatives that lost, each with its own estimate.
        detail: Extra key/value annotations (numbers the decision used).
    """

    name: str
    choice: str
    reason: str
    cost: CostEstimate | None = None
    rejected: tuple[Alternative, ...] = ()
    detail: tuple[tuple[str, Any], ...] = ()

    def detail_dict(self) -> dict[str, Any]:
        return dict(self.detail)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "choice": self.choice,
            "reason": self.reason,
            "cost": self.cost.to_dict() if self.cost is not None else None,
            "rejected": [alt.to_dict() for alt in self.rejected],
            # List-of-pairs, not a dict: survives sort_keys serialization
            # with the decision's own ordering intact.
            "detail": [[key, value] for key, value in self.detail],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Decision":
        cost = payload.get("cost")
        return cls(
            name=payload["name"],
            choice=payload["choice"],
            reason=payload["reason"],
            cost=CostEstimate.from_dict(cost) if cost else None,
            rejected=tuple(Alternative.from_dict(alt) for alt in payload.get("rejected", ())),
            detail=tuple((key, value) for key, value in payload.get("detail", ())),
        )


def _fmt_cost(cost: CostEstimate | None) -> str:
    if cost is None:
        return ""
    return f"cost={cost.total:.3g} (build {cost.build:.3g} + probe {cost.probe:.3g})"


@dataclass(frozen=True)
class Plan:
    """An immutable, executable description of one planned join.

    Produced by :class:`repro.planner.Planner` (or pre-pinned by the
    registry when the caller names an algorithm explicitly) and consumed
    by :func:`repro.planner.executor.execute_plan`.

    Attributes:
        algorithm: Registry name of the in-memory algorithm.
        algorithm_kwargs: Constructor arguments for the algorithm, exactly
            as the caller supplied them (pinned plans forward these
            verbatim so explicit-algorithm runs stay bit-for-bit equal).
        executor: One of :data:`EXECUTORS`.
        executor_options: Keyword arguments for the executor class
            (``workers``/``chunks`` for the parallel executors,
            ``workers``/``shards``/``strategy`` for sharded,
            ``max_tuples`` for disk; empty for inline).
        workload: The hints the plan was made for.
        decisions: Every decision with its costs and rejected alternatives.
        pinned: True when the caller chose the algorithm explicitly; the
            planner then records the choice without second-guessing it.
    """

    algorithm: str
    algorithm_kwargs: tuple[tuple[str, Any], ...] = ()
    executor: str = "inline"
    executor_options: tuple[tuple[str, Any], ...] = ()
    workload: Workload = field(default_factory=Workload)
    decisions: tuple[Decision, ...] = ()
    pinned: bool = False

    def __post_init__(self) -> None:
        if self.executor not in EXECUTORS:
            raise PlanError(f"unknown executor {self.executor!r}; expected one of {EXECUTORS}")
        # Normalise mapping-like inputs into hashable item tuples so plans
        # stay frozen end to end.
        for attr in ("algorithm_kwargs", "executor_options"):
            value = getattr(self, attr)
            if isinstance(value, Mapping):
                object.__setattr__(self, attr, tuple(value.items()))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def kwargs(self) -> dict[str, Any]:
        """The algorithm constructor kwargs as a fresh dict."""
        return dict(self.algorithm_kwargs)

    def options(self) -> dict[str, Any]:
        """The executor options as a fresh dict."""
        return dict(self.executor_options)

    def decision(self, name: str) -> Decision | None:
        """The decision named ``name``, or ``None``."""
        for decision in self.decisions:
            if decision.name == name:
                return decision
        return None

    @property
    def estimated_cost(self) -> float | None:
        """Model-unit cost of the chosen algorithm, when estimated."""
        decision = self.decision("algorithm")
        if decision is None or decision.cost is None:
            return None
        return decision.cost.total

    @property
    def kernel_backend(self) -> str | None:
        """The kernel backend the plan was made against, when recorded.

        ``None`` for plans predating the kernel layer (e.g. deserialized
        from old JSON) — executors then run on the process default.
        """
        decision = self.decision("kernel")
        return decision.choice if decision is not None else None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            # Item-pair lists, not dicts: round-trips keep insertion order
            # even under sort_keys serialization.
            "algorithm_kwargs": [[k, v] for k, v in self.algorithm_kwargs],
            "executor": self.executor,
            "executor_options": [[k, v] for k, v in self.executor_options],
            "workload": self.workload.to_dict(),
            "decisions": [decision.to_dict() for decision in self.decisions],
            "pinned": self.pinned,
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Plan":
        kwargs = payload.get("algorithm_kwargs", ())
        options = payload.get("executor_options", ())
        return cls(
            algorithm=payload["algorithm"],
            algorithm_kwargs=tuple(
                (k, v) for k, v in
                (kwargs.items() if isinstance(kwargs, Mapping) else kwargs)
            ),
            executor=payload.get("executor", "inline"),
            executor_options=tuple(
                (k, v) for k, v in
                (options.items() if isinstance(options, Mapping) else options)
            ),
            workload=Workload.from_dict(payload.get("workload", {})),
            decisions=tuple(Decision.from_dict(d) for d in payload.get("decisions", ())),
            pinned=bool(payload.get("pinned", False)),
        )

    @classmethod
    def from_json(cls, text: str) -> "Plan":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # EXPLAIN rendering
    # ------------------------------------------------------------------
    def explain(self) -> str:
        """Render the plan as an EXPLAIN-style decision tree.

        Every decision is one branch; its cost estimate (when modelled)
        and every rejected alternative — with *its* estimate — are listed
        beneath it, so "why not X?" is answerable from the output alone.
        """
        mode = self.workload.mode
        header = f"Plan: {self.algorithm} via {self.executor} executor [{mode}]"
        if self.pinned:
            header += " (pinned)"
        lines = [header]
        for i, decision in enumerate(self.decisions):
            last = i == len(self.decisions) - 1
            branch = "└─" if last else "├─"
            stem = "   " if last else "│  "
            cost = _fmt_cost(decision.cost)
            suffix = f"  {cost}" if cost else ""
            lines.append(f"{branch} {decision.name} = {decision.choice}{suffix}")
            lines.append(f"{stem}   {decision.reason}")
            for key, value in decision.detail:
                lines.append(f"{stem}   {key} = {value}")
            for alt in decision.rejected:
                alt_cost = _fmt_cost(alt.cost)
                alt_suffix = f"  {alt_cost}" if alt_cost else ""
                lines.append(f"{stem}   rejected: {alt.choice}{alt_suffix}  — {alt.reason}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<Plan {self.algorithm} executor={self.executor} "
            f"mode={self.workload.mode} pinned={self.pinned}>"
        )
