"""Per-algorithm cost profiles: the planner's view of the registry.

Each registry algorithm gets a :class:`CostProfile`: family metadata, its
eligibility for automatic selection, and an estimator that maps
``(RelationStats, RelationStats, bits)`` to a :class:`~repro.planner.plan.
CostEstimate` in *model units* (expected elementary operations, the
currency of the paper's Sec. III-C analysis).

The PTSJ estimator is exactly :func:`repro.signatures.cost_model.
estimate_ptsj_cost` — the paper's closed-form ``C_create + C_query +
C_compare`` decomposition.  The other estimators extend the same framing
to the rest of the registry:

* **TSJ** shares PTSJ's filter-and-verify shape but walks an uncompressed
  binary trie, so its per-query node visits scale with the signature
  length rather than the Patricia height (Sec. III-B vs. Algorithm 4).
* **SHJ** enumerates the subset space of each probe signature —
  exponential in the effective signature population (Sec. II), which is
  why the paper caps it at tiny ``b``.
* **PRETTI / PRETTI+** pay inverted-list intersections: per probe tuple,
  one list per element with expected length ``|S|·c/d``; the Patricia
  variant shares prefixes, discounting repeated intersection work
  (Terrovitis et al., the PRETTI build-vs-probe framing).
* **Nested loop** is the oracle: no build, ``|R|·|S|`` exact checks.

Model units are directly comparable within one algorithm (that is how the
signature-length sweet spot is found) and *calibrated* across families:
the PTSJ/PRETTI+ decision boundary itself follows the paper's empirically
validated regime rule (Sec. V-C3/V-C5), with the model costs recorded so
disagreement between model and regime rule is visible in ``explain``
output rather than silently resolved.  See ``docs/PLANNER.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.planner.plan import CostEstimate
from repro.relations.stats import RelationStats
from repro.signatures.cost_model import (
    estimate_ptsj_cost,
    expected_candidates,
    expected_trie_height,
)

__all__ = [
    "CostProfile",
    "COST_PROFILES",
    "KERNEL_PROBE_DISCOUNT",
    "cost_profile",
    "estimate_cost",
]

#: Exponent cap: beyond this the estimate is "infeasible", kept finite so
#: comparisons and serialization stay well-behaved.
_MAX_COST = 1e30

#: Per-backend probe-cost multipliers by profile family.  The base
#: estimators are calibrated against the pure-Python kernels; a vectorized
#: backend discounts the probe side where its batch kernels actually land:
#: the ``signature`` family's probe cost is dominated by the batched
#: ``⊑`` filter (the kernel-speedup bench gates numpy at ≥2x there, hence
#: 0.5), the ``inverted`` family only accelerates large posting-list
#: intersections (small lists fall back to the merge kernel), and the
#: ``oracle`` family does exact set comparisons no kernel touches.
#: Unlisted backends/families default to 1.0 (no discount claimed).
KERNEL_PROBE_DISCOUNT: dict[str, dict[str, float]] = {
    "python": {},
    "numpy": {
        "signature": 0.5,
        "inverted": 0.85,
        "experimental": 0.9,
    },
}


def _clamp(value: float) -> float:
    return min(value, _MAX_COST)


def _sizes(r: RelationStats, s: RelationStats) -> tuple[int, int, float, float]:
    """Degeneracy-guarded sizes and cardinalities for the estimators."""
    return (
        max(r.size, 1),
        max(s.size, 1),
        max(r.avg_cardinality, 1.0),
        max(s.avg_cardinality, 1.0),
    )


def _ptsj(r: RelationStats, s: RelationStats, bits: int) -> CostEstimate:
    r_size, s_size, _, c = _sizes(r, s)
    est = estimate_ptsj_cost(r_size, s_size, c, bits)
    return CostEstimate(build=est.create_cost, probe=est.query_cost + est.compare_cost)


def _tsj(r: RelationStats, s: RelationStats, bits: int) -> CostEstimate:
    r_size, s_size, _, c = _sizes(r, s)
    est = estimate_ptsj_cost(r_size, s_size, c, bits)
    # No path compression: the walk descends bit-by-bit instead of
    # Patricia-height-by-height, inflating visits by ~ b / H.
    height = max(expected_trie_height(s_size), 1.0)
    inflation = max(bits / height, 1.0)
    return CostEstimate(
        build=est.create_cost,
        probe=_clamp(est.query_cost * inflation + est.compare_cost),
    )


def _shj(r: RelationStats, s: RelationStats, bits: int) -> CostEstimate:
    r_size, s_size, c_r, c_s = _sizes(r, s)
    # Subset enumeration over each probe signature: ~2^(set bits).  The
    # effective population is min(c_r, b); the paper's Sec. II point is
    # that this explodes long before b reaches PTSJ's thousands of bits.
    population = min(c_r, float(bits), 64.0)
    enumeration = r_size * _clamp(2.0 ** population)
    candidates = expected_candidates(s_size, c_s, c_r, bits)
    return CostEstimate(
        build=float(s_size) * bits,
        probe=_clamp(enumeration + candidates * c_s * r_size),
    )


def _pretti(r: RelationStats, s: RelationStats, bits: int) -> CostEstimate:
    r_size, _, c_r, _ = _sizes(r, s)
    list_length = max(s.avg_list_length, 0.0)
    # Per probe tuple: intersect one posting list per element.
    return CostEstimate(
        build=float(max(s.total_elements, 1)),
        probe=_clamp(r_size * c_r * max(list_length, 1.0)),
    )


def _pretti_plus(r: RelationStats, s: RelationStats, bits: int) -> CostEstimate:
    base = _pretti(r, s, bits)
    # The Patricia trie over S's sorted sets shares prefixes: common
    # prefixes are intersected once instead of once per tuple, and
    # duplicate sets collapse entirely (Sec. IV).  The discount grows
    # with the duplicate fraction; 0.6 is the prefix-sharing baseline.
    discount = 0.6 * (1.0 - s.duplicate_fraction) + 0.1 * s.duplicate_fraction
    return CostEstimate(
        build=base.build + 2.0 * max(s.size, 1),
        probe=_clamp(base.probe * discount),
    )


def _nested_loop(r: RelationStats, s: RelationStats, bits: int) -> CostEstimate:
    r_size, s_size, _, c_s = _sizes(r, s)
    return CostEstimate(build=0.0, probe=_clamp(float(r_size) * s_size * c_s))


def _mwtsj(r: RelationStats, s: RelationStats, bits: int) -> CostEstimate:
    # Multiway TSJ batches probes through the trie; model as TSJ with a
    # shared-traversal discount.
    base = _tsj(r, s, bits)
    return CostEstimate(build=base.build, probe=_clamp(base.probe * 0.5))


def _trie_trie(r: RelationStats, s: RelationStats, bits: int) -> CostEstimate:
    # Trie-vs-trie join builds tries on BOTH sides, then co-traverses.
    r_size, s_size, c_r, c_s = _sizes(r, s)
    est = estimate_ptsj_cost(r_size, s_size, c_s, bits)
    return CostEstimate(
        build=_clamp(float(r_size) * bits + s_size * bits),
        probe=_clamp(est.query_cost + est.compare_cost),
    )


@dataclass(frozen=True)
class CostProfile:
    """Planner-facing metadata for one registry algorithm.

    Attributes:
        name: Registry name.
        family: ``signature`` (filter-and-verify), ``inverted``
            (intersection-based, verification-free), ``oracle``
            (exhaustive) or ``experimental`` (Sec. VI future work).
        auto_eligible: Whether the planner may choose it automatically.
            Only the paper's two production algorithms are; everything
            else is still *estimated* (so it shows up, costed, among the
            rejected alternatives) but never auto-chosen.
        reject_reason: Stock justification when not auto-eligible.
        uses_signature: Whether the ``bits`` parameter is meaningful.
        estimator: ``(r_stats, s_stats, bits) -> CostEstimate``.
    """

    name: str
    family: str
    auto_eligible: bool
    reject_reason: str
    uses_signature: bool
    estimator: Callable[[RelationStats, RelationStats, int], CostEstimate]

    def estimate(self, r: RelationStats, s: RelationStats, bits: int) -> CostEstimate:
        """Evaluate this algorithm's model at one configuration."""
        return self.estimator(r, s, bits)

    def kernel_probe_factor(self, backend: str) -> float:
        """This family's probe-cost multiplier under ``backend`` kernels."""
        return KERNEL_PROBE_DISCOUNT.get(backend, {}).get(self.family, 1.0)

    def estimate_for_backend(
        self, r: RelationStats, s: RelationStats, bits: int, backend: str
    ) -> CostEstimate:
        """The model estimate with the backend's probe discount applied.

        Build cost is backend-independent (index construction is plain
        Python either way; signature packing is a small additive term the
        model ignores); only probe work rides the batch kernels.
        """
        base = self.estimate(r, s, bits)
        factor = self.kernel_probe_factor(backend)
        if factor == 1.0:
            return base
        return CostEstimate(build=base.build, probe=_clamp(base.probe * factor))

    def estimate_sharded(
        self,
        r: RelationStats,
        s: RelationStats,
        bits: int,
        shards: int,
        workers: int,
        strategy: str = "element",
    ) -> CostEstimate:
        """Cost this algorithm run by the sharded executor.

        The model starts from the single-process estimate and applies the
        sharding geometry:

        * **fanout** — how many shards each probe record visits.  Element
          routing sends a probe with ``c_r`` elements to its distinct
          residues: expected ``n·(1 − (1 − 1/n)^c_r)`` of ``n`` shards
          (coupon-collector form).  Signature placement broadcasts, so
          fanout is ``n``.
        * **probe scaling** — each visited shard holds ~``1/n`` of the
          index, so total probe work scales by ``fanout / n``: element
          routing *skips* index fractions no subset can live in, while a
          broadcast does the full work once per shard.
        * **skew penalty** — element placement keys on ``min(s)``, so a
          skewed element distribution piles sets onto few shards; the
          indexed side's cardinality skew is the proxy, capped at 2x.
          Signature placement hashes uniformly and takes no penalty.
        * **parallelism** — builds and probes proceed concurrently on
          ``min(workers, shards)`` processes.

        The planner feeds this into the executor decision and surfaces
        the inputs in ``plan.explain()``.
        """
        base = self.estimate(r, s, bits)
        shards = max(shards, 1)
        parallelism = max(min(workers, shards), 1)
        c_r = max(r.avg_cardinality, 1.0)
        if strategy == "signature":
            fanout = float(shards)
            skew_penalty = 1.0
        else:
            fanout = shards * (1.0 - (1.0 - 1.0 / shards) ** c_r) if shards > 1 else 1.0
            skew = s.cardinality_skew
            skew_penalty = 2.0 if skew == float("inf") else min(2.0, max(1.0, skew))
        return CostEstimate(
            build=_clamp(base.build / parallelism),
            probe=_clamp(base.probe * (fanout / shards) * skew_penalty / parallelism),
        )


#: One profile per registry algorithm (kept in sync by tests).
COST_PROFILES: dict[str, CostProfile] = {
    "ptsj": CostProfile(
        "ptsj", "signature", True, "", True, _ptsj,
    ),
    "pretti+": CostProfile(
        "pretti+", "inverted", True, "", False, _pretti_plus,
    ),
    "pretti": CostProfile(
        "pretti", "inverted", False,
        "superseded by pretti+ (Patricia trie halves its memory, Sec. IV)",
        False, _pretti,
    ),
    "shj": CostProfile(
        "shj", "signature", False,
        "exponential subset enumeration caps its signature length (Sec. II)",
        True, _shj,
    ),
    "tsj": CostProfile(
        "tsj", "signature", False,
        "uncompressed trie: dominated by ptsj at every b (Sec. III-B)",
        True, _tsj,
    ),
    "nested-loop": CostProfile(
        "nested-loop", "oracle", False,
        "exhaustive oracle, kept for verification only",
        False, _nested_loop,
    ),
    "mwtsj": CostProfile(
        "mwtsj", "experimental", False,
        "experimental Sec. VI direction, not auto-selected",
        True, _mwtsj,
    ),
    "trie-trie": CostProfile(
        "trie-trie", "experimental", False,
        "experimental Sec. VI direction, not auto-selected",
        True, _trie_trie,
    ),
}


def cost_profile(name: str) -> CostProfile:
    """The :class:`CostProfile` registered for ``name``.

    Raises:
        KeyError: For a name without a profile.
    """
    return COST_PROFILES[name]


def estimate_cost(
    name: str, r: RelationStats, s: RelationStats, bits: int
) -> CostEstimate:
    """Shortcut: evaluate ``name``'s cost model at one configuration."""
    return COST_PROFILES[name].estimate(r, s, bits)
