"""The cost-based query planner: statistics + workload hints → a Plan.

``Planner.plan`` consumes :class:`~repro.relations.stats.RelationStats`
for both relations (never the records themselves — planning is O(1) once
statistics exist) plus a :class:`~repro.planner.plan.Workload` hint, and
emits an immutable :class:`~repro.planner.plan.Plan` with four decisions:

1. **algorithm** — which registry algorithm runs.  Every algorithm with a
   :class:`~repro.planner.profiles.CostProfile` is costed at this
   workload; automatic choice is regime-gated cost selection: only the
   paper's two production algorithms (PTSJ, PRETTI+) are auto-eligible,
   and the boundary between them follows the empirically validated regime
   rule (median cardinality vs. 2^5, Sec. V-C3/V-C5).  When the model
   units disagree with the regime rule, the plan says so instead of
   hiding it.
2. **signature** — the Sec. III-D length ``b`` the signature algorithms
   will derive, annotated with :func:`~repro.signatures.cost_model.
   estimate_ptsj_cost` evaluations at ``b`` and at the rejected
   neighbours ``b/2`` and ``2b`` (the Fig. 5 sweet-spot argument, run at
   plan time).
3. **executor** — in-process, partition-parallel (fail-fast or
   resilient), shard-partitioned scale-out, or the Sec. III-E4
   disk-partitioned nested loop, driven by the memory budget, worker and
   shard hints (see ``docs/EXECUTORS.md``).
4. **chunking** — how the work is split for the chosen executor (probe
   chunks, S-shards, or disk partitions).

Decisions carry their cost estimates and every rejected alternative, so
``plan.explain()`` renders an EXPLAIN-style tree and the bench harness
can measure planner regret after the fact.
"""

from __future__ import annotations

import math

from repro.kernels import active_backend_name, available_backends, backend_source
from repro.obs.tracer import current_tracer
from repro.planner.plan import Alternative, CostEstimate, Decision, Plan, Workload
from repro.planner.profiles import COST_PROFILES, CostProfile
from repro.relations.stats import RelationStats
from repro.signatures.length import SignatureLengthStrategy

__all__ = ["Planner"]

#: The auto-selection candidates: the paper's two production algorithms.
AUTO_CANDIDATES = ("ptsj", "pretti+")

#: The Sec. V-C3 regime boundary on the *median* set cardinality.
REGIME_MEDIAN_CARDINALITY = 32

#: Deliberately pessimistic calibration of cost-model units to wall time,
#: used only for deadline-feasibility screening: one model unit is one
#: expected elementary operation, and pure-Python traversal sustains on
#: the order of a few million of them per second.  Underestimating the
#: throughput makes the planner reject only plans that are hopeless by a
#: wide margin — runtime enforcement (the governor's polls) remains the
#: authoritative bound.
MODEL_UNITS_PER_SECOND = 1e6

_EMPTY_STATS = RelationStats(0, 0.0, 0.0, 0, 0, 0, 0, 0)


class Planner:
    """Plans set-containment joins from statistics and workload hints.

    Args:
        length_strategy: The Sec. III-D signature-length rule used for the
            signature decision (defaults to the paper's parameters).
        profiles: Cost-profile registry; defaults to the package's
            :data:`~repro.planner.profiles.COST_PROFILES`.
    """

    def __init__(
        self,
        length_strategy: SignatureLengthStrategy | None = None,
        profiles: dict[str, CostProfile] | None = None,
    ) -> None:
        self.length_strategy = length_strategy or SignatureLengthStrategy()
        self.profiles = profiles if profiles is not None else COST_PROFILES

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def plan(
        self,
        r_stats: RelationStats | None,
        s_stats: RelationStats,
        workload: Workload | None = None,
        algorithm: str | None = None,
        algorithm_kwargs: dict | None = None,
    ) -> Plan:
        """Produce a :class:`Plan` for joining ``R ⋈⊇ S``.

        Args:
            r_stats: Probe-side statistics; ``None`` for a prepare-only
                workload with no probe hint (the indexed side's own
                statistics stand in, exactly as the algorithms' internal
                Sec. III-D parameter selection does).
            s_stats: Indexed-side statistics.
            workload: Usage hints; defaults to a one-shot join.
            algorithm: Pre-pinned algorithm name (already registry-
                canonical); ``None`` lets the planner choose.
            algorithm_kwargs: Constructor kwargs forwarded verbatim to the
                algorithm (pinned plans keep runs bit-for-bit identical).

        The whole call runs under a ``plan`` tracer span, so traces show
        planning time and the chosen path beside build/probe.
        """
        workload = workload or Workload()
        kwargs = dict(algorithm_kwargs or {})
        tracer = current_tracer()
        with tracer.span("plan"):
            effective_r = r_stats if r_stats is not None else s_stats
            if effective_r is None:  # pragma: no cover - s_stats is required
                effective_r = _EMPTY_STATS
            bits = self._signature_bits(r_stats, s_stats, kwargs)
            algo_decision = self._decide_algorithm(
                effective_r, s_stats, workload, bits, algorithm
            )
            chosen = algo_decision.choice
            decisions = [algo_decision]
            decisions.append(
                self._decide_signature(effective_r, s_stats, chosen, bits, kwargs)
            )
            chosen_cost = algo_decision.cost
            executor_decision, executor, executor_options = self._decide_executor(
                effective_r, s_stats, workload, chosen_cost, chosen, bits
            )
            decisions.append(executor_decision)
            chunk_decision, chunk_options = self._decide_chunking(
                effective_r, s_stats, workload, executor
            )
            decisions.append(chunk_decision)
            decisions.append(self._decide_kernel(effective_r, s_stats, chosen, bits))
            if workload.deadline_seconds is not None:
                decisions.append(self._decide_governance(workload, chosen_cost))
            executor_options.update(chunk_options)
            plan = Plan(
                algorithm=chosen,
                algorithm_kwargs=tuple(kwargs.items()),
                executor=executor,
                executor_options=tuple(executor_options.items()),
                workload=workload,
                decisions=tuple(decisions),
                pinned=algorithm is not None,
            )
            if tracer.enabled:
                tracer.count("plans")
        return plan

    # ------------------------------------------------------------------
    # Decision: algorithm
    # ------------------------------------------------------------------
    def _estimate(
        self, name: str, r: RelationStats, s: RelationStats, bits: int
    ) -> CostEstimate | None:
        profile = self.profiles.get(name)
        if profile is None:
            return None
        return profile.estimate(r, s, bits)

    def _decide_algorithm(
        self,
        r: RelationStats,
        s: RelationStats,
        workload: Workload,
        bits: int,
        pinned: str | None,
    ) -> Decision:
        estimates = {
            name: profile.estimate(r, s, bits)
            for name, profile in self.profiles.items()
        }
        if pinned is not None:
            return Decision(
                name="algorithm",
                choice=pinned,
                reason="pinned by caller; planner records but does not second-guess it",
                cost=estimates.get(pinned),
                rejected=(),
                detail=(("median_cardinality", s.median_cardinality),),
            )

        regime_pick = s.recommended_algorithm()
        median = s.median_cardinality
        comparison = "<" if median < REGIME_MEDIAN_CARDINALITY else ">="
        regime_reason = (
            f"regime rule (Sec. V-C3/V-C5): median |s.set| = {median:g} "
            f"{comparison} {REGIME_MEDIAN_CARDINALITY}"
        )
        chosen = regime_pick
        chosen_cost = estimates.get(chosen)

        rejected: list[Alternative] = []
        runner_up = next(name for name in AUTO_CANDIDATES if name != chosen)
        rejected.append(
            Alternative(
                choice=runner_up,
                reason=f"{regime_reason} favours {chosen}",
                cost=estimates.get(runner_up),
            )
        )
        for name, profile in self.profiles.items():
            if name in AUTO_CANDIDATES:
                continue
            rejected.append(
                Alternative(choice=name, reason=profile.reject_reason, cost=estimates[name])
            )
        # Cheapest-by-model among ALL estimated algorithms; surfaced so a
        # model/regime disagreement is visible rather than silently decided.
        model_pick = min(estimates, key=lambda name: estimates[name].total)
        detail: list[tuple[str, object]] = [
            ("median_cardinality", median),
            ("cardinality_skew", round(s.cardinality_skew, 3)
             if s.cardinality_skew != float("inf") else "inf"),
            ("model_cheapest", model_pick),
        ]
        if workload.mode == "probe_many" and chosen_cost is not None:
            amortised = chosen_cost.build + workload.probe_batches * chosen_cost.probe
            detail.append(("amortised_cost", round(amortised, 3)))
        return Decision(
            name="algorithm",
            choice=chosen,
            reason=f"{regime_reason}; model cost {chosen_cost.total:.3g}"
            if chosen_cost is not None else regime_reason,
            cost=chosen_cost,
            rejected=tuple(rejected),
            detail=tuple(detail),
        )

    # ------------------------------------------------------------------
    # Decision: signature length
    # ------------------------------------------------------------------
    def _signature_bits(
        self,
        r: RelationStats | None,
        s: RelationStats,
        kwargs: dict,
    ) -> int:
        """The Sec. III-D length the signature algorithms will derive.

        Mirrors ``SignatureJoinBase._choose_bits`` exactly: combined R+S
        average cardinality when probe statistics exist (the one-shot
        join path), the indexed side alone otherwise, over the hash
        domain ``max_element + 1``.
        """
        explicit = kwargs.get("bits")
        if explicit is not None:
            return int(explicit)
        total = s.total_elements
        count = s.size
        max_element = s.max_element
        if r is not None:
            total += r.total_elements
            count += r.size
            max_element = max(max_element, r.max_element)
        avg_c = max(total / count, 1.0) if count else 1.0
        domain = max(max_element + 1, 1)
        return self.length_strategy.choose(avg_c, domain)

    def _decide_signature(
        self,
        r: RelationStats,
        s: RelationStats,
        algorithm: str,
        bits: int,
        kwargs: dict,
    ) -> Decision:
        profile = self.profiles.get(algorithm)
        if profile is not None and not profile.uses_signature:
            return Decision(
                name="signature",
                choice="none",
                reason=f"{algorithm} is intersection-based: exact inverted-list "
                       "results, no signature filter to size",
            )
        explicit = kwargs.get("bits")
        cost_at = lambda b: self._estimate(algorithm, r, s, b)  # noqa: E731
        if explicit is not None:
            derived = self._signature_bits(r, s, {})
            return Decision(
                name="signature",
                choice=f"{explicit} bits",
                reason="explicit bits pinned by caller",
                cost=cost_at(int(explicit)),
                rejected=(
                    Alternative(
                        choice=f"{derived} bits",
                        reason="Sec. III-D strategy value, overridden by caller",
                        cost=cost_at(derived),
                    ),
                ),
            )
        # The Fig. 5 sweet-spot argument evaluated at plan time: the
        # strategy's b against its halved/doubled neighbours.
        neighbours = []
        for candidate, label in ((max(bits // 2, 8), "halved"), (bits * 2, "doubled")):
            if candidate == bits:
                continue
            neighbours.append(
                Alternative(
                    choice=f"{candidate} bits",
                    reason=f"{label} signature leaves the Sec. III-D sweet spot",
                    cost=cost_at(candidate),
                )
            )
        return Decision(
            name="signature",
            choice=f"{bits} bits",
            reason="Sec. III-D strategy b = min(d, ratio*c*Int, cap); derived "
                   "in-algorithm from the same statistics at build time",
            cost=cost_at(bits),
            rejected=tuple(neighbours),
            detail=(("int_bits", self.length_strategy.int_bits),
                    ("ratio", self.length_strategy.ratio)),
        )

    # ------------------------------------------------------------------
    # Decision: executor
    # ------------------------------------------------------------------
    def _shard_count(
        self, r: RelationStats, s: RelationStats, workload: Workload
    ) -> int:
        """The S-shard count a sharded plan would use at this workload.

        An explicit hint wins; otherwise one shard per worker, raised
        until each shard's S-partition fits the memory budget (that is
        the sharded executor's answer to budget pressure: ``n`` small
        indexes instead of one big one).
        """
        if workload.shards is not None:
            return workload.shards
        shards = workload.workers
        budget = workload.memory_budget_tuples
        if budget is not None and s.size > budget:
            shards = max(shards, math.ceil(s.size / budget))
        return shards

    def _decide_executor(
        self,
        r: RelationStats,
        s: RelationStats,
        workload: Workload,
        algo_cost: CostEstimate | None,
        algorithm: str,
        bits: int,
    ) -> tuple[Decision, str, dict]:
        budget = workload.memory_budget_tuples
        total_tuples = r.size + s.size
        scaled = None
        if algo_cost is not None and workload.workers > 1:
            scaled = CostEstimate(
                build=algo_cost.build, probe=algo_cost.probe / workload.workers
            )
        profile = self.profiles.get(algorithm)
        shards = self._shard_count(r, s, workload)
        sharded_cost = (
            profile.estimate_sharded(r, s, bits, shards, workload.workers)
            if profile is not None
            else None
        )

        if workload.mode == "probe_many":
            batches = workload.probe_batches
            return (
                Decision(
                    name="executor",
                    choice="inline",
                    reason=f"prepare-once/probe-many: one index build amortised "
                           f"over {batches} probe batch(es); prepared-index "
                           "reuse, never a rebuild",
                    cost=algo_cost,
                    rejected=(
                        Alternative(
                            "parallel",
                            "parallel executors rebuild per join call; the "
                            "prepared index must outlive this plan",
                        ),
                        Alternative(
                            "sharded",
                            "shard indexes are rebuilt per join call; "
                            "incompatible with index reuse",
                        ),
                        Alternative(
                            "disk",
                            "disk partitioning re-spills per join call; "
                            "incompatible with index reuse",
                        ),
                    ),
                    detail=(("probe_batches", batches), ("reused_index", True)),
                ),
                "inline",
                {},
            )

        if workload.shards is not None:
            return (
                Decision(
                    name="executor",
                    choice="sharded",
                    reason=f"{workload.shards} S-shard(s) requested: per-shard "
                           "indexes built and probed across "
                           f"{workload.workers} worker(s), probes routed by "
                           "partition key",
                    cost=sharded_cost,
                    rejected=(
                        Alternative(
                            "inline",
                            "single-process probing ignores the shard hint",
                            cost=algo_cost,
                        ),
                        Alternative(
                            "parallel",
                            "shares one full-size index; sharding was "
                            "explicitly requested",
                            cost=scaled,
                        ),
                        Alternative(
                            "disk",
                            "sequential partition loads; shard workers probe "
                            "concurrently instead",
                        ),
                    ),
                    detail=(("shards", workload.shards),
                            ("workers", workload.workers)),
                ),
                "sharded",
                {"workers": workload.workers},
            )

        if budget is not None and total_tuples > budget:
            if workload.workers > 1:
                return (
                    Decision(
                        name="executor",
                        choice="sharded",
                        reason=f"|R| + |S| = {total_tuples} tuples exceeds the "
                               f"memory budget of {budget} and "
                               f"{workload.workers} workers are hinted: "
                               f"{shards} per-worker shard indexes of "
                               f"~{math.ceil(s.size / shards)} tuples each "
                               "fit the budget",
                        cost=sharded_cost,
                        rejected=(
                            Alternative(
                                "inline",
                                f"relations do not fit the {budget}-tuple "
                                "budget",
                            ),
                            Alternative(
                                "parallel",
                                "replicates the full index into every "
                                "worker; the budget binds",
                                cost=scaled,
                            ),
                            Alternative(
                                "disk",
                                "single-process partition loads leave "
                                "hinted workers idle",
                                cost=algo_cost,
                            ),
                        ),
                        detail=(("memory_budget_tuples", budget),
                                ("total_tuples", total_tuples),
                                ("shards", shards)),
                    ),
                    "sharded",
                    {"workers": workload.workers},
                )
            return (
                Decision(
                    name="executor",
                    choice="disk",
                    reason=f"|R| + |S| = {total_tuples} tuples exceeds the "
                           f"memory budget of {budget}; Sec. III-E4 "
                           "disk-partitioned nested loop",
                    cost=algo_cost,
                    rejected=(
                        Alternative(
                            "inline",
                            f"relations do not fit the {budget}-tuple budget",
                        ),
                        Alternative(
                            "parallel",
                            "worker pools multiply resident memory; the "
                            "budget binds first",
                            cost=scaled,
                        ),
                        Alternative(
                            "sharded",
                            "sharding needs a worker pool to pay off; one "
                            "worker hinted",
                            cost=sharded_cost,
                        ),
                    ),
                    detail=(("memory_budget_tuples", budget),
                            ("total_tuples", total_tuples)),
                ),
                "disk",
                {"max_tuples": budget},
            )

        if workload.workers > 1:
            executor = "resilient" if workload.fault_tolerance else "parallel"
            why_not_other = (
                ("parallel", "fail-fast pool rejected: the workload asks for "
                             "fault tolerance (retry/timeout/fallback)")
                if workload.fault_tolerance
                else ("resilient", "no fault-tolerance requested; fail-fast "
                                   "pool has less bookkeeping")
            )
            return (
                Decision(
                    name="executor",
                    choice=executor,
                    reason=f"{workload.workers} workers hinted: one shared "
                           "index build, probe chunks fanned out "
                           f"(~{workload.workers}x probe parallelism)",
                    cost=scaled,
                    rejected=(
                        Alternative(
                            "inline",
                            "single-process probing leaves hinted workers idle",
                            cost=algo_cost,
                        ),
                        Alternative(why_not_other[0], why_not_other[1], cost=scaled),
                        Alternative(
                            "sharded",
                            "S fits in one process: one shared index build "
                            "beats per-shard rebuilds",
                            cost=sharded_cost,
                        ),
                        Alternative("disk", "relations fit in memory"),
                    ),
                    detail=(("workers", workload.workers),),
                ),
                executor,
                {"workers": workload.workers},
            )

        return (
            Decision(
                name="executor",
                choice="inline",
                reason=f"|S| = {s.size} tuples indexes in-process; no budget "
                       "pressure and a single worker hinted",
                cost=algo_cost,
                rejected=(
                    Alternative("parallel", "workers hint is 1: pool startup "
                                            "would cost more than it saves"),
                    Alternative("sharded", "workers hint is 1 and no shard "
                                           "count requested"),
                    Alternative("disk", "no memory budget set"
                                if budget is None else
                                f"relations fit the {budget}-tuple budget"),
                ),
            ),
            "inline",
            {},
        )

    # ------------------------------------------------------------------
    # Decision: kernel backend
    # ------------------------------------------------------------------
    def _decide_kernel(
        self, r: RelationStats, s: RelationStats, algorithm: str, bits: int
    ) -> Decision:
        """Record which batch-kernel backend the probe loop will run on.

        The backend is process state (explicit ``set_default_backend`` /
        CLI ``--backend``, else ``REPRO_KERNEL``, else auto-selection),
        not something the planner chooses — but the plan records it with
        the per-backend cost constants applied, so EXPLAIN shows what
        each available backend would cost and executed stats can be
        matched against the backend the plan assumed.
        """
        chosen = active_backend_name()
        source = backend_source()
        avail = available_backends()
        profile = self.profiles.get(algorithm)
        source_text = {
            "explicit": "set explicitly (set_default_backend / --backend)",
            "env": "forced by REPRO_KERNEL",
            "auto": "auto-selected (first importable of "
                    + " > ".join(avail if avail else ("python",)) + ")",
        }.get(source, source)
        cost = (
            profile.estimate_for_backend(r, s, bits, chosen)
            if profile is not None
            else None
        )
        rejected = tuple(
            Alternative(
                choice=backend,
                reason="available; selection order is explicit > "
                       "REPRO_KERNEL > auto",
                cost=profile.estimate_for_backend(r, s, bits, backend)
                if profile is not None
                else None,
            )
            for backend in avail
            if backend != chosen
        )
        factor = profile.kernel_probe_factor(chosen) if profile is not None else 1.0
        return Decision(
            name="kernel",
            choice=chosen,
            reason=f"batch probe kernels run on the {chosen!r} backend, "
                   f"{source_text}",
            cost=cost,
            rejected=rejected,
            detail=(
                ("available", ", ".join(avail)),
                ("source", source),
                ("probe_factor", factor),
            ),
        )

    # ------------------------------------------------------------------
    # Decision: governance (only when a deadline is set)
    # ------------------------------------------------------------------
    def _decide_governance(
        self, workload: Workload, cost: CostEstimate | None
    ) -> Decision:
        """Deadline-feasibility screening for the whole plan.

        The chosen algorithm's model-unit cost, converted through the
        deliberately pessimistic :data:`MODEL_UNITS_PER_SECOND`
        calibration, is compared against the workload deadline; a plan
        whose *estimate* already cannot finish is marked infeasible, and
        :func:`~repro.planner.executor.execute_plan` refuses to start it
        (failing in microseconds instead of at the deadline).  The reason
        is EXPLAIN-visible either way.
        """
        deadline = workload.deadline_seconds
        assert deadline is not None
        estimated = cost.total / MODEL_UNITS_PER_SECOND if cost is not None else None
        feasible = estimated is None or estimated <= deadline
        detail: list[tuple[str, object]] = [
            ("deadline_seconds", deadline),
            ("feasible", feasible),
        ]
        if estimated is not None:
            detail.append(("estimated_seconds", round(estimated, 6)))
            detail.append(("model_units_per_second", MODEL_UNITS_PER_SECOND))
        if workload.max_memory_bytes is not None:
            detail.append(("max_memory_bytes", workload.max_memory_bytes))
        if not feasible:
            reason = (
                f"infeasible: the model estimates ~{estimated:.3g}s of work "
                f"(at a pessimistic {MODEL_UNITS_PER_SECOND:g} units/s) "
                f"against a {deadline:g}s deadline; execute_plan will refuse "
                "to start this plan"
            )
            choice = "infeasible"
        elif estimated is None:
            reason = (
                f"{deadline:g}s deadline enforced at runtime only: no cost "
                "model for the chosen algorithm, so feasibility cannot be "
                "pre-screened"
            )
            choice = f"deadline {deadline:g}s"
        else:
            reason = (
                f"model estimate ~{estimated:.3g}s fits the {deadline:g}s "
                "deadline; runtime polls remain the authoritative bound"
            )
            choice = f"deadline {deadline:g}s"
        return Decision(
            name="governance",
            choice=choice,
            reason=reason,
            cost=cost,
            detail=tuple(detail),
        )

    # ------------------------------------------------------------------
    # Decision: chunking
    # ------------------------------------------------------------------
    def _decide_chunking(
        self,
        r: RelationStats,
        s: RelationStats,
        workload: Workload,
        executor: str,
    ) -> tuple[Decision, dict]:
        if executor in ("parallel", "resilient"):
            chunks = workload.workers
            per_chunk = math.ceil(r.size / chunks) if r.size else 0
            return (
                Decision(
                    name="chunking",
                    choice=f"{chunks} probe chunk(s)",
                    reason="one chunk per worker: chunks are retried/failed "
                           "independently, and R ⋈⊇ S = ∪ᵢ (Rᵢ ⋈⊇ S)",
                    detail=(("chunks", chunks), ("tuples_per_chunk", per_chunk)),
                ),
                {"chunks": chunks},
            )
        if executor == "sharded":
            shards = self._shard_count(r, s, workload)
            per_shard = math.ceil(s.size / shards) if s.size else 0
            c_r = max(r.avg_cardinality, 1.0)
            fanout = (
                shards * (1.0 - (1.0 - 1.0 / shards) ** c_r) if shards > 1 else 1.0
            )
            return (
                Decision(
                    name="chunking",
                    choice=f"{shards} S-shard(s), element partitioning",
                    reason="s lives in shard min(s) mod n; s ⊆ r implies "
                           "min(s) ∈ r, so routing each probe to its element "
                           "residues reaches every possible subset",
                    detail=(("shards", shards),
                            ("tuples_per_shard", per_shard),
                            ("expected_probe_fanout", round(fanout, 3))),
                    rejected=(
                        Alternative(
                            "signature partitioning",
                            "uniform hash placement is skew-immune but must "
                            "broadcast every probe to all shards",
                        ),
                    ),
                ),
                {"shards": shards, "strategy": "element"},
            )
        if executor == "disk":
            budget = workload.memory_budget_tuples or max(r.size + s.size, 1)
            r_parts = max(1, math.ceil(r.size / budget)) if r.size else 1
            s_parts = max(1, math.ceil(s.size / budget)) if s.size else 1
            return (
                Decision(
                    name="chunking",
                    choice=f"{r_parts}x{s_parts} partition pairs",
                    reason="block nested loop over spilled partitions; "
                           "partition loads grow quadratically (Sec. III-E4)",
                    detail=(("r_partitions", r_parts), ("s_partitions", s_parts),
                            ("partition_loads", r_parts * s_parts + s_parts)),
                ),
                {},
            )
        return (
            Decision(
                name="chunking",
                choice="single batch",
                reason="in-process execution probes the whole relation in one "
                       "streamed batch",
                detail=(("probe_tuples", r.size),),
            ),
            {},
        )
