"""Cost-based query planner: one plan → execute path for every join.

The planner separates *deciding* how a set-containment join should run
from *running* it:

* :class:`Planner` consumes :class:`~repro.relations.stats.RelationStats`
  plus a :class:`Workload` hint and emits an immutable, serializable
  :class:`Plan` — chosen algorithm, signature length, executor and
  chunking, each decision carrying cost estimates and the rejected
  alternatives, so :meth:`Plan.explain` renders an EXPLAIN-style tree;
* :func:`execute_plan` / :func:`prepare_from_plan` turn a plan into work.

The registry's :func:`~repro.core.registry.set_containment_join` and
:func:`~repro.core.registry.prepare_index` are implemented on top of this
package; see ``docs/PLANNER.md`` for the decision table and cost model.
"""

from repro.planner.executor import execute_plan, policy_from_workload, prepare_from_plan
from repro.planner.plan import (
    EXECUTORS,
    JOIN_VARIANTS,
    WORKLOAD_MODES,
    Alternative,
    CostEstimate,
    Decision,
    Plan,
    Workload,
)
from repro.planner.planner import AUTO_CANDIDATES, Planner
from repro.planner.profiles import (
    COST_PROFILES,
    CostProfile,
    cost_profile,
    estimate_cost,
)

__all__ = [
    "Planner",
    "Plan",
    "Workload",
    "Decision",
    "Alternative",
    "CostEstimate",
    "CostProfile",
    "COST_PROFILES",
    "AUTO_CANDIDATES",
    "EXECUTORS",
    "WORKLOAD_MODES",
    "JOIN_VARIANTS",
    "cost_profile",
    "estimate_cost",
    "execute_plan",
    "policy_from_workload",
    "prepare_from_plan",
]
