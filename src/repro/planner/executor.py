"""Plan execution: the one place a :class:`~repro.planner.plan.Plan` runs.

``execute_plan`` dispatches on ``plan.executor`` and otherwise forwards
the plan's recorded kwargs verbatim:

* ``inline`` — ``make_algorithm(name, **kwargs).join(r, s)``, byte-for-
  byte the classic path, so pinned plans reproduce explicit-algorithm
  runs exactly (same ``JoinStats``, same pair order);
* ``parallel`` / ``resilient`` — the Sec. VI partition-parallel
  executors, index built once and probe chunks fanned out;
* ``disk`` — the Sec. III-E4 disk-partitioned block nested loop.

``prepare_from_plan`` covers the probe-many side: it returns the plan's
algorithm as a reusable :class:`~repro.core.base.PreparedIndex`.

Executor classes are imported lazily inside the dispatch functions: the
planner package stays importable without dragging in multiprocessing or
spill machinery, and no import cycle with :mod:`repro.core.registry`
(which the parallel executors import) can form.
"""

from __future__ import annotations

from repro.analysis.sanitizer import maybe_check_plan
from repro.core.base import JoinResult, PreparedIndex
from repro.errors import PlanError
from repro.planner.plan import Plan
from repro.relations.relation import Relation

__all__ = ["execute_plan", "prepare_from_plan"]


def execute_plan(plan: Plan, r: Relation, s: Relation) -> JoinResult:
    """Run ``plan`` against concrete relations.

    Args:
        plan: A plan from :class:`repro.planner.Planner` (or deserialized
            via :meth:`Plan.from_json` — plans are a stable contract).
        r: Probe relation (containing side).
        s: Indexed relation (contained side).

    Raises:
        PlanError: If the plan names an executor this build cannot run
            (only possible for hand-built plans; ``Plan.__post_init__``
            validates planner output).
    """
    maybe_check_plan(plan)
    if plan.executor == "inline":
        from repro.core.registry import make_algorithm

        return make_algorithm(plan.algorithm, **plan.kwargs()).join(r, s)
    if plan.executor == "parallel":
        from repro.future.parallel import ParallelJoin

        return ParallelJoin.from_plan(plan).join(r, s)
    if plan.executor == "resilient":
        from repro.future.resilient import ResilientParallelJoin

        return ResilientParallelJoin.from_plan(plan).join(r, s)
    if plan.executor == "disk":
        from repro.external.disk_join import DiskPartitionedJoin

        return DiskPartitionedJoin.from_plan(plan).join(r, s)
    raise PlanError(
        f"plan names unknown executor {plan.executor!r}"
    )  # pragma: no cover - Plan.__post_init__ rejects these


def prepare_from_plan(
    plan: Plan, s: Relation, probe_hint: Relation | None = None
) -> PreparedIndex:
    """Build the reusable index a probe-many plan describes.

    Every executor prepares the same in-memory index here — the prepared-
    index API is inherently in-process (the index must outlive the call),
    which is exactly why the planner routes ``probe_many`` workloads to
    the inline executor.
    """
    from repro.core.registry import make_algorithm

    return make_algorithm(plan.algorithm, **plan.kwargs()).prepare(
        s, probe_hint=probe_hint
    )
