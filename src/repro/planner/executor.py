"""Plan execution: the one place a :class:`~repro.planner.plan.Plan` runs.

``execute_plan`` resolves ``plan.executor`` through the
:mod:`repro.exec` registry (:func:`repro.exec.executor_class`) and runs
``cls.from_plan(plan).join(r, s)`` — one uniform path for every
executor, no per-class branches.  The plan's recorded executor options
and algorithm kwargs are forwarded verbatim by each class's
``from_plan``, so pinned plans keep reproducing exactly (the ``inline``
executor is byte-for-byte the classic
``make_algorithm(name, **kwargs).join(r, s)`` call).

``prepare_from_plan`` covers the probe-many side: it returns the plan's
algorithm as a reusable :class:`~repro.core.base.PreparedIndex`.

:mod:`repro.exec` is imported lazily inside the dispatch functions: the
planner package stays importable without dragging in multiprocessing or
spill machinery, and no import cycle with :mod:`repro.core.registry`
(which the executors import) can form.
"""

from __future__ import annotations

from repro.analysis.sanitizer import maybe_check_plan
from repro.core.base import JoinResult, PreparedIndex
from repro.errors import DeadlineExceededError
from repro.governance.deadline import Deadline
from repro.governance.policy import GovernancePolicy, current_policy, govern
from repro.planner.plan import Plan
from repro.relations.relation import Relation

__all__ = ["execute_plan", "prepare_from_plan", "policy_from_workload"]


def policy_from_workload(plan: Plan) -> GovernancePolicy | None:
    """The governance policy a plan's workload hints describe, or ``None``.

    The deadline clock starts *here* — at execution, not at plan time —
    so a plan can be built, serialized and executed later without the
    elapsed interval counting against its budget.
    """
    workload = plan.workload
    if workload.deadline_seconds is None and workload.max_memory_bytes is None:
        return None
    deadline = (
        Deadline.after(workload.deadline_seconds)
        if workload.deadline_seconds is not None
        else None
    )
    return GovernancePolicy(
        deadline=deadline, memory_budget_bytes=workload.max_memory_bytes
    )


def execute_plan(plan: Plan, r: Relation, s: Relation) -> JoinResult:
    """Run ``plan`` against concrete relations.

    A plan whose governance decision screened it infeasible (model
    estimate exceeds the workload deadline) is refused outright.  When
    the workload carries governance hints (``deadline_seconds``,
    ``max_memory_bytes``) and no policy is already active, one is
    installed for the duration of the join so every executor's loops
    poll; an ambient policy installed by the caller always wins.

    Args:
        plan: A plan from :class:`repro.planner.Planner` (or deserialized
            via :meth:`Plan.from_json` — plans are a stable contract).
        r: Probe relation (containing side).
        s: Indexed relation (contained side).

    Raises:
        PlanError: If the plan names an executor this build cannot run
            (only possible for hand-built plans; ``Plan.__post_init__``
            validates planner output).
        DeadlineExceededError: If the plan was screened infeasible for
            its own deadline at plan time.
    """
    maybe_check_plan(plan)
    governance = plan.decision("governance")
    if governance is not None and not governance.detail_dict().get("feasible", True):
        raise DeadlineExceededError(
            f"plan refused before execution: {governance.reason}"
        )
    from repro.exec import executor_class

    executor = executor_class(plan.executor).from_plan(plan)
    if current_policy() is None:
        policy = policy_from_workload(plan)
        if policy is not None:
            with govern(policy):
                return executor.join(r, s)
    return executor.join(r, s)


def prepare_from_plan(
    plan: Plan, s: Relation, probe_hint: Relation | None = None
) -> PreparedIndex:
    """Build the reusable index a probe-many plan describes.

    Every executor prepares the same in-memory index here — the prepared-
    index API is inherently in-process (the index must outlive the call),
    which is exactly why the planner routes ``probe_many`` workloads to
    the inline executor.
    """
    from repro.core.registry import make_algorithm

    return make_algorithm(plan.algorithm, **plan.kwargs()).prepare(
        s, probe_hint=probe_hint
    )
