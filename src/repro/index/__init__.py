"""Inverted-file indexing (PRETTI/PRETTI+ substrate)."""

from repro.index.inverted import InvertedIndex, intersect_sorted

__all__ = ["InvertedIndex", "intersect_sorted"]
