"""Inverted index over a set-valued relation (paper Sec. II-B).

PRETTI and PRETTI+ index the *probe* relation ``R`` with an inverted file:
for each element ``e``, the ascending list of ids of R-tuples whose set
contains ``e``.  During the trie traversal, the running candidate list is
intersected with one inverted list per trie element; intersections dominate
PRETTI's running time, so the intersection routes through the swappable
kernel layer (:mod:`repro.kernels`), whose pure-Python backend carries the
adaptive merge / galloping (exponential-search) strategy this module
originally implemented.

Under the build-once/probe-many split the inverted file is *probe-batch
state*, not part of the prepared index: each ``probe_many`` batch builds
one inverted file over its own probe relation, while the S-side trie is
built once and reused across batches.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.sanitizer import maybe_check_inverted_index
from repro.kernels import get_backend
from repro.kernels.python_backend import (
    GALLOP_RATIO as _GALLOP_RATIO,
    gallop_intersect as _gallop_intersect,
    merge_intersect as _merge_intersect,
)
from repro.relations.relation import Relation

__all__ = ["InvertedIndex", "intersect_sorted"]


def intersect_sorted(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Intersect two ascending integer lists via the active kernel backend.

    The adaptive merge/galloping crossover (and any vectorized
    alternative) lives in :mod:`repro.kernels`; this module-level
    function dispatches to the process-default backend.  All backends
    return identical lists for the strictly-increasing inputs this
    package produces.

    >>> intersect_sorted([1, 3, 5], [2, 3, 4, 5])
    [3, 5]
    """
    return get_backend().intersect_sorted(a, b)


class InvertedIndex:
    """Element -> ascending tuple-id list, over one relation.

    Args:
        relation: The relation to index (``R`` in PRETTI's formulation).

    The index also keeps :attr:`all_ids` — the ascending list of every
    tuple id — which seeds the running candidate list at the trie root
    (every R-tuple contains the empty prefix).
    """

    __slots__ = ("lists", "all_ids", "_intersections", "_kernel")

    def __init__(self, relation: Relation) -> None:
        lists: dict[int, list[int]] = {}
        all_ids: list[int] = []
        for rec in relation:
            all_ids.append(rec.rid)
            for element in rec.elements:
                bucket = lists.get(element)
                if bucket is None:
                    lists[element] = [rec.rid]
                else:
                    bucket.append(rec.rid)
        # Relation iteration order need not be ascending in rid.
        all_ids.sort()
        for bucket in lists.values():
            bucket.sort()
        self.lists = lists
        self.all_ids = all_ids
        self._intersections = 0
        # Captured once: refine() is the PRETTI hot loop, and the index is
        # probe-batch state, so the backend active at construction applies
        # to the whole batch.
        self._kernel = get_backend()
        maybe_check_inverted_index(self)

    def __len__(self) -> int:
        """Number of distinct indexed elements."""
        return len(self.lists)

    def __contains__(self, element: int) -> bool:
        return element in self.lists

    def postings(self, element: int) -> list[int]:
        """The ascending id list for ``element`` (empty if unseen)."""
        return self.lists.get(element, [])

    def refine(self, current: Sequence[int], element: int) -> list[int]:
        """One PRETTI refinement step: ``current ∩ postings(element)``.

        This is the ``child_list = current_list ∩ idx[c.label]`` of the
        paper's Algorithm 3, counted in :attr:`intersection_count`.
        """
        self._intersections += 1
        bucket = self.lists.get(element)
        if bucket is None:
            return []
        return self._kernel.intersect_sorted(current, bucket)

    def refine_many(self, current: Sequence[int], elements: Iterable[int]) -> list[int]:
        """Refine by several elements in sequence (PRETTI+ node prefixes).

        Elements are refined in ascending posting-list length, so the
        cheapest list drives the candidate set down first (and an
        element with no postings empties it immediately).
        """
        lists = self.lists
        ordered = sorted(elements, key=lambda e: len(lists.get(e, ())))
        result = list(current)
        for element in ordered:
            if not result:
                break
            result = self.refine(result, element)
        return result

    @property
    def intersection_count(self) -> int:
        """Number of :meth:`refine` calls performed so far."""
        return self._intersections

    def average_list_length(self) -> float:
        """Mean postings-list length — shrinks as domain cardinality grows,
        which is why PRETTI/PRETTI+ get *faster* with larger domains
        (paper Fig. 6b)."""
        if not self.lists:
            return 0.0
        return sum(len(v) for v in self.lists.values()) / len(self.lists)
