"""Inverted index over a set-valued relation (paper Sec. II-B).

PRETTI and PRETTI+ index the *probe* relation ``R`` with an inverted file:
for each element ``e``, the ascending list of ids of R-tuples whose set
contains ``e``.  During the trie traversal, the running candidate list is
intersected with one inverted list per trie element; intersections dominate
PRETTI's running time, so this module provides an adaptive merge /
galloping (exponential-search) intersection over sorted lists.

Under the build-once/probe-many split the inverted file is *probe-batch
state*, not part of the prepared index: each ``probe_many`` batch builds
one inverted file over its own probe relation, while the S-side trie is
built once and reused across batches.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Sequence

from repro.analysis.sanitizer import maybe_check_inverted_index
from repro.relations.relation import Relation

__all__ = ["InvertedIndex", "intersect_sorted"]

# Below this length ratio the plain linear merge wins over galloping.
_GALLOP_RATIO = 8


def _gallop_intersect(small: Sequence[int], large: Sequence[int]) -> list[int]:
    """Intersect two ascending lists where ``small`` is much shorter.

    For each item of ``small``, binary-search ``large`` within a window that
    only moves forward — O(|small| * log |large|).
    """
    out: list[int] = []
    lo = 0
    hi = len(large)
    for value in small:
        lo = bisect_left(large, value, lo, hi)
        if lo == hi:
            break
        if large[lo] == value:
            out.append(value)
            lo += 1
    return out


def _merge_intersect(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Classic two-pointer merge intersection of ascending lists."""
    out: list[int] = []
    i = j = 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        x, y = a[i], b[j]
        if x == y:
            out.append(x)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return out


def intersect_sorted(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Intersect two ascending integer lists, picking merge vs galloping.

    Adaptive strategy: when the lists are within a factor ``8`` of each
    other in length, the linear merge is faster; otherwise the galloping
    search on the longer list wins.

    >>> intersect_sorted([1, 3, 5], [2, 3, 4, 5])
    [3, 5]
    """
    if not a or not b:
        return []
    if len(a) > len(b):
        a, b = b, a
    if len(b) > _GALLOP_RATIO * len(a):
        return _gallop_intersect(a, b)
    return _merge_intersect(a, b)


class InvertedIndex:
    """Element -> ascending tuple-id list, over one relation.

    Args:
        relation: The relation to index (``R`` in PRETTI's formulation).

    The index also keeps :attr:`all_ids` — the ascending list of every
    tuple id — which seeds the running candidate list at the trie root
    (every R-tuple contains the empty prefix).
    """

    __slots__ = ("lists", "all_ids", "_intersections")

    def __init__(self, relation: Relation) -> None:
        lists: dict[int, list[int]] = {}
        all_ids: list[int] = []
        for rec in relation:
            all_ids.append(rec.rid)
            for element in rec.elements:
                bucket = lists.get(element)
                if bucket is None:
                    lists[element] = [rec.rid]
                else:
                    bucket.append(rec.rid)
        # Relation iteration order need not be ascending in rid.
        all_ids.sort()
        for bucket in lists.values():
            bucket.sort()
        self.lists = lists
        self.all_ids = all_ids
        self._intersections = 0
        maybe_check_inverted_index(self)

    def __len__(self) -> int:
        """Number of distinct indexed elements."""
        return len(self.lists)

    def __contains__(self, element: int) -> bool:
        return element in self.lists

    def postings(self, element: int) -> list[int]:
        """The ascending id list for ``element`` (empty if unseen)."""
        return self.lists.get(element, [])

    def refine(self, current: Sequence[int], element: int) -> list[int]:
        """One PRETTI refinement step: ``current ∩ postings(element)``.

        This is the ``child_list = current_list ∩ idx[c.label]`` of the
        paper's Algorithm 3, counted in :attr:`intersection_count`.
        """
        self._intersections += 1
        bucket = self.lists.get(element)
        if bucket is None:
            return []
        return intersect_sorted(current, bucket)

    def refine_many(self, current: Sequence[int], elements: Iterable[int]) -> list[int]:
        """Refine by several elements in sequence (PRETTI+ node prefixes)."""
        result = list(current)
        for element in elements:
            if not result:
                break
            result = self.refine(result, element)
        return result

    @property
    def intersection_count(self) -> int:
        """Number of :meth:`refine` calls performed so far."""
        return self._intersections

    def average_list_length(self) -> float:
        """Mean postings-list length — shrinks as domain cardinality grows,
        which is why PRETTI/PRETTI+ get *faster* with larger domains
        (paper Fig. 6b)."""
        if not self.lists:
            return 0.0
        return sum(len(v) for v in self.lists.values()) / len(self.lists)
