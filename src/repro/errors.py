"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Each subclass marks
one failure domain (invalid relation data, bad signature configuration,
malformed trie operations, data-generation misconfiguration, external-memory
failures) so error handling can stay precise without string matching.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class RelationError(ReproError):
    """Invalid relation content (e.g. negative element ids, bad record ids)."""


class SignatureError(ReproError):
    """Invalid signature configuration or operand (e.g. non-positive length)."""


class TrieError(ReproError):
    """Invalid trie operation (e.g. inserting a signature of the wrong width)."""


class DataGenError(ReproError):
    """Invalid synthetic data-generation configuration."""


class ExternalMemoryError(ReproError, ValueError):
    """Failure in the disk-based partitioned join (I/O, partition sizing).

    Also a :class:`ValueError`: invalid partition sizing is an invalid
    argument, and every executor option error is catchable uniformly as
    ``ValueError`` (see :mod:`repro.core.options`).
    """


class AlgorithmError(ReproError, ValueError):
    """Unknown algorithm name or invalid algorithm configuration.

    Also a :class:`ValueError` so that executor/planner option validation
    (:mod:`repro.core.options`) surfaces uniformly whichever entry point
    rejected the configuration.
    """


class PlanError(ReproError, ValueError):
    """Invalid planner input (malformed workload hint or plan)."""


class SanitizerError(ReproError):
    """A runtime structural invariant was violated (``REPRO_SANITIZE=1``).

    Raised by :mod:`repro.analysis.sanitizer` when a wrapped structure — a
    Patricia/binary/set trie, a signature bitmap, the inverted index, or a
    prepared index — fails one of its documented invariants.

    Attributes:
        path: Dotted path to the violating node (e.g. ``"root.left.right"``)
            or structure component (e.g. ``"postings[3]"``), so the failure
            pinpoints *where* the corruption sits, not just that it exists.
    """

    def __init__(self, message: str, path: str = "") -> None:
        super().__init__(f"{message} (at {path})" if path else message)
        self.path = path


class LockOrderError(ReproError):
    """The runtime race detector caught a lock-discipline violation.

    Raised by :mod:`repro.analysis.concurrency` (``REPRO_RACEDETECT=1``)
    when a thread acquires tracked locks against the established
    acquisition order (a cycle in the lock-order graph — a potential
    deadlock), or re-enters a non-reentrant tracked lock on the same
    thread (a guaranteed deadlock).  The message carries both acquisition
    stacks: the one raising now and the one that established the
    conflicting edge.
    """


class WorkerError(ReproError):
    """A parallel-join worker failed (crashed, died, or returned bad data)."""


class JoinTimeoutError(WorkerError):
    """A probe chunk exceeded its ``timeout_seconds`` budget."""


class RetryExhaustedError(WorkerError):
    """Every retry attempt for a probe chunk failed and no fallback ran.

    Attributes:
        attempts: How many attempts were made before giving up.
    """

    def __init__(self, message: str, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class InjectedFaultError(WorkerError):
    """A deliberate failure raised by :mod:`repro.testing.faults` wrappers."""


class ServeError(ReproError):
    """A failure in the join-server layer (:mod:`repro.serve`).

    Every error the server puts on the wire carries a stable ``code``
    string (see ``docs/SERVER.md``); :class:`~repro.serve.client.JoinClient`
    re-raises the matching typed exception on its side of the socket.
    """

    #: Wire-protocol error code; subclasses override.
    code = "internal"


class OverCapacityError(ServeError):
    """Admission control rejected a request: too many in flight.

    The 429-style outcome — the server is up but refuses to queue more
    than ``max_inflight`` concurrent requests; clients should back off
    and retry.  Raised *before* any join work starts, so a rejected
    request holds no index, no policy and no in-flight slot.
    """

    code = "over_capacity"


class ProtocolError(ServeError):
    """A malformed or invalid request reached the join server.

    Covers undecodable JSONL, non-object payloads, unknown operations and
    schema violations.  The reply is an error frame; the connection
    stays usable for the next request.
    """

    code = "bad_request"


class GovernanceError(ReproError):
    """A resource-governance bound stopped a join (:mod:`repro.governance`).

    The subclasses below are the typed outcomes of cooperative governance:
    the join was *asked* to stop at the next poll point, so indexes, pools
    and spill files are released before the error propagates.  Contrast
    :class:`WorkerError`, which reports a failure the join did not choose.
    """


class DeadlineExceededError(GovernanceError):
    """The whole-join ``deadline_seconds`` budget ran out.

    Raised either up front by the planner/executor when a plan's estimated
    cost cannot fit in the remaining deadline, or mid-flight by the first
    governance poll after the deadline passes.  Per-chunk budgets raise
    :class:`JoinTimeoutError` instead.
    """


class CancelledError(GovernanceError):
    """A :class:`~repro.governance.CancelToken` was tripped mid-join."""


class BudgetExceededError(GovernanceError):
    """Index build breached the ``max_memory_bytes`` budget.

    Carries partial accounting so the resilient ladder can re-plan the
    same workload onto a partitioned executor sized from what was learned
    before the breach.

    Attributes:
        budget_bytes: The configured byte budget.
        used_bytes: Bytes attributed to the build when the breach was seen.
        records_indexed: Records inserted before the breach (approximate:
            governance polls run every ``poll_interval`` records).
    """

    def __init__(
        self,
        message: str,
        budget_bytes: int = 0,
        used_bytes: int = 0,
        records_indexed: int = 0,
    ) -> None:
        super().__init__(message)
        self.budget_bytes = budget_bytes
        self.used_bytes = used_bytes
        self.records_indexed = records_indexed

    def __reduce__(self):  # type: ignore[no-untyped-def]
        # Keep the accounting attributes across a process boundary: the
        # default exception reduction re-calls ``cls(*args)`` and would
        # zero them out.
        args = (self.args[0], self.budget_bytes, self.used_bytes, self.records_indexed)
        return (type(self), args)
