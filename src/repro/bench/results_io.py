"""Persistence for benchmark figure series (JSON and CSV).

``EXPERIMENTS.md`` quotes the ASCII figures, but downstream analysis wants
machine-readable output.  A *series bundle* is the same structure the
benchmark recorder builds: ``{figure: {label: {algorithm: value}}}`` with
optional per-figure units.  JSON round-trips the whole bundle; CSV flattens
to ``figure,label,algorithm,value`` rows for spreadsheets.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping

from repro.errors import ReproError

__all__ = ["save_series_json", "load_series_json", "save_series_csv", "load_series_csv"]

SeriesBundle = dict[str, dict[str, dict[str, float]]]

_FORMAT_VERSION = 1


def save_series_json(
    bundle: Mapping[str, Mapping[str, Mapping[str, float]]],
    path: str | Path,
    units: Mapping[str, str] | None = None,
) -> None:
    """Write a series bundle (plus optional per-figure units) as JSON."""
    payload = {
        "version": _FORMAT_VERSION,
        "units": dict(units or {}),
        "figures": {
            figure: {label: dict(algos) for label, algos in by_label.items()}
            for figure, by_label in bundle.items()
        },
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")


def load_series_json(path: str | Path) -> tuple[SeriesBundle, dict[str, str]]:
    """Read a bundle written by :func:`save_series_json`.

    Returns:
        ``(figures, units)``.

    Raises:
        ReproError: On an unknown format version or malformed payload.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read series bundle {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
        raise ReproError(f"unsupported series bundle format in {path}")
    figures = payload.get("figures", {})
    if not isinstance(figures, dict):
        raise ReproError(f"malformed series bundle in {path}")
    return figures, dict(payload.get("units", {}))


def save_series_csv(
    bundle: Mapping[str, Mapping[str, Mapping[str, float]]],
    path: str | Path,
) -> None:
    """Flatten a bundle to ``figure,label,algorithm,value`` CSV rows."""
    with Path(path).open("w", newline="", encoding="utf-8") as out:
        writer = csv.writer(out)
        writer.writerow(["figure", "label", "algorithm", "value"])
        for figure, by_label in bundle.items():
            for label, algos in by_label.items():
                for algorithm, value in algos.items():
                    writer.writerow([figure, label, algorithm, repr(value)])


def load_series_csv(path: str | Path) -> SeriesBundle:
    """Rebuild a bundle from :func:`save_series_csv` output.

    Raises:
        ReproError: On a malformed header or non-numeric value.
    """
    bundle: SeriesBundle = {}
    with Path(path).open("r", newline="", encoding="utf-8") as src:
        reader = csv.reader(src)
        header = next(reader, None)
        if header != ["figure", "label", "algorithm", "value"]:
            raise ReproError(f"unexpected CSV header in {path}: {header}")
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 4:
                raise ReproError(f"{path}:{lineno}: expected 4 columns")
            figure, label, algorithm, raw = row
            try:
                value = float(raw)
            except ValueError as exc:
                raise ReproError(f"{path}:{lineno}: non-numeric value {raw!r}") from exc
            bundle.setdefault(figure, {}).setdefault(label, {})[algorithm] = value
    return bundle
