"""Benchmark harness: timed runs, memory measurement, grids, reporting."""

from repro.bench.experiments import (
    ALL_ALGORITHMS,
    SIGNATURE_RATIOS,
    fig5a_grid,
    fig5b_grid,
    fig5c_grid,
    fig6b_configs,
    fig6c_configs,
    fig6def_configs,
    fig7_configs,
    fig8_datasets,
    shj_infeasible,
)
from repro.bench.harness import (
    RunRecord,
    clear_dataset_cache,
    dataset_pair,
    run_algorithm,
    sweep,
)
from repro.bench.memory import deep_sizeof, index_memory_bytes, memory_per_tuple
from repro.bench.reporting import (
    fmt_bytes,
    fmt_seconds,
    format_ratios,
    format_series,
    format_table,
)
from repro.bench.results_io import (
    load_series_csv,
    load_series_json,
    save_series_csv,
    save_series_json,
)

__all__ = [
    "ALL_ALGORITHMS",
    "SIGNATURE_RATIOS",
    "fig5a_grid",
    "fig5b_grid",
    "fig5c_grid",
    "fig6b_configs",
    "fig6c_configs",
    "fig6def_configs",
    "fig7_configs",
    "fig8_datasets",
    "shj_infeasible",
    "RunRecord",
    "run_algorithm",
    "sweep",
    "dataset_pair",
    "clear_dataset_cache",
    "deep_sizeof",
    "index_memory_bytes",
    "memory_per_tuple",
    "format_table",
    "format_series",
    "format_ratios",
    "fmt_seconds",
    "fmt_bytes",
]
