"""ASCII reporting for benchmark output (tables and x/y series).

The benchmark harness reproduces the paper's tables and figures as text:
each figure becomes an x-axis sweep with one column per algorithm, each
table a straight grid.  These helpers keep all benchmarks' output uniform
so ``EXPERIMENTS.md`` can quote them directly.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series", "format_ratios", "fmt_seconds", "fmt_bytes"]


def fmt_seconds(seconds: float) -> str:
    """Human-scale duration: '12.3ms', '4.56s'."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def fmt_bytes(count: float) -> str:
    """Human-scale byte count: '532B', '1.4KB', '2.3MB'."""
    if count < 1024:
        return f"{count:.0f}B"
    if count < 1024 ** 2:
        return f"{count / 1024:.1f}KB"
    return f"{count / 1024 ** 2:.2f}MB"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render a fixed-width table with a header rule.

    >>> print(format_table(["a", "b"], [[1, 22]]))
    a | b
    --+---
    1 | 22
    """
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
    value_format=fmt_seconds,
) -> str:
    """Render a figure-style sweep: x values as rows, one column per series.

    ``series`` maps a name (algorithm) to its y values, aligned with ``xs``.
    Missing points may be ``None`` (rendered as '-') — used when an
    algorithm is skipped at an infeasible configuration.
    """
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        row: list[object] = [x]
        for name in series:
            value = series[name][i]
            row.append("-" if value is None else value_format(value))
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_ratios(
    title: str,
    labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
) -> str:
    """Render a Fig. 8-style ratio chart: time over the per-label best.

    For each label (dataset), every algorithm's value is divided by the
    smallest value for that label; the winner shows ``1.0x``.
    """
    headers = ["dataset"] + list(series)
    rows = []
    for i, label in enumerate(labels):
        values = [series[name][i] for name in series]
        finite = [v for v in values if v is not None]
        best = min(finite) if finite else 1.0
        row: list[object] = [label]
        for value in values:
            row.append("-" if value is None else f"{value / best:.1f}x")
        rows.append(row)
    return format_table(headers, rows, title=title)
