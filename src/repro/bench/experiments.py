"""Experiment grids: the paper's Table IV, scaled for pure Python.

One constant or factory per paper experiment, shared by the pytest
benchmarks (``benchmarks/``) and the CLI (``repro-scj bench``).  The
paper's grid uses |R| up to 2^19 with Java; this reproduction scales the
default grid down by a factor 2^6 (comparison base |R| = 2^11, domain
scaled along to keep inverted-list lengths in regime) while preserving
every axis and ratio of the original design — pass a larger ``base`` to
re-run closer to paper scale.

Mapping to the paper (see DESIGN.md §4 for the full index):

* Fig. 5a/b/c — PTSJ signature-length sweeps (:func:`fig5a_grid` ...);
* Fig. 6b/c/d-f — algorithm comparison sweeps (:func:`fig6b_configs` ...);
* Fig. 7a-d — Poisson/Zipf distribution sweeps (:func:`fig7_configs`);
* Fig. 6a — memory sweep reuses :func:`fig6c_configs`;
* Fig. 8 / Table III — surrogate datasets (:func:`fig8_datasets`).
"""

from __future__ import annotations

from typing import Sequence

from repro.datagen.realworld import make_surrogate, scaled_sizes
from repro.datagen.synthetic import SyntheticConfig
from repro.relations.relation import Relation

__all__ = [
    "ALL_ALGORITHMS",
    "SIGNATURE_RATIOS",
    "fig5a_grid",
    "fig5b_grid",
    "fig5c_grid",
    "fig6b_configs",
    "fig6c_configs",
    "fig6def_configs",
    "fig7_configs",
    "fig8_datasets",
    "shj_infeasible",
]

#: The four algorithms of the paper's empirical study (Sec. V).
ALL_ALGORITHMS: tuple[str, ...] = ("shj", "pretti", "ptsj", "pretti+")

#: Fig. 5 x-axis: ratio between signature length b and set cardinality c.
SIGNATURE_RATIOS: tuple[int, ...] = (2, 4, 8, 16, 32, 64)

#: Default relation size for the algorithm-comparison sweeps (paper: 2^17).
BASE_SIZE = 2 ** 11

#: Default domain for the comparison sweeps (paper: 2^14).  The paper keeps
#: d = |R| / 8; pure Python forces |R| down by 2^6, so d scales along to
#: 2^9 — preserving the inverted-list lengths that drive PRETTI/PRETTI+'s
#: regime behaviour (longer lists, costlier intersections at high c).
BASE_DOMAIN = 2 ** 9

#: Domain for the PTSJ signature-length sweeps of Fig. 5 (kept at the
#: paper's 2^14 so the b <= d upper bound never truncates the ratio axis).
FIG5_DOMAIN = 2 ** 14

#: Fig. 5 sweeps use a smaller relation: PTSJ runs 6 ratios per point.
FIG5_SIZE = 2 ** 10

#: Default average set cardinality (paper: 2^4).
BASE_CARDINALITY = 2 ** 4


def fig5a_grid(base: int = FIG5_SIZE) -> list[tuple[str, SyntheticConfig]]:
    """Fig. 5a: vary domain cardinality d; |R| and c fixed (Table IV row 1).

    Returns labelled configurations; the benchmark sweeps each over
    :data:`SIGNATURE_RATIOS` via explicit PTSJ ``bits``.
    """
    return [
        (f"d=2^{exp}", SyntheticConfig(size=base, avg_cardinality=BASE_CARDINALITY,
                                       domain=2 ** exp, seed=50 + exp))
        for exp in (10, 11, 12, 13, 14)
    ]


def fig5b_grid(base: int = FIG5_SIZE) -> list[tuple[str, SyntheticConfig]]:
    """Fig. 5b: vary set cardinality c; |R| and d fixed (Table IV row 2)."""
    return [
        (f"c=2^{exp}", SyntheticConfig(size=base, avg_cardinality=2 ** exp,
                                       domain=FIG5_DOMAIN, seed=60 + exp))
        for exp in (2, 4, 6, 8)
    ]


def fig5c_grid(base: int = FIG5_SIZE) -> list[tuple[str, SyntheticConfig]]:
    """Fig. 5c: vary relation size |R|; c and d fixed (Table IV row 3)."""
    exponents = [max(4, base.bit_length() - 1 + delta) for delta in (-2, -1, 0, 1, 2)]
    return [
        (f"|R|=2^{exp}", SyntheticConfig(size=2 ** exp, avg_cardinality=BASE_CARDINALITY,
                                         domain=FIG5_DOMAIN, seed=70 + exp))
        for exp in exponents
    ]


def fig6b_configs(base: int = BASE_SIZE) -> list[SyntheticConfig]:
    """Fig. 6b: scalability w.r.t. domain cardinality (all 4 algorithms)."""
    return [
        SyntheticConfig(size=base, avg_cardinality=BASE_CARDINALITY, domain=2 ** exp,
                        seed=80 + exp, name=f"d=2^{exp}")
        for exp in (7, 8, 9, 10, 11)
    ]


def fig6c_configs(base: int = BASE_SIZE) -> list[SyntheticConfig]:
    """Fig. 6c: scalability w.r.t. set cardinality; also drives Fig. 6a."""
    return [
        SyntheticConfig(size=base, avg_cardinality=2 ** exp, domain=BASE_DOMAIN,
                        seed=90 + exp, name=f"c=2^{exp}")
        for exp in (2, 4, 6, 8)
    ]


def fig6def_configs(cardinality: int, base: int = BASE_SIZE) -> list[SyntheticConfig]:
    """Figs. 6d-f: scalability w.r.t. relation size at one cardinality.

    The paper runs three panels at c = 2^4, 2^6, 2^8.  The sweep spans
    base/4 .. 2*base (4 points): the top paper point is dropped because
    PRETTI at |R| = 4*base, c = 2^8 exceeds a laptop's patience in pure
    Python — the same regime where the paper itself switches PRETTI(+) to
    the disk-based variant.
    """
    exponents = [max(4, base.bit_length() - 1 + delta) for delta in (-2, -1, 0, 1)]
    return [
        SyntheticConfig(size=2 ** exp, avg_cardinality=cardinality, domain=BASE_DOMAIN,
                        seed=100 + exp, name=f"|R|=2^{exp}")
        for exp in exponents
    ]


def fig7_configs(
    axis: str,
    distribution: str,
    base: int = BASE_SIZE,
) -> list[SyntheticConfig]:
    """Figs. 7a-d: Poisson/Zipf on set cardinality or set elements.

    Args:
        axis: ``"cardinality"`` or ``"element"`` — which property the
            distribution applies to (the other stays uniform).
        distribution: ``"poisson"`` or ``"zipf"``.

    For a Zipf cardinality axis the x value is in effect the *maximum*
    cardinality (paper Fig. 7c note): the bounded Zipf puts rank 1 at
    cardinality 1, so most sets are small and only a few approach the
    upper end — the paper's "median 17 at max 2^9" effect.
    """
    if axis == "cardinality":
        exponents = (3, 5, 7)
        return [
            SyntheticConfig(size=base, avg_cardinality=2 ** exp, domain=BASE_DOMAIN,
                            cardinality_dist=distribution, seed=110 + exp,
                            name=f"c=2^{exp}")
            for exp in exponents
        ]
    if axis == "element":
        exponents = (2, 4, 6)
        return [
            SyntheticConfig(size=base, avg_cardinality=2 ** exp, domain=BASE_DOMAIN,
                            element_dist=distribution, seed=120 + exp,
                            name=f"c=2^{exp}")
            for exp in exponents
        ]
    raise ValueError(f"axis must be 'cardinality' or 'element', got {axis!r}")


def fig8_datasets(base: int = 256, seed: int = 7) -> list[tuple[str, Relation, Relation]]:
    """Fig. 8 / Table III: the four real-world surrogate dataset pairs.

    ``base`` is the webbase (smallest) size; the other datasets scale by
    the paper's relative relation sizes.  Each dataset joins two
    independently seeded surrogates of the same shape.
    """
    sizes = scaled_sizes(base)
    out: list[tuple[str, Relation, Relation]] = []
    for name in ("flickr", "orkut", "twitter", "webbase"):
        size = sizes[name]
        r = make_surrogate(name, size, seed=seed)
        s = make_surrogate(name, size, seed=seed + 1)
        out.append((name, r, s))
    return out


def shj_infeasible(name: str, config: SyntheticConfig) -> bool:
    """Skip rule mirroring the paper's "SHJ runs longer than a day" entries.

    SHJ's submask enumeration makes very large (|R| * 2^partial) products
    impractical in pure Python; points beyond the budget render as '-'
    just as the paper's Fig. 8 reports lower bounds for SHJ.
    """
    return name == "shj" and config.size * config.avg_cardinality > 2 ** 21
