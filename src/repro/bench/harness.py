"""Experiment harness: timed runs, dataset caching, sweep execution.

The benchmarks under ``benchmarks/`` (one per paper table/figure) all
drive this module: :func:`run_algorithm` executes one join and captures a
:class:`RunRecord`; :func:`sweep` runs a whole x-axis sweep for several
algorithms and returns the series in the shape
:mod:`repro.bench.reporting` renders.

Datasets are cached per configuration within a process, so a figure's
several algorithm runs measure the same bytes, exactly as the paper does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.core.base import JoinResult, JoinStats
from repro.core.registry import make_algorithm
from repro.datagen.synthetic import SyntheticConfig, generate_pair
from repro.obs.tracer import Tracer, use
from repro.relations.relation import Relation

__all__ = ["RunRecord", "run_algorithm", "dataset_pair", "sweep", "clear_dataset_cache"]


@dataclass(frozen=True, slots=True)
class RunRecord:
    """Outcome of one timed join execution.

    Attributes:
        algorithm: Registry name.
        seconds: End-to-end wall time (median over ``repeats``), including
            index construction — the paper's reported metric (Sec. V-A4).
        stats: The :class:`JoinStats` of the median run.
        pairs: Output size.
        phases: Per-phase wall-time breakdown of the median run
            (``{"build": ..., "probe": ...}``, see ``docs/OBSERVABILITY.md``)
            when the run was traced; ``None`` otherwise.
    """

    algorithm: str
    seconds: float
    stats: JoinStats
    pairs: int
    phases: dict[str, float] | None = None


def run_algorithm(
    name: str,
    r: Relation,
    s: Relation,
    repeats: int = 1,
    trace: bool = False,
    **kwargs,
) -> RunRecord:
    """Execute ``name`` on ``(r, s)`` ``repeats`` times; keep the median run.

    The paper runs each algorithm ten times and reports the average while
    observing low variance; with pure Python the median over a small
    ``repeats`` is the steadier statistic.

    Args:
        trace: When True each run executes under its own
            :class:`~repro.obs.Tracer` and the median run's top-level
            phase breakdown lands in :attr:`RunRecord.phases` (the
            tracing overhead is then part of the measured time, so leave
            it off for paper-figure timings).
    """
    runs: list[tuple[float, JoinResult, Tracer | None]] = []
    for _ in range(max(repeats, 1)):
        algorithm = make_algorithm(name, **kwargs)
        tracer = Tracer(name=name) if trace else None
        start = time.perf_counter()
        if tracer is not None:
            with use(tracer):
                result = algorithm.join(r, s)
        else:
            result = algorithm.join(r, s)
        runs.append((time.perf_counter() - start, result, tracer))
    runs.sort(key=lambda run: run[0])
    seconds, result, tracer = runs[len(runs) // 2]
    phases = tracer.phase_seconds() if tracer is not None else None
    return RunRecord(
        algorithm=name,
        seconds=seconds,
        stats=result.stats,
        pairs=len(result),
        phases=phases,
    )


_DATASET_CACHE: dict[SyntheticConfig, tuple[Relation, Relation]] = {}


def dataset_pair(config: SyntheticConfig) -> tuple[Relation, Relation]:
    """The (R, S) pair for ``config``, cached per process.

    Benchmarks for one figure call this repeatedly with the same
    configurations; generation cost must not pollute the timings.
    """
    cached = _DATASET_CACHE.get(config)
    if cached is None:
        cached = generate_pair(config)
        _DATASET_CACHE[config] = cached
    return cached


def clear_dataset_cache() -> None:
    """Drop all cached datasets (frees memory between large sweeps)."""
    _DATASET_CACHE.clear()


def sweep(
    configs: Sequence[SyntheticConfig],
    algorithms: Sequence[str],
    repeats: int = 1,
    skip: Callable[[str, SyntheticConfig], bool] | None = None,
    algorithm_kwargs: Mapping[str, dict] | None = None,
) -> dict[str, list[float | None]]:
    """Run every algorithm over every configuration of one sweep.

    Args:
        configs: The x-axis, one dataset configuration per point.
        algorithms: Registry names to compare.
        repeats: Timed repetitions per point (median kept).
        skip: Optional predicate marking infeasible points — e.g. SHJ at
            very high cardinality, mirroring the paper's "longer than a
            day" entries.  Skipped points appear as ``None``.
        algorithm_kwargs: Per-algorithm constructor arguments.

    Returns:
        ``{algorithm: [seconds_or_None per config]}`` ready for
        :func:`repro.bench.reporting.format_series`.
    """
    kwargs_map = algorithm_kwargs or {}
    series: dict[str, list[float | None]] = {name: [] for name in algorithms}
    for config in configs:
        r, s = dataset_pair(config)
        for name in algorithms:
            if skip is not None and skip(name, config):
                series[name].append(None)
                continue
            record = run_algorithm(name, r, s, repeats=repeats, **kwargs_map.get(name, {}))
            series[name].append(record.seconds)
    return series
