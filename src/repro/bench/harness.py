"""Experiment harness: timed runs, dataset caching, sweep execution.

The benchmarks under ``benchmarks/`` (one per paper table/figure) all
drive this module: :func:`run_algorithm` executes one join and captures a
:class:`RunRecord`; :func:`sweep` runs a whole x-axis sweep for several
algorithms and returns the series in the shape
:mod:`repro.bench.reporting` renders.

Planner accountability lives here too: :func:`run_planned` executes an
auto-planned join and records the :class:`~repro.planner.plan.Plan`
beside the timing, and :func:`planner_regret` compares the planner's
choice against every measured alternative — regret 1.0 means the planner
picked the fastest algorithm, 3.0 means something ran three times faster
than its pick (``benchmarks/test_planner_regret.py`` gates on this).

Datasets are cached per configuration within a process, so a figure's
several algorithm runs measure the same bytes, exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.core.base import JoinResult, JoinStats
from repro.core.registry import execute_plan, make_algorithm
from repro.core.registry import plan as plan_join
from repro.datagen.synthetic import SyntheticConfig, generate_pair
from repro.obs.clock import perf_counter
from repro.obs.tracer import Tracer, use
from repro.planner.plan import Plan, Workload
from repro.relations.relation import Relation

__all__ = [
    "RunRecord",
    "run_algorithm",
    "run_planned",
    "planner_regret",
    "dataset_pair",
    "sweep",
    "clear_dataset_cache",
]


@dataclass(frozen=True, slots=True)
class RunRecord:
    """Outcome of one timed join execution.

    Attributes:
        algorithm: Registry name.
        seconds: End-to-end wall time (median over ``repeats``), including
            index construction — the paper's reported metric (Sec. V-A4).
        stats: The :class:`JoinStats` of the median run.
        pairs: Output size.
        phases: Per-phase wall-time breakdown of the median run
            (``{"build": ..., "probe": ...}``, see ``docs/OBSERVABILITY.md``)
            when the run was traced; ``None`` otherwise.
        plan: The :class:`~repro.planner.plan.Plan` the run executed, when
            it went through the planner (:func:`run_planned`); ``None``
            for classic fixed-algorithm runs.  Keeping the plan beside the
            timing is what makes planner *regret* measurable after the
            fact.
    """

    algorithm: str
    seconds: float
    stats: JoinStats
    pairs: int
    phases: dict[str, float] | None = None
    plan: Plan | None = None


def run_algorithm(
    name: str,
    r: Relation,
    s: Relation,
    repeats: int = 1,
    trace: bool = False,
    **kwargs,
) -> RunRecord:
    """Execute ``name`` on ``(r, s)`` ``repeats`` times; keep the median run.

    The paper runs each algorithm ten times and reports the average while
    observing low variance; with pure Python the median over a small
    ``repeats`` is the steadier statistic.

    Args:
        trace: When True each run executes under its own
            :class:`~repro.obs.Tracer` and the median run's top-level
            phase breakdown lands in :attr:`RunRecord.phases` (the
            tracing overhead is then part of the measured time, so leave
            it off for paper-figure timings).
    """
    runs: list[tuple[float, JoinResult, Tracer | None]] = []
    for _ in range(max(repeats, 1)):
        algorithm = make_algorithm(name, **kwargs)
        tracer = Tracer(name=name) if trace else None
        start = perf_counter()
        if tracer is not None:
            with use(tracer):
                result = algorithm.join(r, s)
        else:
            result = algorithm.join(r, s)
        runs.append((perf_counter() - start, result, tracer))
    runs.sort(key=lambda run: run[0])
    seconds, result, tracer = runs[len(runs) // 2]
    phases = tracer.phase_seconds() if tracer is not None else None
    return RunRecord(
        algorithm=name,
        seconds=seconds,
        stats=result.stats,
        pairs=len(result),
        phases=phases,
    )


def run_planned(
    r: Relation,
    s: Relation,
    workload: Workload | None = None,
    repeats: int = 1,
    **kwargs,
) -> RunRecord:
    """Plan the join with the cost-based planner, execute it, keep the plan.

    Planning happens once (it is deterministic for fixed statistics); the
    execution is timed ``repeats`` times and the median kept, exactly as
    :func:`run_algorithm` does, so planned and fixed-algorithm records
    are directly comparable.
    """
    query_plan = plan_join(r, s, workload=workload, **kwargs)
    runs: list[tuple[float, JoinResult]] = []
    for _ in range(max(repeats, 1)):
        start = perf_counter()
        result = execute_plan(query_plan, r, s)
        runs.append((perf_counter() - start, result))
    runs.sort(key=lambda run: run[0])
    seconds, result = runs[len(runs) // 2]
    return RunRecord(
        algorithm=query_plan.algorithm,
        seconds=seconds,
        stats=result.stats,
        pairs=len(result),
        plan=query_plan,
    )


def planner_regret(
    planned: RunRecord,
    alternatives: Sequence[RunRecord],
) -> float:
    """How much faster the best measured alternative was than the plan.

    Returns ``planned.seconds / best_alternative_seconds`` with the
    planned run itself included in the candidate pool, so the result is
    always >= 1.0; 1.0 means the planner's pick was (also) the fastest.
    """
    candidates = [planned.seconds, *(record.seconds for record in alternatives)]
    best = min(candidates)
    return planned.seconds / best if best > 0 else 1.0


_DATASET_CACHE: dict[SyntheticConfig, tuple[Relation, Relation]] = {}


def dataset_pair(config: SyntheticConfig) -> tuple[Relation, Relation]:
    """The (R, S) pair for ``config``, cached per process.

    Benchmarks for one figure call this repeatedly with the same
    configurations; generation cost must not pollute the timings.
    """
    cached = _DATASET_CACHE.get(config)
    if cached is None:
        cached = generate_pair(config)
        _DATASET_CACHE[config] = cached
    return cached


def clear_dataset_cache() -> None:
    """Drop all cached datasets (frees memory between large sweeps)."""
    _DATASET_CACHE.clear()


def sweep(
    configs: Sequence[SyntheticConfig],
    algorithms: Sequence[str],
    repeats: int = 1,
    skip: Callable[[str, SyntheticConfig], bool] | None = None,
    algorithm_kwargs: Mapping[str, dict] | None = None,
) -> dict[str, list[float | None]]:
    """Run every algorithm over every configuration of one sweep.

    Args:
        configs: The x-axis, one dataset configuration per point.
        algorithms: Registry names to compare.
        repeats: Timed repetitions per point (median kept).
        skip: Optional predicate marking infeasible points — e.g. SHJ at
            very high cardinality, mirroring the paper's "longer than a
            day" entries.  Skipped points appear as ``None``.
        algorithm_kwargs: Per-algorithm constructor arguments.

    Returns:
        ``{algorithm: [seconds_or_None per config]}`` ready for
        :func:`repro.bench.reporting.format_series`.
    """
    kwargs_map = algorithm_kwargs or {}
    series: dict[str, list[float | None]] = {name: [] for name in algorithms}
    for config in configs:
        r, s = dataset_pair(config)
        for name in algorithms:
            if skip is not None and skip(name, config):
                series[name].append(None)
                continue
            record = run_algorithm(name, r, s, repeats=repeats, **kwargs_map.get(name, {}))
            series[name].append(record.seconds)
    return series
