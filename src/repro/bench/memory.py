"""Deep memory measurement for index structures (paper Fig. 6a).

The paper's Fig. 6a reports *main-memory consumption per tuple* of each
algorithm's index.  :func:`deep_sizeof` recursively measures a Python
object graph (handling ``__slots__``, dicts, sequences and shared
sub-objects), and :func:`index_memory_bytes` knows which attributes
constitute each algorithm's index so per-algorithm footprints are
comparable.

Absolute bytes are Python-object bytes (boxed ints, dict overhead), far
above the paper's Java numbers — the reproduction target is the *relative*
picture: PRETTI an order of magnitude above the rest, linear growth in set
cardinality, SHJ/PTSJ insensitive to it (Fig. 6a).
"""

from __future__ import annotations

import sys
from typing import Any

from repro.core.base import SetContainmentJoin
from repro.core.registry import make_algorithm
from repro.relations.relation import Relation

__all__ = ["deep_sizeof", "index_memory_bytes", "memory_per_tuple"]


def deep_sizeof(obj: Any, _seen: set[int] | None = None) -> int:
    """Total bytes of ``obj`` and everything reachable from it.

    Each distinct object is counted once (cycles and sharing are safe).
    Containers (dict/list/tuple/set/frozenset), instance ``__dict__`` and
    ``__slots__`` attributes are followed; atomic values are measured with
    :func:`sys.getsizeof`.  The walk is iterative, so arbitrarily deep
    structures (e.g. PRETTI tries over high-cardinality sets) are safe.
    """
    seen = _seen if _seen is not None else set()
    total = 0
    stack: list[Any] = [obj]
    while stack:
        current = stack.pop()
        oid = id(current)
        if oid in seen:
            continue
        seen.add(oid)
        total += sys.getsizeof(current)
        if isinstance(current, dict):
            stack.extend(current.keys())
            stack.extend(current.values())
        elif isinstance(current, (list, tuple, set, frozenset)):
            stack.extend(current)
        elif isinstance(current, (str, bytes, bytearray, int, float, bool, complex)) or current is None:
            pass
        else:
            instance_dict = getattr(current, "__dict__", None)
            if instance_dict is not None:
                stack.append(instance_dict)
            for klass in type(current).__mro__:
                for slot in getattr(klass, "__slots__", ()):
                    if hasattr(current, slot):
                        stack.append(getattr(current, slot))
    return total


#: Attributes holding each algorithm's index structures.
_INDEX_ATTRIBUTES: dict[str, tuple[str, ...]] = {
    "ptsj": ("trie",),
    "tsj": ("trie",),
    "shj": ("buckets",),
    "pretti": ("trie", "index"),
    "pretti+": ("trie", "index"),
    "mwtsj": ("trie",),
    "trie-trie": ("r_trie", "s_trie"),
}


def index_memory_bytes(algorithm: SetContainmentJoin) -> int:
    """Deep size of the index structures built by ``algorithm``.

    The algorithm must have executed a ``join`` or ``prepare`` already so
    the structures exist (0 otherwise).  Unknown algorithms fall back to
    measuring the whole instance.
    """
    attributes = _INDEX_ATTRIBUTES.get(algorithm.name)
    if attributes is None:
        return deep_sizeof(algorithm)
    seen: set[int] = set()
    return sum(
        deep_sizeof(getattr(algorithm, attr), seen)
        for attr in attributes
        if getattr(algorithm, attr, None) is not None
    )


def memory_per_tuple(name: str, r: Relation, s: Relation, **kwargs) -> float:
    """Build ``name``'s index for ``R ⋈⊇ S`` and report bytes per tuple.

    Matches Fig. 6a's metric: total index bytes divided by the number of
    indexed tuples, measured through the prepared index's
    :meth:`~repro.core.base.PreparedIndex.memory_objects`.  PRETTI/PRETTI+
    index both relations (trie on ``S``, inverted file on ``R``), so their
    divisor is ``|R| + |S|``; signature algorithms index only ``S``
    (trie-trie's probe-side R-trie is measured but, as probe-batch state,
    not added to the divisor).
    """
    algorithm = make_algorithm(name, **kwargs)
    prepared = algorithm.prepare(s, probe_hint=r)
    divisor = len(s) + (len(r) if algorithm.name in ("pretti", "pretti+") else 0)
    if divisor == 0:
        return 0.0
    seen: set[int] = set()
    total = sum(deep_sizeof(obj, seen) for obj in prepared.memory_objects(r))
    return total / divisor
