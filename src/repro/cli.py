"""Command-line interface: ``repro-scj``.

Subcommands:

* ``generate`` — write a synthetic or surrogate dataset to a text file;
* ``stats`` — print Table III-style statistics of a dataset file;
* ``join`` — run a set-containment join between two dataset files;
* ``explain`` — print the cost-based planner's decision tree for a join
  without running it (algorithm, signature length, executor, chunking,
  each with cost estimates and rejected alternatives);
* ``probe`` — build one index, then probe it with several query files
  (the build-once/probe-many serving path);
* ``backends`` — list the batch-kernel backends (docs/KERNELS.md) and
  which one the process selected;
* ``bench`` — run one of the paper's experiments and print its figure.

``join``/``probe``/``explain``/``serve`` accept ``--backend NAME`` to
pin the kernel backend for the run (equivalent to ``REPRO_KERNEL``).

Examples::

    repro-scj generate --size 1024 --cardinality 16 --domain 16384 -o r.txt
    repro-scj generate --dataset flickr --size 2000 -o flickr.txt
    repro-scj stats r.txt
    repro-scj join r.txt s.txt --algorithm ptsj
    repro-scj join r.txt s.txt --algorithm shj --backend numpy
    repro-scj explain r.txt s.txt
    repro-scj join r.txt s.txt --plan auto --workers 4 --explain
    repro-scj probe s.txt queries1.txt queries2.txt --algorithm ptsj
    repro-scj backends
    repro-scj bench fig6c
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import experiments, harness, memory, reporting
from repro.core.registry import (
    available_algorithms,
    execute_plan,
    plan as plan_join,
    prepare_index,
    set_containment_join,
)
from repro.planner import Workload
from repro.datagen.realworld import SURROGATE_SPECS, make_surrogate
from repro.datagen.synthetic import SyntheticConfig, generate_relation
from repro.errors import ReproError
from repro.obs.clock import perf_counter
from repro.obs import (
    MetricsRegistry,
    NullTracer,
    PhaseProfiler,
    Tracer,
    render_tree,
    use,
    write_trace,
)
from repro.relations.io import read_relation, write_join_result, write_relation
from repro.relations.stats import compute_stats

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-scj",
        description="Trie-based set-containment joins (Luo et al., ICDE 2015).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a dataset file")
    gen.add_argument("--size", type=int, default=1024, help="relation size |R|")
    gen.add_argument("--cardinality", type=int, default=16, help="average set cardinality c")
    gen.add_argument("--domain", type=int, default=2 ** 14, help="domain cardinality d")
    gen.add_argument("--cardinality-dist", default="uniform",
                     choices=("uniform", "poisson", "zipf"))
    gen.add_argument("--element-dist", default="uniform",
                     choices=("uniform", "poisson", "zipf"))
    gen.add_argument("--dataset", choices=sorted(SURROGATE_SPECS),
                     help="generate a real-world surrogate instead")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--output", required=True, help="output path (set per line)")

    def add_on_error(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--on-error", default="raise",
                         choices=("raise", "skip", "collect"),
                         help="malformed input lines: abort (raise, default), "
                              "drop silently (skip), or drop and print a "
                              "line-by-line skip report (collect)")

    def add_observability(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--trace", metavar="FILE",
                         help="run under a tracer, print the phase span "
                              "tree, and write it to FILE as JSONL "
                              "(see docs/OBSERVABILITY.md)")
        cmd.add_argument("--metrics", action="store_true",
                         help="collect a metrics registry (counters + "
                              "timing histograms) for the run and print "
                              "its snapshot")
        cmd.add_argument("--profile", metavar="PHASE", action="append",
                         default=None,
                         help="cProfile the named span phase (e.g. probe, "
                              "build); repeatable; prints the hot "
                              "functions per phase")
        cmd.add_argument("--trace-memory", action="store_true",
                         help="sample tracemalloc peaks per span "
                              "(implies tracing overhead)")

    def add_backend(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--backend", default=None, metavar="NAME",
                         help="kernel backend for batch probe kernels "
                              "(python, numpy, ...); default: REPRO_KERNEL "
                              "or auto-selection — see `repro-scj backends` "
                              "and docs/KERNELS.md")

    def add_workload(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--workers", type=int, default=1,
                         help="worker processes available to the planner; "
                              "above 1 it considers the partition-parallel "
                              "executors")
        cmd.add_argument("--memory-budget", type=int, default=None,
                         metavar="TUPLES",
                         help="largest relation slice that fits in memory; "
                              "when |R|+|S| exceeds it the planner selects "
                              "the disk-partitioned executor")
        cmd.add_argument("--fault-tolerant", action="store_true",
                         help="prefer the resilient executor (per-chunk "
                              "retry/timeout/fallback) when a worker pool "
                              "is used")
        cmd.add_argument("--shards", type=int, default=None,
                         help="partition the S-index into this many shards "
                              "(selects the sharded scale-out executor; "
                              "see docs/EXECUTORS.md)")
        cmd.add_argument("--deadline-seconds", type=float, default=None,
                         help="whole-join wall-clock bound: the planner "
                              "rejects plans that cannot finish in time and "
                              "every build/probe loop polls it; composes "
                              "with the per-chunk --timeout-seconds "
                              "(see docs/ROBUSTNESS.md)")
        cmd.add_argument("--cancel-after", type=float, default=None,
                         metavar="SECONDS",
                         help="arm a cooperative cancel token that trips "
                              "after SECONDS; the join stops with a typed "
                              "CancelledError within one poll interval")
        cmd.add_argument("--max-memory", type=int, default=None,
                         metavar="BYTES",
                         help="index-build memory budget in bytes "
                              "(tracemalloc-sampled); a breach raises "
                              "BudgetExceededError, or degrades to a "
                              "partitioned executor on the resilient path")

    stat = sub.add_parser("stats", help="print dataset statistics (Table III columns)")
    stat.add_argument("path", help="dataset file, one set per line")
    add_on_error(stat)

    explain = sub.add_parser(
        "explain",
        help="print the planner's decision tree for a join without running it")
    explain.add_argument("r", help="probe relation file (containing side)")
    explain.add_argument("s", help="indexed relation file (contained side)")
    add_on_error(explain)
    explain.add_argument("--algorithm", default="auto",
                         help="auto (planner chooses) or a pinned name: "
                              f"{', '.join(available_algorithms())}")
    explain.add_argument("--bits", type=int, default=None,
                         help="signature length override (signature algorithms)")
    explain.add_argument("--probe-batches", type=int, default=None,
                         metavar="N",
                         help="plan a prepare-once/probe-many workload of N "
                              "probe batches instead of a one-shot join")
    add_workload(explain)
    add_backend(explain)
    explain.add_argument("--json", action="store_true",
                         help="print the serialized plan as JSON instead of "
                              "the tree")

    join = sub.add_parser("join", help="run a set-containment join R >= S")
    join.add_argument("r", help="probe relation file (containing side)")
    join.add_argument("s", help="indexed relation file (contained side)")
    add_on_error(join)
    join.add_argument("--algorithm", default="auto",
                      help=f"auto or one of: {', '.join(available_algorithms())}")
    join.add_argument("--bits", type=int, default=None,
                      help="signature length override (signature algorithms)")
    join.add_argument("--strategy", default="memory",
                      choices=("memory", "disk", "psj", "parallel"),
                      help="execution strategy: in-memory (default), the "
                           "Sec. III-E4 disk-partitioned nested loop, the "
                           "PSJ-style pick partitioning, or multi-process")
    join.add_argument("--executor", default=None,
                      choices=("inline", "parallel", "resilient", "disk", "sharded"),
                      help="run a specific repro.exec executor directly "
                           "(overrides --strategy; uses --workers/--shards/"
                           "--retries/--timeout-seconds; see "
                           "docs/EXECUTORS.md)")
    join.add_argument("--partitions", type=int, default=8,
                      help="partition count (disk: tuples per partition "
                           "= |S| / partitions; psj/parallel: partitions)")
    join.add_argument("--retries", type=int, default=0,
                      help="parallel strategy only: retry each failed probe "
                           "chunk up to N times (enables the fault-tolerant "
                           "executor; see docs/ROBUSTNESS.md)")
    join.add_argument("--timeout-seconds", type=float, default=None,
                      help="parallel strategy only: per-chunk wall-clock "
                           "budget; over-budget chunks finish in-process "
                           "(enables the fault-tolerant executor). Bounds "
                           "one chunk, not the join — for a whole-join "
                           "bound use --deadline-seconds")
    join.add_argument("--no-fallback", action="store_true",
                      help="parallel strategy only: raise instead of probing "
                           "exhausted chunks in-process")
    join.add_argument("--plan", choices=("auto",), default=None,
                      help="plan the whole execution (algorithm, executor, "
                           "chunking) with the cost-based planner from the "
                           "workload flags below; overrides --strategy")
    join.add_argument("--explain", action="store_true",
                      help="print the planner's decision tree before running")
    add_workload(join)
    add_backend(join)
    join.add_argument("-o", "--output", help="write pairs to this file")
    add_observability(join)

    probe = sub.add_parser("probe",
                           help="build an index over S once, probe it with "
                                "each query file in turn")
    probe.add_argument("s", help="indexed relation file (contained side)")
    probe.add_argument("queries", nargs="+",
                       help="probe relation files, each joined against the "
                            "same prepared index")
    probe.add_argument("--algorithm", default="auto",
                       help=f"auto or one of: {', '.join(available_algorithms())}")
    probe.add_argument("--bits", type=int, default=None,
                       help="signature length override (signature algorithms)")
    add_on_error(probe)
    add_backend(probe)
    probe.add_argument("-o", "--output",
                       help="write the pairs of every batch to this file")
    add_observability(probe)

    lint = sub.add_parser(
        "lint",
        help="run the project-specific static analysis (docs/ANALYSIS.md)")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--select", action="append", metavar="RPRxxx",
                      help="run only the listed rule ids "
                           "(repeatable, comma-separated)")
    lint.add_argument("--format", choices=("text", "json", "github"),
                      default="text",
                      help="output format (default: text); 'github' emits "
                           "workflow-command annotations for CI")
    lint.add_argument("--statistics", action="store_true",
                      help="print per-rule violation counts")
    lint.add_argument("--list-rules", action="store_true",
                      help="list every registered rule and exit")

    serve = sub.add_parser(
        "serve",
        help="run a long-lived join server with a resident index cache "
             "(JSONL over TCP; docs/SERVER.md)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port; 0 picks a free one (printed at start)")
    serve.add_argument("--max-connections", type=int, default=8,
                       help="connections served concurrently (thread pool size)")
    serve.add_argument("--max-inflight", type=int, default=None,
                       help="admission bound on concurrent probe/join requests "
                            "(default: --max-connections); excess requests get "
                            "a typed over_capacity rejection")
    serve.add_argument("--cache-capacity", type=int, default=32,
                       help="resident prepared indexes (LRU bound)")
    serve.add_argument("--cache-ttl", type=float, default=None, metavar="SECONDS",
                       help="prepared-index lifetime (default: no expiry)")
    serve.add_argument("--deadline-seconds", type=float, default=None,
                       help="default per-request deadline (a request's own "
                            "deadline_seconds overrides)")
    serve.add_argument("--max-memory", type=int, default=None, metavar="BYTES",
                       help="default per-request index-build memory budget")
    add_backend(serve)

    sub.add_parser(
        "backends",
        help="list the batch-kernel backends and which one is selected "
             "(docs/KERNELS.md)")

    bench = sub.add_parser("bench", help="run a paper experiment")
    bench.add_argument("experiment",
                       choices=("fig5a", "fig5b", "fig5c", "fig6a", "fig6b", "fig6c",
                                "fig6d", "fig6e", "fig6f", "fig7a", "fig7b",
                                "fig7c", "fig7d", "fig8"),
                       help="paper figure to reproduce")
    bench.add_argument("--base", type=int, default=None,
                       help="base relation size (default: module default)")
    bench.add_argument("--repeats", type=int, default=1)
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset:
        relation = make_surrogate(args.dataset, args.size, seed=args.seed)
    else:
        relation = generate_relation(
            SyntheticConfig(
                size=args.size,
                avg_cardinality=args.cardinality,
                domain=args.domain,
                cardinality_dist=args.cardinality_dist,
                element_dist=args.element_dist,
                seed=args.seed,
            )
        )
    write_relation(relation, args.output)
    stats = compute_stats(relation)
    print(f"wrote {stats.size} tuples to {args.output} "
          f"(avg c={stats.avg_cardinality:.2f}, d={stats.domain_cardinality})")
    return 0


def _read_dataset(path: str, on_error: str):
    """Read one dataset honouring ``--on-error``; print any skip report."""
    if on_error == "collect":
        relation, report = read_relation(path, on_error="collect")
        if not report.ok:
            print(report.summary(), file=sys.stderr)
        return relation
    return read_relation(path, on_error=on_error)


def _cmd_stats(args: argparse.Namespace) -> int:
    stats = compute_stats(_read_dataset(args.path, args.on_error))
    rows = [[key, value] for key, value in stats.as_table_row().items()]
    rows.append(["c min/max", f"{stats.min_cardinality}/{stats.max_cardinality}"])
    rows.append(["duplicate sets", stats.duplicate_sets])
    rows.append(["recommended", stats.recommended_algorithm()])
    print(reporting.format_table(["statistic", "value"], rows, title=args.path))
    return 0


def _make_tracer(args: argparse.Namespace) -> Tracer | NullTracer:
    """Build the tracer the ``--trace``/``--metrics``/``--profile`` flags ask for."""
    wants_tracing = (
        getattr(args, "trace", None)
        or getattr(args, "metrics", False)
        or getattr(args, "profile", None)
        or getattr(args, "trace_memory", False)
    )
    if not wants_tracing:
        return NullTracer()
    return Tracer(
        name="repro-scj",
        registry=MetricsRegistry() if args.metrics else None,
        sample_memory=args.trace_memory,
        profiler=PhaseProfiler(args.profile) if args.profile else None,
    )


def _report_observability(args: argparse.Namespace, tracer: Tracer | NullTracer,
                          meta: dict | None = None) -> None:
    """Print/write whatever the observability flags requested."""
    if not tracer.enabled:
        return
    tracer.finish()
    print()
    print("phase breakdown:")
    print(render_tree(tracer.root))
    if args.trace:
        write_trace(args.trace, tracer.root, meta=meta)
        print(f"trace written to {args.trace}")
    if tracer.registry is not None:
        rows = sorted(tracer.registry.snapshot().items())
        print(reporting.format_table(["metric", "value"],
                                     [[name, f"{value:g}"] for name, value in rows],
                                     title="metrics"))
    if tracer.profiler is not None:
        for phase in tracer.profiler.profiled_phases():
            print(f"--- profile: {phase} ---")
            print(tracer.profiler.summary(phase))


def _workload_from_args(args: argparse.Namespace) -> Workload:
    """Build the planner's workload hints from the shared CLI flags."""
    probe_batches = getattr(args, "probe_batches", None)
    return Workload(
        mode="probe_many" if probe_batches else "oneshot",
        probe_batches=probe_batches or 1,
        memory_budget_tuples=args.memory_budget,
        workers=args.workers,
        fault_tolerance=args.fault_tolerant,
        shards=args.shards,
        deadline_seconds=args.deadline_seconds,
        max_memory_bytes=args.max_memory,
    )


def _policy_from_args(args: argparse.Namespace):
    """The governance policy the CLI flags describe, or ``None``.

    The deadline clock and the cancel countdown start here — when the
    join is about to run — not at parse time.
    """
    deadline_seconds = getattr(args, "deadline_seconds", None)
    cancel_after = getattr(args, "cancel_after", None)
    max_memory = getattr(args, "max_memory", None)
    if deadline_seconds is None and cancel_after is None and max_memory is None:
        return None
    from repro.governance import CancelToken, Deadline, GovernancePolicy
    from repro.obs.clock import monotonic

    deadline = Deadline.after(deadline_seconds) if deadline_seconds is not None else None
    cancel = (
        CancelToken(cancel_at=monotonic() + cancel_after)
        if cancel_after is not None
        else None
    )
    return GovernancePolicy(
        deadline=deadline, cancel=cancel, memory_budget_bytes=max_memory
    )


def _apply_backend(args: argparse.Namespace) -> None:
    """Pin the kernel backend named by ``--backend``, if any.

    Validation is eager: an unknown or unavailable backend raises
    :class:`~repro.kernels.base.KernelUnavailableError` (a
    :class:`ReproError`) here, so ``main`` prints a clean error and
    exits 2 before any dataset is read.
    """
    backend = getattr(args, "backend", None)
    if backend is not None:
        from repro.kernels import set_default_backend

        set_default_backend(backend)


def _cmd_backends(args: argparse.Namespace) -> int:
    from repro import kernels

    active = kernels.active_backend_name()
    source = kernels.backend_source()
    rows = []
    for name in kernels.registered_backends():
        try:
            kernels.get_backend(name)
        except kernels.KernelUnavailableError:
            availability = "no"
        else:
            availability = "yes"
        marker = f"active ({source})" if name == active else ""
        rows.append((name, availability, marker))
    print(reporting.format_table(
        ("backend", "available", "selected"), rows, title="kernel backends"))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    _apply_backend(args)
    r = _read_dataset(args.r, args.on_error)
    s = _read_dataset(args.s, args.on_error)
    kwargs = {}
    if args.bits is not None:
        kwargs["bits"] = args.bits
    query_plan = plan_join(r, s, algorithm=args.algorithm,
                           workload=_workload_from_args(args), **kwargs)
    print(query_plan.to_json(indent=2) if args.json else query_plan.explain())
    return 0


def _cmd_join(args: argparse.Namespace) -> int:
    _apply_backend(args)
    r = _read_dataset(args.r, args.on_error)
    s = _read_dataset(args.s, args.on_error)
    kwargs = {}
    if args.bits is not None:
        kwargs["bits"] = args.bits
    algorithm = args.algorithm
    tracer = _make_tracer(args)
    policy = _policy_from_args(args)
    from repro.governance import govern

    start = perf_counter()
    with use(tracer), govern(policy):
        if args.plan or args.explain:
            query_plan = plan_join(r, s, algorithm=algorithm,
                                   workload=_workload_from_args(args), **kwargs)
            if args.explain:
                print(query_plan.explain())
                print()
            result = execute_plan(query_plan, r, s)
        elif args.executor:
            result = _run_executor(args, r, s, algorithm, kwargs)
        else:
            result = _run_join_strategy(args, r, s, algorithm, kwargs)
    elapsed = perf_counter() - start
    st = result.stats
    if tracer.registry is not None:
        st.snapshot_registry(tracer.registry)
    print(f"{st.algorithm}: {len(result)} pairs in {reporting.fmt_seconds(elapsed)} "
          f"(build {reporting.fmt_seconds(st.build_seconds)}, "
          f"probe {reporting.fmt_seconds(st.probe_seconds)}, "
          f"verifications {st.verifications}, node visits {st.node_visits})")
    degradation = {key: int(st.extras[key])
                   for key in ("retries", "timeouts", "fallback_chunks",
                               "fallback_shards", "pool_restarts",
                               "corrupt_chunks", "corrupt_shards",
                               "cancelled_chunks")
                   if st.extras.get(key)}
    if st.extras.get("degraded_to"):
        degradation["degraded_to"] = st.extras["degraded_to"]
    if degradation:
        print("degraded: " + ", ".join(f"{k}={v}" for k, v in degradation.items()),
              file=sys.stderr)
    _report_observability(args, tracer,
                          meta={"algorithm": st.algorithm, "r": args.r, "s": args.s,
                                "strategy": args.strategy})
    if args.output:
        write_join_result(result.pairs, args.output)
        print(f"pairs written to {args.output}")
    return 0


def _run_executor(args: argparse.Namespace, r, s, algorithm: str, kwargs: dict):
    """Run the executor ``--executor`` names, configured from the CLI flags."""
    from repro.core.registry import choose_algorithm_name
    from repro.exec import RetryPolicy, executor_class

    if algorithm.strip().lower() == "auto":
        algorithm = choose_algorithm_name(s)
    options: dict = {}
    if args.executor in ("parallel", "resilient", "sharded"):
        options["workers"] = args.workers
    if args.executor == "sharded" and args.shards is not None:
        options["shards"] = args.shards
    if args.executor in ("resilient", "sharded"):
        options["retry_policy"] = RetryPolicy(max_attempts=max(1, args.retries + 1))
        options["timeout_seconds"] = args.timeout_seconds
        options["fallback"] = not args.no_fallback
    if args.executor == "disk" and args.memory_budget is not None:
        options["max_tuples"] = args.memory_budget
    executor = executor_class(args.executor)(algorithm=algorithm, **options, **kwargs)
    return executor.join(r, s)


def _run_join_strategy(args: argparse.Namespace, r, s, algorithm: str, kwargs: dict):
    """Dispatch one join per ``--strategy`` (runs under the active tracer)."""
    if args.strategy == "memory":
        result = set_containment_join(r, s, algorithm=algorithm, **kwargs)
    else:
        from repro.core.registry import choose_algorithm_name

        if algorithm.strip().lower() == "auto":
            algorithm = choose_algorithm_name(s)
        if args.strategy == "disk":
            from repro.exec.disk import disk_partitioned_join

            per_part = max(1, len(s) // max(args.partitions, 1))
            result = disk_partitioned_join(r, s, algorithm=algorithm,
                                           max_tuples=per_part, **kwargs)
        elif args.strategy == "psj":
            from repro.external.psj import psj_join

            result = psj_join(r, s, partitions=args.partitions,
                              algorithm=algorithm, **kwargs)
        else:
            resilient = (args.retries > 0 or args.timeout_seconds is not None
                         or args.no_fallback)
            if resilient:
                from repro.exec.resilient import (
                    ResilientParallelJoin,
                    RetryPolicy,
                )

                executor = ResilientParallelJoin(
                    algorithm=algorithm,
                    workers=args.partitions,
                    retry_policy=RetryPolicy(max_attempts=max(1, args.retries + 1)),
                    timeout_seconds=args.timeout_seconds,
                    fallback=not args.no_fallback,
                    **kwargs,
                )
                result = executor.join(r, s)
            else:
                from repro.exec.parallel import parallel_join

                result = parallel_join(r, s, algorithm=algorithm,
                                       workers=args.partitions, **kwargs)
    return result


def _cmd_probe(args: argparse.Namespace) -> int:
    _apply_backend(args)
    s = _read_dataset(args.s, args.on_error)
    kwargs = {}
    if args.bits is not None:
        kwargs["bits"] = args.bits
    tracer = _make_tracer(args)
    all_pairs: list[tuple[int, int]] = []
    with use(tracer):
        index = prepare_index(s, algorithm=args.algorithm, **kwargs)
        print(f"{index.algorithm}: prepared index over {len(index)} tuples in "
              f"{reporting.fmt_seconds(index.build_seconds)} "
              f"({index.index_nodes} nodes)")
        for path in args.queries:
            result = index.probe_many(_read_dataset(path, args.on_error))
            st = result.stats
            print(f"{path}: {len(result)} pairs in "
                  f"{reporting.fmt_seconds(st.probe_seconds)} "
                  f"(probe #{int(st.extras['probe_calls'])}, "
                  f"reused_index={int(st.extras['reused_index'])}, "
                  f"build {reporting.fmt_seconds(st.build_seconds)})")
            all_pairs.extend(result.pairs)
    totals = index.join_stats()
    if tracer.registry is not None:
        totals.snapshot_registry(tracer.registry)
    print(f"total: {totals.pairs} pairs, build "
          f"{reporting.fmt_seconds(totals.build_seconds)} (once), probe "
          f"{reporting.fmt_seconds(totals.probe_seconds)} over "
          f"{index.probe_calls} batches")
    _report_observability(args, tracer,
                          meta={"algorithm": index.algorithm, "s": args.s,
                                "queries": list(args.queries)})
    if args.output:
        write_join_result(all_pairs, args.output)
        print(f"pairs written to {args.output}")
    return 0


def _bench_fig5(axis: str, base: int | None, repeats: int) -> None:
    grid = {
        "fig5a": experiments.fig5a_grid,
        "fig5b": experiments.fig5b_grid,
        "fig5c": experiments.fig5c_grid,
    }[axis](base or experiments.FIG5_SIZE)
    ratios = experiments.SIGNATURE_RATIOS
    series: dict[str, list[float | None]] = {}
    for label, config in grid:
        r, s = harness.dataset_pair(config)
        timings: list[float | None] = []
        for ratio in ratios:
            bits = min(max(ratio * config.avg_cardinality, 8), config.domain)
            record = harness.run_algorithm("ptsj", r, s, repeats=repeats, bits=bits)
            timings.append(record.seconds)
        series[label] = timings
    print(reporting.format_series(f"PTSJ time vs b/c ratio ({axis})", "b/c",
                                  list(ratios), series))


def _bench_fig6(which: str, base: int | None, repeats: int) -> None:
    base = base or experiments.BASE_SIZE
    if which == "fig6a":
        configs = experiments.fig6c_configs(base)
        series: dict[str, list[float | None]] = {name: [] for name in experiments.ALL_ALGORITHMS}
        for config in configs:
            r, s = harness.dataset_pair(config)
            for name in experiments.ALL_ALGORITHMS:
                series[name].append(memory.memory_per_tuple(name, r, s))
        print(reporting.format_series("Memory per tuple vs set cardinality", "c",
                                      [c.name for c in configs], series,
                                      value_format=reporting.fmt_bytes))
        return
    configs = {
        "fig6b": lambda: experiments.fig6b_configs(base),
        "fig6c": lambda: experiments.fig6c_configs(base),
        "fig6d": lambda: experiments.fig6def_configs(2 ** 4, base),
        "fig6e": lambda: experiments.fig6def_configs(2 ** 6, base),
        "fig6f": lambda: experiments.fig6def_configs(2 ** 8, base),
    }[which]()
    series = harness.sweep(configs, experiments.ALL_ALGORITHMS, repeats=repeats,
                           skip=experiments.shj_infeasible)
    print(reporting.format_series(which, "config", [c.name for c in configs], series))


def _bench_fig8(base: int | None, repeats: int) -> None:
    datasets = experiments.fig8_datasets(base or 256)
    labels = [name for name, _, _ in datasets]
    series: dict[str, list[float | None]] = {name: [] for name in experiments.ALL_ALGORITHMS}
    for _, r, s in datasets:
        for name in experiments.ALL_ALGORITHMS:
            record = harness.run_algorithm(name, r, s, repeats=repeats)
            series[name].append(record.seconds)
    print(reporting.format_ratios("Real-world surrogates (time / best)", labels, series))


def _bench_fig7(which: str, base: int | None, repeats: int) -> None:
    axis = "cardinality" if which in ("fig7a", "fig7c") else "element"
    distribution = "poisson" if which in ("fig7a", "fig7b") else "zipf"
    configs = experiments.fig7_configs(axis, distribution,
                                       base or experiments.BASE_SIZE)
    series = harness.sweep(configs, experiments.ALL_ALGORITHMS, repeats=repeats,
                           skip=experiments.shj_infeasible)
    print(reporting.format_series(f"{which}: {distribution} on set {axis}",
                                  "config", [c.name for c in configs], series))


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.experiment.startswith("fig5"):
        _bench_fig5(args.experiment, args.base, args.repeats)
    elif args.experiment.startswith("fig7"):
        _bench_fig7(args.experiment, args.base, args.repeats)
    elif args.experiment == "fig8":
        _bench_fig8(args.base, args.repeats)
    else:
        _bench_fig6(args.experiment, args.base, args.repeats)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    _apply_backend(args)
    # Imported lazily: the serving layer (sockets, thread pool) should
    # not load for the one-shot subcommands.
    from repro.serve import JoinServer

    policy = None
    if args.max_memory is not None:
        from repro.governance import GovernancePolicy

        policy = GovernancePolicy(memory_budget_bytes=args.max_memory)
    server = JoinServer(
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        max_inflight=args.max_inflight,
        cache_capacity=args.cache_capacity,
        cache_ttl_seconds=args.cache_ttl,
        default_policy=policy,
        default_deadline_seconds=args.deadline_seconds,
    )
    server.start()
    assert server.address is not None
    print(f"serving on {server.address[0]}:{server.address[1]} "
          f"(cache={args.cache_capacity}, inflight<={server.max_inflight}); "
          f"send a shutdown request or Ctrl-C to stop", flush=True)
    try:
        server.wait()
    except KeyboardInterrupt:  # repro: noqa RPR008 Ctrl-C is the operator's shutdown request; stop() in finally does the work  # pragma: no cover - interactive path
        pass
    finally:
        server.stop()
    print("server stopped", flush=True)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # The analysis package is self-contained and lazily imported: linting
    # never drags in numpy or the multiprocessing machinery.
    from repro.analysis.engine import run as lint_run

    return lint_run(args)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "stats": _cmd_stats,
        "explain": _cmd_explain,
        "join": _cmd_join,
        "probe": _cmd_probe,
        "serve": _cmd_serve,
        "backends": _cmd_backends,
        "lint": _cmd_lint,
        "bench": _cmd_bench,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
