"""Trie-trie join (paper Sec. VI future work: "trie-trie join").

The paper's conclusion proposes joining two tries directly instead of
probing one trie once per tuple of the other relation.  This module
implements that idea over binary signature tries: both relations are
indexed, then a single simultaneous traversal finds every leaf pair
``(r_leaf, s_leaf)`` with ``s.sig ⊑ r.sig``.

The traversal expands node *pairs* level by level:

* query side (R) bit 0  — the S side must also be 0: pair (r.left, s.left);
* query side (R) bit 1  — the S side may be 0 or 1: pairs
  (r.right, s.left) and (r.right, s.right).

Shared prefixes on *both* sides are therefore processed once — the
amortisation the paper anticipates — at the cost of a worst-case
quadratic pair frontier; the ablation benchmark measures where each side
of that trade-off wins.
"""

from __future__ import annotations

from repro.core.base import CandidateGroup, JoinResult, JoinStats, SetContainmentJoin
from repro.core.framework import insert_into_groups
from repro.relations.relation import Relation
from repro.signatures.hashing import ModuloScheme, SignatureScheme
from repro.signatures.length import SignatureLengthStrategy
from repro.tries.binary_trie import BinaryTrie, BinaryTrieNode

__all__ = ["TrieTrieJoin"]


class TrieTrieJoin(SetContainmentJoin):
    """Set-containment join by simultaneous traversal of two binary tries.

    Args:
        bits: Signature length; ``None`` applies the Sec. III-D strategy
            (with a lower default ratio — deep tries cost more here, and
            the pair frontier grows with width).
        scheme_factory: Signature hash scheme.
    """

    name = "trie-trie"

    def __init__(
        self,
        bits: int | None = None,
        scheme_factory: type[SignatureScheme] = ModuloScheme,
    ) -> None:
        self.requested_bits = bits
        self.scheme_factory = scheme_factory
        self.scheme: SignatureScheme | None = None
        self.r_trie: BinaryTrie | None = None
        self.s_trie: BinaryTrie | None = None

    def _choose_bits(self, r: Relation, s: Relation) -> int:
        if self.requested_bits is not None:
            return self.requested_bits
        cards = [rec.cardinality for rec in r] + [rec.cardinality for rec in s]
        avg_c = max(sum(cards) / len(cards), 1.0) if cards else 1.0
        domain = max(r.max_element(), s.max_element()) + 1
        # Quarter of PTSJ's default ratio: the pair frontier punishes depth.
        return SignatureLengthStrategy(ratio=0.125).choose(avg_c, max(domain, 1))

    def _build(self, r: Relation, s: Relation, stats: JoinStats) -> None:
        bits = self._choose_bits(r, s)
        stats.signature_bits = bits
        self.scheme = self.scheme_factory(bits)
        signature = self.scheme.signature
        self.r_trie = BinaryTrie(bits)
        for rec in r:
            insert_into_groups(self.r_trie.insert(signature(rec.elements)), rec)
        self.s_trie = BinaryTrie(bits)
        for rec in s:
            insert_into_groups(self.s_trie.insert(signature(rec.elements)), rec)
        stats.index_nodes = self.r_trie.node_count() + self.s_trie.node_count()

    def _probe(self, r: Relation, stats: JoinStats) -> list[tuple[int, int]]:
        """One simultaneous traversal emits all candidate leaf pairs."""
        assert self.r_trie is not None and self.s_trie is not None
        pairs: list[tuple[int, int]] = []
        visits = 0
        stack: list[tuple[BinaryTrieNode, BinaryTrieNode]] = [
            (self.r_trie.root, self.s_trie.root)
        ]
        while stack:
            r_node, s_node = stack.pop()
            visits += 1
            if r_node.items is not None:
                # Both tries have uniform depth, so s_node is a leaf too.
                for s_group in s_node.items:  # type: ignore[union-attr]
                    for r_group in r_node.items:
                        stats.candidates += 1
                        stats.verifications += 1
                        if s_group.elements <= r_group.elements:
                            for r_id in r_group.ids:
                                for s_id in s_group.ids:
                                    pairs.append((r_id, s_id))
                continue
            r_left, r_right = r_node.left, r_node.right
            s_left, s_right = s_node.left, s_node.right
            if r_left is not None and s_left is not None:
                stack.append((r_left, s_left))
            if r_right is not None:
                if s_left is not None:
                    stack.append((r_right, s_left))
                if s_right is not None:
                    stack.append((r_right, s_right))
        stats.node_visits += visits
        return pairs

    def join(self, r: Relation, s: Relation) -> JoinResult:
        """Compute ``R ⋈⊇ S`` (both sides are indexed; R is the query side)."""
        return super().join(r, s)
