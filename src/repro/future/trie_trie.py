"""Trie-trie join (paper Sec. VI future work: "trie-trie join").

The paper's conclusion proposes joining two tries directly instead of
probing one trie once per tuple of the other relation.  This module
implements that idea over binary signature tries: the indexed relation's
trie is prepared once, each batch probe builds a trie over the probe
relation, and a single simultaneous traversal finds every leaf pair
``(r_leaf, s_leaf)`` with ``s.sig ⊑ r.sig``.

The traversal expands node *pairs* level by level:

* query side (R) bit 0  — the S side must also be 0: pair (r.left, s.left);
* query side (R) bit 1  — the S side may be 0 or 1: pairs
  (r.right, s.left) and (r.right, s.right).

Shared prefixes on *both* sides are therefore processed once — the
amortisation the paper anticipates — at the cost of a worst-case
quadratic pair frontier; the ablation benchmark measures where each side
of that trade-off wins.  Single-record probes skip the R-trie and fall
back to an ordinary subset walk of the prepared S-trie.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.base import JoinStats, PreparedIndex, SetContainmentJoin
from repro.core.framework import insert_into_groups
from repro.governance.policy import governor
from repro.obs.tracer import current_tracer
from repro.relations.relation import Relation, SetRecord
from repro.signatures.hashing import ModuloScheme, SignatureScheme
from repro.signatures.length import SignatureLengthStrategy
from repro.tries.binary_trie import BinaryTrie, BinaryTrieNode

__all__ = ["TrieTrieJoin", "TrieTriePreparedIndex"]


class TrieTriePreparedIndex(PreparedIndex):
    """A prepared binary signature trie over ``S`` for trie-trie joins.

    Batch probes index the probe relation into its own trie and run the
    simultaneous traversal; the R-trie is probe-batch state and is
    discarded afterwards.
    """

    def __init__(self, scheme: SignatureScheme, s_trie: BinaryTrie, relation: Relation) -> None:
        super().__init__("trie-trie", relation)
        self.scheme = scheme
        self.s_trie = s_trie

    def _build_probe_trie(self, r: Relation) -> BinaryTrie:
        r_trie = BinaryTrie(self.scheme.bits)
        signature = self.scheme.signature
        gov = governor("probe")
        for rec in r:
            if gov is not None:
                gov.tick()
            insert_into_groups(r_trie.insert(signature(rec.elements)), rec)
        return r_trie

    def probe(self, record: SetRecord, stats: JoinStats | None = None) -> Iterator[int]:
        """Single-record fallback: a subset walk of the S-trie plus verify."""
        stats = self._target(stats)
        r_set = record.elements
        leaves = self.s_trie.subset_leaves(self.scheme.signature(r_set))
        stats.node_visits += self.s_trie.visits_last_query
        for leaf in leaves:
            for group in leaf.items:  # type: ignore[union-attr]
                stats.candidates += 1
                stats.verifications += 1
                if group.elements <= r_set:
                    yield from group.ids

    def _probe_all(self, r: Relation, stats: JoinStats) -> list[tuple[int, int]]:
        """One simultaneous traversal emits all candidate leaf pairs.

        Under an active tracer the probe-batch R-trie construction
        (``probe_trie_build``) and the simultaneous walk (``traverse``)
        are reported as child spans of ``probe``.
        """
        tracer = current_tracer()
        with tracer.span("probe_trie_build"):
            r_trie = self._build_probe_trie(r)
        stats.index_nodes = r_trie.node_count() + self.s_trie.node_count()
        pairs: list[tuple[int, int]] = []
        visits = 0
        with tracer.span("traverse"):
            gov = governor("probe", stats)
            stack: list[tuple[BinaryTrieNode, BinaryTrieNode]] = [
                (r_trie.root, self.s_trie.root)
            ]
            while stack:
                if gov is not None:
                    gov.tick()
                r_node, s_node = stack.pop()
                visits += 1
                if r_node.items is not None:
                    # Both tries have uniform depth, so s_node is a leaf too.
                    for s_group in s_node.items:  # type: ignore[union-attr]
                        for r_group in r_node.items:
                            stats.candidates += 1
                            stats.verifications += 1
                            if s_group.elements <= r_group.elements:
                                for r_id in r_group.ids:
                                    for s_id in s_group.ids:
                                        pairs.append((r_id, s_id))
                    continue
                r_left, r_right = r_node.left, r_node.right
                s_left, s_right = s_node.left, s_node.right
                if r_left is not None and s_left is not None:
                    stack.append((r_left, s_left))
                if r_right is not None:
                    if s_left is not None:
                        stack.append((r_right, s_left))
                    if s_right is not None:
                        stack.append((r_right, s_right))
            if tracer.enabled:
                tracer.count("pair_visits", visits)
        stats.node_visits += visits
        return pairs

    def memory_objects(self, probe_relation: Relation | None = None) -> list[Any]:
        objs: list[Any] = [self.s_trie]
        if probe_relation is not None:
            objs.append(self._build_probe_trie(probe_relation))
        return objs


class TrieTrieJoin(SetContainmentJoin):
    """Set-containment join by simultaneous traversal of two binary tries.

    Args:
        bits: Signature length; ``None`` applies the Sec. III-D strategy
            (with a lower default ratio — deep tries cost more here, and
            the pair frontier grows with width).
        scheme_factory: Signature hash scheme.
    """

    name = "trie-trie"

    def __init__(
        self,
        bits: int | None = None,
        scheme_factory: type[SignatureScheme] = ModuloScheme,
    ) -> None:
        self.requested_bits = bits
        self.scheme_factory = scheme_factory
        self.scheme: SignatureScheme | None = None
        self.s_trie: BinaryTrie | None = None

    def _choose_bits(self, r: Relation | None, s: Relation) -> int:
        if self.requested_bits is not None:
            return self.requested_bits
        cards = [rec.cardinality for rec in s]
        max_elem = s.max_element()
        if r is not None:
            cards += [rec.cardinality for rec in r]
            max_elem = max(max_elem, r.max_element())
        avg_c = max(sum(cards) / len(cards), 1.0) if cards else 1.0
        domain = max_elem + 1
        # Quarter of PTSJ's default ratio: the pair frontier punishes depth.
        return SignatureLengthStrategy(ratio=0.125).choose(avg_c, max(domain, 1))

    def _prepare(self, s: Relation, probe_hint: Relation | None = None) -> TrieTriePreparedIndex:
        bits = self._choose_bits(probe_hint, s)
        self.scheme = self.scheme_factory(bits)
        signature = self.scheme.signature
        s_trie = BinaryTrie(bits)
        gov = governor("build")
        for rec in s:
            if gov is not None:
                gov.tick()
            insert_into_groups(s_trie.insert(signature(rec.elements)), rec)
        self.s_trie = s_trie
        index = TrieTriePreparedIndex(self.scheme, s_trie, s)
        index.signature_bits = bits
        index.index_nodes = s_trie.node_count()
        return index
