"""Paper Sec. VI future-work directions, implemented.

* :class:`~repro.future.multiway.MWTSJ` — multi-way (16-ary) signature
  trie join ("more advanced data structures such as multi-way trie").
* :class:`~repro.future.trie_trie.TrieTrieJoin` — simultaneous traversal
  of two signature tries ("join algorithms such as trie-trie join").
* :class:`~repro.exec.parallel.ParallelJoin` — partition-parallel
  execution over worker processes ("nontrivial multi-core ... settings").
* :class:`~repro.exec.resilient.ResilientParallelJoin` — the same
  partition parallelism with per-chunk retry, timeouts, pool re-creation
  and an in-process fallback, so one bad worker degrades the join
  instead of killing it (see ``docs/ROBUSTNESS.md``).

The parallel executors now live in :mod:`repro.exec` (see
``docs/EXECUTORS.md``); they are re-exported here — and importable via
the deprecated ``repro.future.parallel`` / ``repro.future.resilient``
module paths — for backwards compatibility.
"""

from repro.exec.parallel import ParallelJoin, parallel_join
from repro.exec.resilient import (
    ResilientParallelJoin,
    RetryPolicy,
    resilient_parallel_join,
)
from repro.future.multiway import MWTSJ, MultiwayTrie
from repro.future.trie_trie import TrieTrieJoin

__all__ = [
    "MultiwayTrie",
    "MWTSJ",
    "TrieTrieJoin",
    "ParallelJoin",
    "parallel_join",
    "ResilientParallelJoin",
    "RetryPolicy",
    "resilient_parallel_join",
]
