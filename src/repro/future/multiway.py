"""Multi-way signature trie (paper Sec. VI future work: "multi-way trie").

The paper's conclusion singles out "more advanced data structures (such as
multi-way trie)" as the natural next step.  This module explores it: a
trie over signature *nibbles* (4 bits per level, up to 16 children per
node), so the trie is 4x shallower than the binary trie and each level's
subset enumeration walks at most the children whose nibble is a submask of
the query nibble — a constant-bounded local enumeration instead of PTSJ's
two-way branch decisions.

Compared to the Patricia trie it trades path compression for fan-out:
dense levels resolve in one hop, but sparse regions pay for per-node child
dictionaries.  ``benchmarks/test_ablation_multiway.py`` measures the
trade-off against PTSJ.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.base import CandidateGroup, JoinStats
from repro.core.framework import SignatureJoinBase, insert_into_groups
from repro.errors import TrieError
from repro.governance.policy import governor
from repro.relations.relation import Relation
from repro.signatures.bitmap import validate_signature

__all__ = ["MultiwayTrie", "MWTSJ", "NIBBLE_BITS"]

#: Bits consumed per trie level.
NIBBLE_BITS = 4
_FANOUT = 1 << NIBBLE_BITS
_NIBBLE_MASK = _FANOUT - 1

#: Precomputed submasks of every nibble value (at most 16 each).
_SUBMASKS: list[tuple[int, ...]] = []
for _mask in range(_FANOUT):
    _subs = []
    _sub = _mask
    while True:
        _subs.append(_sub)
        if _sub == 0:
            break
        _sub = (_sub - 1) & _mask
    _SUBMASKS.append(tuple(_subs))


class _MultiwayNode:
    """One multi-way trie node: children keyed by nibble value."""

    __slots__ = ("children", "signature", "items")

    def __init__(self) -> None:
        self.children: dict[int, _MultiwayNode] = {}
        self.signature: int | None = None
        self.items: list[Any] | None = None


class MultiwayTrie:
    """A 16-way trie over fixed-width signatures, 4 bits per level.

    Signature widths are rounded up to a multiple of :data:`NIBBLE_BITS`
    internally; the same payload-list contract as the other tries applies.

    Args:
        bits: Signature width.

    Raises:
        TrieError: If ``bits`` is not positive.
    """

    def __init__(self, bits: int) -> None:
        if bits <= 0:
            raise TrieError(f"signature width must be positive, got {bits}")
        self.bits = bits
        self.levels = (bits + NIBBLE_BITS - 1) // NIBBLE_BITS
        self.root = _MultiwayNode()
        self.leaf_count = 0
        self.visits_last_query = 0

    def _nibbles(self, signature: int) -> Iterator[int]:
        """Yield the signature's nibbles, most significant first."""
        padded = signature << (self.levels * NIBBLE_BITS - self.bits)
        for level in range(self.levels - 1, -1, -1):
            yield (padded >> (level * NIBBLE_BITS)) & _NIBBLE_MASK

    def insert(self, signature: int) -> list[Any]:
        """Insert ``signature``; return its (possibly shared) payload list."""
        validate_signature(signature, self.bits)
        node = self.root
        for nibble in self._nibbles(signature):
            child = node.children.get(nibble)
            if child is None:
                child = _MultiwayNode()
                node.children[nibble] = child
            node = child
        if node.items is None:
            node.items = []
            node.signature = signature
            self.leaf_count += 1
        return node.items

    def subset_leaves(self, signature: int) -> list[_MultiwayNode]:
        """Leaves whose signature is ``⊑ signature``.

        Per level, only children stored under a submask of the query's
        nibble can survive; the precomputed submask tables make that a
        bounded dictionary probe per node.
        """
        validate_signature(signature, self.bits)
        frontier = [self.root]
        visits = 1
        for nibble in self._nibbles(signature):
            submasks = _SUBMASKS[nibble]
            next_frontier: list[_MultiwayNode] = []
            for node in frontier:
                children = node.children
                if len(children) <= len(submasks):
                    # Sparse node: scan actual children, test containment.
                    for value, child in children.items():
                        if value & ~nibble == 0:
                            next_frontier.append(child)
                else:
                    for sub in submasks:
                        child = children.get(sub)
                        if child is not None:
                            next_frontier.append(child)
            frontier = next_frontier
            visits += len(frontier)
            if not frontier:
                break
        self.visits_last_query = visits
        return [node for node in frontier if node.items is not None]

    def __len__(self) -> int:
        """Number of distinct signatures stored."""
        return self.leaf_count

    def node_count(self) -> int:
        """Total allocated nodes."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count


class MWTSJ(SignatureJoinBase):
    """Multi-Way Trie Signature Join — the future-work variant of PTSJ.

    Same interface and defaults as :class:`repro.core.ptsj.PTSJ`; only the
    enumeration structure differs.
    """

    name = "mwtsj"

    def __init__(self, bits: int | None = None, merge_identical: bool = True, **kwargs) -> None:
        super().__init__(bits=bits, **kwargs)
        self.merge_identical = merge_identical
        self.trie: MultiwayTrie | None = None

    def _build_index(self, s: Relation, stats: JoinStats) -> None:
        assert self.scheme is not None
        trie = MultiwayTrie(self.scheme.bits)
        signature = self.scheme.signature
        gov = governor("build", stats)
        if self.merge_identical:
            for rec in s:
                if gov is not None:
                    gov.tick()
                insert_into_groups(trie.insert(signature(rec.elements)), rec)
        else:
            for rec in s:
                if gov is not None:
                    gov.tick()
                trie.insert(signature(rec.elements)).append(
                    CandidateGroup(rec.elements, rec.rid)
                )
        self.trie = trie
        stats.index_nodes = trie.node_count()

    def _enumerate_groups(self, signature: int, stats: JoinStats):
        trie = self.trie
        assert trie is not None
        leaves = trie.subset_leaves(signature)
        stats.node_visits += trie.visits_last_query
        for leaf in leaves:
            yield leaf.items
