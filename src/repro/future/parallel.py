"""Multi-core partition-parallel join (paper Sec. VI future work).

"Extending the algorithms to nontrivial multi-core ... settings will be
essential when relation size goes beyond millions of tuples."

This module provides the straightforward first step: split the probe
relation ``R`` into chunks and run the chosen in-memory algorithm on each
chunk in a separate worker process (the index over ``S`` is rebuilt per
worker — embarrassingly parallel, no shared state).  Output equals the
sequential join's because ``R ⋈⊇ S = ⋃_i (R_i ⋈⊇ S)``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from repro.core.base import JoinResult, JoinStats
from repro.core.registry import make_algorithm
from repro.errors import AlgorithmError
from repro.external.partition import partition_relation
from repro.relations.relation import Relation

__all__ = ["ParallelJoin", "parallel_join"]


def _run_chunk(args: tuple[str, dict, Relation, Relation]) -> tuple[list[tuple[int, int]], JoinStats]:
    """Worker entry point (module-level so it pickles)."""
    algorithm, kwargs, r_chunk, s = args
    result = make_algorithm(algorithm, **kwargs).join(r_chunk, s)
    return result.pairs, result.stats


class ParallelJoin:
    """Partition-parallel set-containment join over worker processes.

    Args:
        algorithm: Registry name of the per-chunk in-memory algorithm.
        workers: Worker process count (>= 1).  ``workers=1`` degenerates
            to the sequential join in-process (no pool), which keeps tests
            and small inputs cheap.
        chunks: Number of R-chunks; defaults to ``workers``.
        **algorithm_kwargs: Forwarded to the algorithm factory.

    Raises:
        AlgorithmError: On a non-positive worker or chunk count.
    """

    def __init__(
        self,
        algorithm: str = "ptsj",
        workers: int = 2,
        chunks: int | None = None,
        **algorithm_kwargs,
    ) -> None:
        if workers <= 0:
            raise AlgorithmError(f"workers must be positive, got {workers}")
        if chunks is not None and chunks <= 0:
            raise AlgorithmError(f"chunks must be positive, got {chunks}")
        self.algorithm = algorithm
        self.workers = workers
        self.chunks = chunks or workers
        self.algorithm_kwargs = algorithm_kwargs

    def join(self, r: Relation, s: Relation) -> JoinResult:
        """Compute ``R ⋈⊇ S`` across worker processes."""
        stats = JoinStats(algorithm=f"parallel-{self.algorithm}")
        chunk_size = max(1, -(-len(r) // self.chunks)) if len(r) else 1
        r_chunks = partition_relation(r, chunk_size)
        stats.extras["workers"] = self.workers
        stats.extras["chunks"] = len(r_chunks)

        tasks = [(self.algorithm, self.algorithm_kwargs, chunk, s) for chunk in r_chunks]
        pairs: list[tuple[int, int]] = []
        if self.workers == 1:
            outcomes = map(_run_chunk, tasks)
        else:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                outcomes = list(pool.map(_run_chunk, tasks))
        for chunk_pairs, chunk_stats in outcomes:
            pairs.extend(chunk_pairs)
            stats.build_seconds += chunk_stats.build_seconds
            stats.probe_seconds += chunk_stats.probe_seconds
            stats.candidates += chunk_stats.candidates
            stats.verifications += chunk_stats.verifications
            stats.node_visits += chunk_stats.node_visits
            stats.intersections += chunk_stats.intersections
            stats.signature_bits = max(stats.signature_bits, chunk_stats.signature_bits)
        return JoinResult(pairs, stats)


def parallel_join(
    r: Relation,
    s: Relation,
    algorithm: str = "ptsj",
    workers: int = 2,
    **algorithm_kwargs,
) -> JoinResult:
    """One-shot helper around :class:`ParallelJoin`."""
    return ParallelJoin(algorithm=algorithm, workers=workers, **algorithm_kwargs).join(r, s)
