"""Deprecated shim: :class:`ParallelJoin` moved to :mod:`repro.exec.parallel`.

The executors were unified behind the :class:`repro.exec.Executor`
protocol (see ``docs/EXECUTORS.md``); this module re-exports the public
surface so pre-refactor imports keep working.  New code should import
from :mod:`repro.exec`.
"""

from __future__ import annotations

import warnings

from repro.exec.parallel import (  # noqa: F401 - re-exported for compatibility
    ParallelJoin,
    merge_chunk_stats,
    parallel_join,
    record_chunk_span,
    _WORKER_INDEX,
    _init_worker,
    _probe_chunk,
)

__all__ = ["ParallelJoin", "parallel_join", "record_chunk_span", "merge_chunk_stats"]

warnings.warn(
    "repro.future.parallel is deprecated; import from repro.exec instead",
    DeprecationWarning,
    stacklevel=2,
)
