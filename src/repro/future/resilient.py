"""Deprecated shim: :class:`ResilientParallelJoin` moved to :mod:`repro.exec.resilient`.

The executors were unified behind the :class:`repro.exec.Executor`
protocol (see ``docs/EXECUTORS.md``); this module re-exports the public
surface so pre-refactor imports keep working.  New code should import
from :mod:`repro.exec`.
"""

from __future__ import annotations

import warnings

from repro.exec.resilient import (  # noqa: F401 - re-exported for compatibility
    RESILIENCE_EXTRAS,
    ResilientParallelJoin,
    RetryPolicy,
    resilient_parallel_join,
)

__all__ = ["RetryPolicy", "ResilientParallelJoin", "resilient_parallel_join"]

warnings.warn(
    "repro.future.resilient is deprecated; import from repro.exec instead",
    DeprecationWarning,
    stacklevel=2,
)
