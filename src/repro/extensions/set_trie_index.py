"""Element-space set index: PRETTI+'s trie as a reusable query structure.

The paper's Sec. III-E reuse argument is made for PTSJ's signature trie,
but the same economics apply on the IR side: the element-space Patricia
trie PRETTI+ builds (Algorithm 8) can serve single-shot subset / superset
/ equality queries directly — and, per the paper's regime analysis, it is
the better engine when set cardinalities are small.

:class:`SetTrieIndex` packages that: build once over a relation, probe
many times.  It is the element-space sibling of
:class:`~repro.extensions.set_index.PatriciaSetIndex`; the ablation
benchmark ``benchmarks/test_ablation_index_choice.py`` measures which
sibling wins per cardinality regime, mirroring the paper's join-level
crossover at query level.

Unlike the signature index, results are exact with *no verification
step*: the trie stores the actual element runs.
"""

from __future__ import annotations

from repro.relations.relation import Relation
from repro.tries.set_patricia import SetPatriciaTrie

__all__ = ["SetTrieIndex"]


class SetTrieIndex:
    """Patricia set-trie index over one relation (element space).

    Args:
        relation: The relation to index.

    All probes return tuple-id lists (order unspecified).
    """

    def __init__(self, relation: Relation) -> None:
        self.trie = SetPatriciaTrie()
        self._sets: dict[int, frozenset[int]] = {}
        for rec in relation:
            self.trie.insert(rec.sorted_elements(), rec.rid)
            self._sets[rec.rid] = rec.elements

    def __len__(self) -> int:
        return len(self.trie)

    # ------------------------------------------------------------------
    # Probes (exact — element-space tries need no verification)
    # ------------------------------------------------------------------
    def subsets_of(self, query: frozenset[int]) -> list[int]:
        """Ids whose set is contained in ``query``."""
        return self.trie.subsets_of(query)

    def supersets_of(self, query: frozenset[int]) -> list[int]:
        """Ids whose set contains ``query``."""
        return self.trie.supersets_of(query)

    def equal_to(self, query: frozenset[int]) -> list[int]:
        """Ids whose set equals ``query`` (walk along the sorted run)."""
        elements = tuple(sorted(query))
        node = self.trie.root
        consumed = 0
        while True:
            prefix = node.prefix
            if tuple(elements[consumed:consumed + len(prefix)]) != prefix:
                return []
            consumed += len(prefix)
            if consumed == len(elements):
                return list(node.tuples)
            child = node.children.get(elements[consumed])
            if child is None:
                return []
            node = child

    # ------------------------------------------------------------------
    # Dynamic maintenance
    # ------------------------------------------------------------------
    def add(self, rid: int, elements: frozenset[int]) -> None:
        """Index one more tuple."""
        self.trie.insert(tuple(sorted(elements)), rid)
        self._sets[rid] = elements

    def discard(self, rid: int) -> bool:
        """Remove one tuple by id; returns ``True`` if it was indexed."""
        elements = self._sets.pop(rid, None)
        if elements is None:
            return False
        return self.trie.remove(tuple(sorted(elements)), rid)
