"""Set-similarity join on the signature trie (paper Sec. III-E3, Alg. 7).

Finds all pairs whose sets differ in at most ``k`` elements (symmetric
difference — the set-space analogue of Hamming distance the paper's
Algorithm 7 filters for in signature space).  Because a per-element hash
maps each differing element to at most one flipped signature bit,

    hamming(sig(a), sig(b)) <= |a Δ b|,

so the trie's Hamming walk is a sound filter; exact distances are computed
on the surviving candidates.  As the paper notes, this lets one index
serve containment *and* similarity workloads (the OLAP reuse argument).
"""

from __future__ import annotations


from repro.core.base import JoinResult, JoinStats
from repro.errors import AlgorithmError
from repro.extensions.set_index import PatriciaSetIndex, build_patricia_index
from repro.obs.clock import perf_counter
from repro.obs.tracer import current_tracer
from repro.relations.relation import Relation

__all__ = ["similarity_join", "similarity_join_on_index", "jaccard_join", "jaccard_join_on_index"]


def similarity_join_on_index(
    r: Relation, index: PatriciaSetIndex, threshold: int
) -> JoinResult:
    """Probe an existing Patricia index for ``|r.set Δ s.set| <= threshold``.

    Raises:
        AlgorithmError: If ``threshold`` is negative.
    """
    if threshold < 0:
        raise AlgorithmError(f"similarity threshold must be non-negative, got {threshold}")
    stats = JoinStats(algorithm="ptsj-similarity", signature_bits=index.bits)
    stats.extras["threshold"] = threshold
    tracer = current_tracer()
    pairs: list[tuple[int, int]] = []
    with tracer.span("probe"):
        start = perf_counter()
        for rec in r:
            for group, _distance in index.within_hamming(rec.elements, threshold):
                stats.candidates += 1
                stats.verifications += 1
                for s_id in group.ids:
                    pairs.append((rec.rid, s_id))
            stats.node_visits += index.trie.visits_last_query
        stats.probe_seconds = perf_counter() - start
        if tracer.enabled:
            tracer.count("probe_records", len(r))
            tracer.count("pairs", len(pairs))
            tracer.count("candidates", stats.candidates)
            tracer.observe("probe_seconds", stats.probe_seconds)
    return JoinResult(pairs, stats)


def jaccard_join_on_index(
    r: Relation, index: PatriciaSetIndex, threshold: float
) -> JoinResult:
    """Probe an existing index for ``jaccard(r.set, s.set) >= threshold``.

    Jaccard similarity reduces to the trie's Hamming filter through a
    per-query bound: ``J(A, B) >= t`` forces ``|A ∪ B| <= |A| / t`` (since
    ``|A ∩ B| >= t |A ∪ B|`` and ``|A ∩ B| <= |A|``), hence

        |A Δ B| = |A ∪ B| (1 - J)  <=  |A| (1 - t) / t,

    and signature Hamming distance lower-bounds ``|A Δ B|``.  Candidates
    are verified with the exact Jaccard.  The empty set is, by the usual
    convention, similar only to itself (J(∅, ∅) = 1).

    Raises:
        AlgorithmError: If ``threshold`` is not in (0, 1].
    """
    if not 0.0 < threshold <= 1.0:
        raise AlgorithmError(f"jaccard threshold must be in (0, 1], got {threshold}")
    stats = JoinStats(algorithm="ptsj-jaccard", signature_bits=index.bits)
    stats.extras["threshold"] = threshold
    tracer = current_tracer()
    pairs: list[tuple[int, int]] = []
    with tracer.span("probe"):
        start = perf_counter()
        for rec in r:
            query = rec.elements
            hamming_budget = int(len(query) * (1.0 - threshold) / threshold)
            for group, _distance in index.within_hamming(query, hamming_budget):
                stats.candidates += 1
                stats.verifications += 1
                union = len(query | group.elements)
                jaccard = (len(query & group.elements) / union) if union else 1.0
                if jaccard >= threshold:
                    for s_id in group.ids:
                        pairs.append((rec.rid, s_id))
            stats.node_visits += index.trie.visits_last_query
        stats.probe_seconds = perf_counter() - start
        if tracer.enabled:
            tracer.count("probe_records", len(r))
            tracer.count("pairs", len(pairs))
            tracer.count("candidates", stats.candidates)
            tracer.observe("probe_seconds", stats.probe_seconds)
    return JoinResult(pairs, stats)


def jaccard_join(
    r: Relation, s: Relation, threshold: float, bits: int | None = None
) -> JoinResult:
    """All ``(r_id, s_id)`` with ``jaccard(r.set, s.set) >= threshold``.

    Example:
        >>> from repro.relations import Relation
        >>> r = Relation.from_sets([{1, 2, 3, 4}])
        >>> s = Relation.from_sets([{1, 2, 3}, {1, 9}, {1, 2, 3, 4, 5}])
        >>> sorted(jaccard_join(r, s, threshold=0.7).pairs)
        [(0, 0), (0, 2)]
    """
    index, build_seconds = build_patricia_index(s, bits=bits)
    result = jaccard_join_on_index(r, index, threshold)
    result.stats.build_seconds = build_seconds
    result.stats.index_nodes = index.trie.node_count()
    return result


def similarity_join(
    r: Relation, s: Relation, threshold: int, bits: int | None = None
) -> JoinResult:
    """All ``(r_id, s_id)`` with ``|r.set Δ s.set| <= threshold``.

    Example:
        >>> from repro.relations import Relation
        >>> r = Relation.from_sets([{1, 2, 3}])
        >>> s = Relation.from_sets([{1, 2}, {1, 2, 3, 4, 5}, {7, 8, 9}])
        >>> sorted(similarity_join(r, s, threshold=2).pairs)
        [(0, 0), (0, 1)]
    """
    index, build_seconds = build_patricia_index(s, bits=bits)
    result = similarity_join_on_index(r, index, threshold)
    result.stats.build_seconds = build_seconds
    result.stats.index_nodes = index.trie.node_count()
    return result
