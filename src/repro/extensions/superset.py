"""Superset join ``R ⋈⊆ S`` (paper Sec. III-E2, Algorithm 6).

Finds all pairs with ``r.set ⊆ s.set``.  Per the paper, the point is
*index reuse*: rather than re-indexing ``R``, the existing Patricia trie on
``S`` is probed with the branch rule switched (the Algorithm 6 swap of the
if/else cases) and the verification comparison reversed.
"""

from __future__ import annotations


from repro.core.base import JoinResult, JoinStats
from repro.extensions.set_index import PatriciaSetIndex, build_patricia_index
from repro.obs.clock import perf_counter
from repro.obs.tracer import current_tracer
from repro.relations.relation import Relation

__all__ = ["superset_join", "superset_join_on_index"]


def superset_join_on_index(r: Relation, index: PatriciaSetIndex) -> JoinResult:
    """Probe an existing index (built over ``S``) for ``r.set ⊆ s.set``.

    This is the reuse path the paper highlights: the same trie that served
    the containment join answers the superset join.  The probe runs under
    a ``probe`` span of the current tracer; ``probe_seconds`` is the same
    measurement the span carries.
    """
    stats = JoinStats(algorithm="ptsj-superset", signature_bits=index.bits)
    tracer = current_tracer()
    pairs: list[tuple[int, int]] = []
    with tracer.span("probe"):
        start = perf_counter()
        for rec in r:
            for group in index.supersets_of(rec.elements):
                stats.candidates += 1
                stats.verifications += 1
                for s_id in group.ids:
                    pairs.append((rec.rid, s_id))
            stats.node_visits += index.trie.visits_last_query
        stats.probe_seconds = perf_counter() - start
        if tracer.enabled:
            tracer.count("probe_records", len(r))
            tracer.count("pairs", len(pairs))
            tracer.count("candidates", stats.candidates)
            tracer.count("node_visits", stats.node_visits)
            tracer.observe("probe_seconds", stats.probe_seconds)
    return JoinResult(pairs, stats)


def superset_join(r: Relation, s: Relation, bits: int | None = None) -> JoinResult:
    """Compute ``R ⋈⊆ S = {(r, s) | r.set ⊆ s.set}`` from scratch.

    Builds the Patricia index on ``S`` and probes it with Algorithm 6.

    Example:
        >>> from repro.relations import Relation
        >>> r = Relation.from_sets([{1, 2}, {5}])
        >>> s = Relation.from_sets([{1, 2, 3}, {2, 3}, {4, 5}])
        >>> sorted(superset_join(r, s).pairs)
        [(0, 0), (1, 2)]
    """
    index, build_seconds = build_patricia_index(s, bits=bits)
    result = superset_join_on_index(r, index)
    result.stats.build_seconds = build_seconds
    result.stats.index_nodes = index.trie.node_count()
    return result
