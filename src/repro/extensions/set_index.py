"""A reusable Patricia signature index answering multiple query types.

Sec. III-E of the paper emphasises that PTSJ's Patricia trie is a
*general-purpose* index: the same structure built once over a relation can
answer subset (containment join), superset, set-equality and Hamming
set-similarity queries — "systems such as OLAP can benefit greatly by
reusing one index for different purposes".

:class:`PatriciaSetIndex` packages that: it owns the signature scheme, the
trie, and the merged candidate groups, and exposes one probe method per
query type.  The join wrappers in :mod:`repro.extensions` are thin loops
over these probes.  :meth:`PatriciaSetIndex.from_prepared` adopts the trie
of a PTSJ :class:`~repro.core.base.PreparedIndex` *without rebuilding it* —
the literal form of the paper's reuse argument — and
:func:`build_patricia_index` is the shared build path of the one-shot join
wrappers, routed through ``PTSJ.prepare``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.sanitizer import maybe_check_patricia_trie
from repro.core.base import CandidateGroup
from repro.core.framework import insert_into_groups
from repro.errors import AlgorithmError
from repro.relations.relation import Relation
from repro.signatures.hashing import ModuloScheme, SignatureScheme
from repro.signatures.length import SignatureLengthStrategy
from repro.tries.patricia import PatriciaTrie

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.framework import SignaturePreparedIndex

__all__ = ["PatriciaSetIndex", "build_patricia_index"]


class PatriciaSetIndex:
    """Patricia-trie signature index over one set-valued relation.

    Args:
        relation: The relation to index.
        bits: Signature length; ``None`` applies the Sec. III-D strategy to
            the relation's own statistics.
        scheme_factory: Signature hash scheme (default ``x mod b``).
        length_strategy: Alternative Sec. III-D parameterisation.

    Raises:
        AlgorithmError: If the relation is empty and no explicit ``bits``
            is given (no statistics to derive a length from).
    """

    def __init__(
        self,
        relation: Relation,
        bits: int | None = None,
        scheme_factory: type[SignatureScheme] = ModuloScheme,
        length_strategy: SignatureLengthStrategy | None = None,
    ) -> None:
        if bits is None:
            if len(relation) == 0:
                raise AlgorithmError("cannot derive a signature length from an empty relation")
            cards = [rec.cardinality for rec in relation]
            avg_c = max(sum(cards) / len(cards), 1.0)
            domain = max(relation.max_element() + 1, 1)
            strategy = length_strategy or SignatureLengthStrategy()
            bits = strategy.choose(avg_c, domain)
        self.scheme = scheme_factory(bits)
        self.trie = PatriciaTrie(bits)
        self.relation = relation
        self._size = len(relation)
        signature = self.scheme.signature
        for rec in relation:
            insert_into_groups(self.trie.insert(signature(rec.elements)), rec)
        maybe_check_patricia_trie(self.trie)

    @classmethod
    def from_prepared(cls, prepared: "SignaturePreparedIndex") -> "PatriciaSetIndex":
        """Adopt a PTSJ prepared index's trie — zero-copy index reuse.

        The containment index built by ``PTSJ.prepare`` (or the registry's
        ``prepare_index``) *is* a Patricia signature trie with merged
        groups; this wraps it so the superset/equality/similarity probes of
        Sec. III-E2/E3 run on the very same structure, no rebuild.

        Raises:
            AlgorithmError: If the prepared index does not carry a Patricia
                trie (e.g. it came from SHJ or PRETTI).
        """
        trie = getattr(prepared, "trie", None)
        scheme = getattr(prepared, "scheme", None)
        if not isinstance(trie, PatriciaTrie) or scheme is None:
            raise AlgorithmError(
                f"cannot reuse a {prepared.algorithm!r} index: "
                "only PTSJ prepared indexes expose a Patricia trie"
            )
        index = cls.__new__(cls)
        index.scheme = scheme
        index.trie = trie
        index.relation = prepared.relation
        index._size = len(prepared.relation)
        return index

    @property
    def bits(self) -> int:
        """The signature length in use."""
        return self.scheme.bits

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Dynamic maintenance
    # ------------------------------------------------------------------
    def add(self, rid: int, elements: frozenset[int]) -> None:
        """Index one more tuple (merging into an existing identical set)."""
        from repro.relations.relation import SetRecord

        insert_into_groups(
            self.trie.insert(self.scheme.signature(elements)),
            SetRecord(rid, elements),
        )
        self._size += 1
        maybe_check_patricia_trie(self.trie)

    def discard(self, rid: int, elements: frozenset[int]) -> bool:
        """Remove one tuple; returns ``True`` if it was indexed.

        Emptied groups are dropped and an emptied signature leaf is
        removed from the trie (restoring Patricia compression).
        """
        signature = self.scheme.signature(elements)
        leaf = self.trie.equal_leaf(signature)
        if leaf is None:
            return False
        groups = leaf.items
        assert groups is not None
        for index, group in enumerate(groups):
            if group.elements == elements:
                try:
                    group.ids.remove(rid)
                except ValueError:
                    return False
                if not group.ids:
                    del groups[index]
                if not groups:
                    self.trie.remove(signature)
                self._size -= 1
                maybe_check_patricia_trie(self.trie)
                return True
        return False

    # ------------------------------------------------------------------
    # Probes (each verifies candidates exactly before yielding)
    # ------------------------------------------------------------------
    def subsets_of(self, query: frozenset[int]) -> Iterator[CandidateGroup]:
        """Groups whose set is contained in ``query`` (Algorithm 5 + verify)."""
        sig = self.scheme.signature(query)
        for leaf in self.trie.subset_leaves(sig):
            for group in leaf.items:  # type: ignore[union-attr]
                if group.elements <= query:
                    yield group

    def supersets_of(self, query: frozenset[int]) -> Iterator[CandidateGroup]:
        """Groups whose set contains ``query`` (Algorithm 6 + verify)."""
        sig = self.scheme.signature(query)
        for leaf in self.trie.superset_leaves(sig):
            for group in leaf.items:  # type: ignore[union-attr]
                if group.elements >= query:
                    yield group

    def equal_to(self, query: frozenset[int]) -> Iterator[CandidateGroup]:
        """Groups whose set equals ``query`` (exact trie walk + verify).

        Thanks to merged identical sets (Sec. III-E1) at most a handful of
        groups share the signature leaf, and exactly one can match.
        """
        sig = self.scheme.signature(query)
        leaf = self.trie.equal_leaf(sig)
        if leaf is None:
            return
        for group in leaf.items:  # type: ignore[union-attr]
            if group.elements == query:
                yield group
                return

    def within_hamming(
        self, query: frozenset[int], threshold: int
    ) -> Iterator[tuple[CandidateGroup, int]]:
        """Groups whose *set* is within symmetric-difference ``threshold``.

        Signature Hamming distance lower-bounds the set symmetric
        difference (each differing element flips at most one signature
        bit), so Algorithm 7's trie filter is sound; candidates are then
        verified on actual sets.  Yields ``(group, |set Δ query|)``.
        """
        sig = self.scheme.signature(query)
        for leaf, _sig_dist in self.trie.hamming_leaves(sig, threshold):
            for group in leaf.items:  # type: ignore[union-attr]
                set_dist = len(group.elements ^ query)
                if set_dist <= threshold:
                    yield group, set_dist


def build_patricia_index(
    s: Relation, bits: int | None = None
) -> tuple[PatriciaSetIndex, float]:
    """Build a :class:`PatriciaSetIndex` via ``PTSJ.prepare`` and time it.

    The shared build path of the one-shot join wrappers (superset,
    equality, similarity): the containment algorithm prepares its index,
    and the extension queries adopt it through :meth:`PatriciaSetIndex.
    from_prepared`.  Returns ``(index, build_seconds)``.

    Raises:
        AlgorithmError: If the relation is empty and no explicit ``bits``
            is given (no statistics to derive a length from).
    """
    if bits is None and len(s) == 0:
        raise AlgorithmError("cannot derive a signature length from an empty relation")
    from repro.core.ptsj import PTSJ

    prepared = PTSJ(bits=bits).prepare(s)
    return PatriciaSetIndex.from_prepared(prepared), prepared.build_seconds
