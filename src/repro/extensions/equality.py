"""Set-equality join ``R ⋈= S`` (paper Sec. III-E2).

"A simple search on the trie will return a list of tuples with the same
signature.  Further set comparisons are needed to validate the search
results.  Since we already merge tuples with the same set values [...]
many set comparisons are saved."
"""

from __future__ import annotations


from repro.core.base import JoinResult, JoinStats
from repro.extensions.set_index import PatriciaSetIndex, build_patricia_index
from repro.obs.clock import perf_counter
from repro.obs.tracer import current_tracer
from repro.relations.relation import Relation

__all__ = ["equality_join", "equality_join_on_index"]


def equality_join_on_index(r: Relation, index: PatriciaSetIndex) -> JoinResult:
    """Probe an existing Patricia index for ``r.set = s.set`` pairs.

    The probe runs under a ``probe`` span of the current tracer, and
    ``probe_seconds`` is the span's own measurement — one clock for the
    span tree and the stats, so the two cannot drift apart (the
    double-count risk the hand-rolled timers used to carry).
    """
    stats = JoinStats(algorithm="ptsj-equality", signature_bits=index.bits)
    tracer = current_tracer()
    pairs: list[tuple[int, int]] = []
    with tracer.span("probe"):
        start = perf_counter()
        for rec in r:
            for group in index.equal_to(rec.elements):
                stats.candidates += 1
                stats.verifications += 1
                for s_id in group.ids:
                    pairs.append((rec.rid, s_id))
            stats.node_visits += index.trie.visits_last_query
        stats.probe_seconds = perf_counter() - start
        if tracer.enabled:
            tracer.count("probe_records", len(r))
            tracer.count("pairs", len(pairs))
            tracer.count("candidates", stats.candidates)
            tracer.count("node_visits", stats.node_visits)
            tracer.observe("probe_seconds", stats.probe_seconds)
    return JoinResult(pairs, stats)


def equality_join(r: Relation, s: Relation, bits: int | None = None) -> JoinResult:
    """Compute ``R ⋈= S = {(r, s) | r.set = s.set}`` from scratch.

    Example:
        >>> from repro.relations import Relation
        >>> r = Relation.from_sets([{1, 2}, {3}])
        >>> s = Relation.from_sets([{1, 2}, {1, 2, 3}, {1, 2}])
        >>> sorted(equality_join(r, s).pairs)
        [(0, 0), (0, 2)]
    """
    index, build_seconds = build_patricia_index(s, bits=bits)
    result = equality_join_on_index(r, index)
    result.stats.build_seconds = build_seconds
    result.stats.index_nodes = index.trie.node_count()
    return result
