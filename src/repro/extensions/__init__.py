"""PTSJ extensions (paper Sec. III-E): one Patricia index, many joins."""

from repro.extensions.equality import equality_join, equality_join_on_index
from repro.extensions.set_index import PatriciaSetIndex, build_patricia_index
from repro.extensions.set_trie_index import SetTrieIndex
from repro.extensions.similarity import (
    jaccard_join,
    jaccard_join_on_index,
    similarity_join,
    similarity_join_on_index,
)
from repro.extensions.superset import superset_join, superset_join_on_index

__all__ = [
    "PatriciaSetIndex",
    "build_patricia_index",
    "SetTrieIndex",
    "superset_join",
    "superset_join_on_index",
    "equality_join",
    "equality_join_on_index",
    "similarity_join",
    "similarity_join_on_index",
    "jaccard_join",
    "jaccard_join_on_index",
]
