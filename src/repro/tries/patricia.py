"""Patricia trie over fixed-length bit signatures (paper Sec. III-B).

This is the index structure of PTSJ.  A Patricia trie stores binary strings
with all single-branch runs collapsed into their parent node, so every
internal node is a genuine two-way branch and the trie over ``k`` distinct
signatures has at most ``2k - 1`` nodes regardless of signature length.

Node layout (the paper's "slight modification" of Morrison's Patricia trie):
every node stores the *segment* of logical bit positions ``[start, stop)``
it covers, together with the bit content of that segment (``prefix``).  A
child's segment begins at its parent's ``stop`` and its first prefix bit is
its branch bit: the left child starts with 0, the right child with 1.  A
node with ``stop == bits`` is a leaf and carries the full signature plus a
caller-managed payload list.

For probe speed each node caches ``shift = bits - stop`` and
``mask = 2**(stop - start) - 1``: the query's segment aligned to a node is
then the single expression ``(query >> shift) & mask``, the per-node cost
the paper's Sec. III-C2 counts in integer comparisons.

Four queries, all queue-driven per the paper's pseudo code:

* :meth:`PatriciaTrie.subset_leaves` — Algorithm 5 (PATRICIAENUM): leaves
  whose signature is ``⊑`` the query.  Drives the containment join.
* :meth:`PatriciaTrie.superset_leaves` — the Algorithm 6 branch switch:
  leaves whose signature covers the query.  Drives the superset join.
* :meth:`PatriciaTrie.equal_leaf` — exact lookup.  Drives set-equality join.
* :meth:`PatriciaTrie.hamming_leaves` — Algorithm 7 adapted to Patricia
  nodes: leaves within a Hamming-distance threshold.  Drives the
  set-similarity join (Sec. III-E3).

Each query updates :attr:`PatriciaTrie.visits_last_query` with the number of
nodes taken off the work queue, the paper's ``V`` (Sec. III-C2), so
benchmarks can report node-visit counts alongside wall time.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import TrieError
from repro.signatures.bitmap import validate_signature

__all__ = ["PatriciaNode", "PatriciaTrie"]


class PatriciaNode:
    """One Patricia-trie node covering logical bit positions ``[start, stop)``.

    Attributes:
        start: First logical bit position of the segment (inclusive).
        stop: One past the last position.  ``stop == bits`` marks a leaf.
        prefix: The segment's bit content as an int, MSB-first within the
            segment (width ``stop - start``).
        shift: Cached ``bits - stop`` (aligns a query to this segment).
        mask: Cached ``2**(stop - start) - 1``.
        left: Child whose first prefix bit is 0 (internal nodes only).
        right: Child whose first prefix bit is 1 (internal nodes only).
        signature: The full signature (leaves only, else ``None``).
        items: Caller-managed payload list (leaves only, else ``None``).
    """

    __slots__ = ("start", "stop", "prefix", "shift", "mask", "left", "right",
                 "signature", "items")

    def __init__(self, start: int, stop: int, prefix: int, bits: int) -> None:
        self.start = start
        self.stop = stop
        self.prefix = prefix
        self.shift = bits - stop
        self.mask = (1 << (stop - start)) - 1
        self.left: PatriciaNode | None = None
        self.right: PatriciaNode | None = None
        self.signature: int | None = None
        self.items: list[Any] | None = None

    @property
    def is_leaf(self) -> bool:
        """True iff this node ends at the signature width."""
        return self.items is not None

    @property
    def width(self) -> int:
        """Number of bit positions this node's segment covers."""
        return self.stop - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "node"
        return f"<{kind} [{self.start},{self.stop}) prefix={self.prefix:b}>"


def _diverge_offset(a: int, b: int, width: int) -> int:
    """First position (0-based from segment MSB) where ``a`` and ``b`` differ.

    Returns ``width`` when the segments are identical.
    """
    x = a ^ b
    if x == 0:
        return width
    return width - x.bit_length()


class PatriciaTrie:
    """A Patricia trie over signatures of a fixed width ``bits``.

    The trie owns no payload semantics: :meth:`insert` returns the leaf's
    ``items`` list and the caller appends whatever it needs (PTSJ appends
    merged ``(set, ids)`` groups, tests append plain ints).

    Args:
        bits: Signature width; every inserted/queried signature must fit.

    Raises:
        TrieError: If ``bits`` is not positive.
    """

    def __init__(self, bits: int) -> None:
        if bits <= 0:
            raise TrieError(f"signature width must be positive, got {bits}")
        self.bits = bits
        self.root: PatriciaNode | None = None
        self.leaf_count = 0
        self.visits_last_query = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def insert(self, signature: int) -> list[Any]:
        """Insert ``signature`` and return the leaf payload list.

        Repeated inserts of the same signature return the *same* list, which
        is how PTSJ groups tuples sharing a signature (and, one level deeper,
        merges identical sets — Sec. III-E1).

        Raises:
            repro.errors.SignatureError: If the signature does not fit.
        """
        validate_signature(signature, self.bits)
        if self.root is None:
            self.root = self._new_leaf(0, signature)
            return self.root.items  # type: ignore[return-value]

        bits = self.bits
        node = self.root
        parent: PatriciaNode | None = None
        went_right = False
        while True:
            seg = (signature >> node.shift) & node.mask
            offset = _diverge_offset(seg, node.prefix, node.stop - node.start)
            if offset < node.stop - node.start:
                split, leaf = self._split(node, offset, signature)
                self._replace_child(parent, went_right, split)
                return leaf.items  # type: ignore[return-value]
            if node.items is not None:
                return node.items
            parent = node
            went_right = bool((signature >> (bits - 1 - node.stop)) & 1)
            node = node.right if went_right else node.left  # type: ignore[assignment]
            assert node is not None

    def _new_leaf(self, start: int, signature: int) -> PatriciaNode:
        bits = self.bits
        prefix = signature & ((1 << (bits - start)) - 1)
        leaf = PatriciaNode(start, bits, prefix, bits)
        leaf.signature = signature
        leaf.items = []
        self.leaf_count += 1
        return leaf

    def _split(
        self, node: PatriciaNode, offset: int, signature: int
    ) -> tuple[PatriciaNode, PatriciaNode]:
        """Split ``node`` at ``offset`` bits into its segment; attach a new leaf.

        Returns ``(common, leaf)``: the new internal node that replaces
        ``node`` in the tree and the freshly created leaf for ``signature``.
        """
        bits = self.bits
        width = node.stop - node.start
        split_pos = node.start + offset
        common = PatriciaNode(node.start, split_pos, node.prefix >> (width - offset), bits)
        # Shrink the existing node to the lower part of its segment.
        node.prefix &= (1 << (width - offset)) - 1
        node.start = split_pos
        node.mask = (1 << (node.stop - split_pos)) - 1
        new_leaf = self._new_leaf(split_pos, signature)
        if (signature >> (bits - 1 - split_pos)) & 1:
            common.left, common.right = node, new_leaf
        else:
            common.left, common.right = new_leaf, node
        return common, new_leaf

    def _replace_child(self, parent: PatriciaNode | None, went_right: bool, child: PatriciaNode) -> None:
        if parent is None:
            self.root = child
        elif went_right:
            parent.right = child
        else:
            parent.left = child

    def remove(self, signature: int) -> list[Any] | None:
        """Remove ``signature``'s leaf; return its payload list, or ``None``.

        Deletion is the inverse of the insert-time split: the leaf's parent
        (a two-way branch) disappears and the sibling absorbs the parent's
        segment, so the structural invariants — every internal node is a
        genuine branch — are preserved.  Index-maintenance support the
        original paper leaves implicit but a reusable OLAP index
        (Sec. III-E3) needs.

        Raises:
            repro.errors.SignatureError: If the signature does not fit.
        """
        validate_signature(signature, self.bits)
        # Walk down, remembering parent and grandparent.
        node = self.root
        parent: PatriciaNode | None = None
        grand: PatriciaNode | None = None
        parent_right = False
        grand_right = False
        while node is not None:
            if ((signature >> node.shift) & node.mask) != node.prefix:
                return None
            if node.items is not None:
                break
            grand, grand_right = parent, parent_right
            parent = node
            parent_right = bool((signature >> (self.bits - 1 - node.stop)) & 1)
            node = node.right if parent_right else node.left
        if node is None or node.items is None:
            return None

        self.leaf_count -= 1
        if parent is None:
            # The leaf was the root: the trie becomes empty.
            self.root = None
            return node.items
        sibling = parent.left if parent_right else parent.right
        assert sibling is not None
        # The sibling absorbs the parent's segment (and its position).
        sibling.prefix |= parent.prefix << (sibling.stop - sibling.start)
        sibling.start = parent.start
        sibling.mask = (1 << (sibling.stop - sibling.start)) - 1
        self._replace_child(grand, grand_right, sibling)
        return node.items

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def subset_leaves(self, signature: int) -> list[PatriciaNode]:
        """Algorithm 5 (PATRICIAENUM): leaves whose signature is ``⊑ signature``.

        Every stored signature whose 1-bits all appear in ``signature`` is
        returned; the caller then verifies actual set containment (signature
        containment is a necessary, not sufficient, condition).  The work
        list is LIFO rather than the paper's FIFO — enumeration order does
        not affect the result set and a list is faster in CPython.
        """
        validate_signature(signature, self.bits)
        result: list[PatriciaNode] = []
        visits = 0
        if self.root is not None:
            bits_minus_1 = self.bits - 1
            stack: list[PatriciaNode] = [self.root]
            push = stack.append
            pop = stack.pop
            while stack:
                node = pop()
                visits += 1
                if node.prefix & ~((signature >> node.shift) & node.mask):
                    continue
                if node.items is not None:
                    result.append(node)
                elif (signature >> (bits_minus_1 - node.stop)) & 1:
                    push(node.left)   # type: ignore[arg-type]
                    push(node.right)  # type: ignore[arg-type]
                else:
                    push(node.left)   # type: ignore[arg-type]
        self.visits_last_query = visits
        return result

    def superset_leaves(self, signature: int) -> list[PatriciaNode]:
        """Algorithm 6 variant: leaves whose signature covers ``signature``.

        The containment test and the branch rule are mirrored: a stored
        signature must have 1 wherever the query does, so a query bit of 1
        forces the right branch while a 0 allows both.
        """
        validate_signature(signature, self.bits)
        result: list[PatriciaNode] = []
        visits = 0
        if self.root is not None:
            bits_minus_1 = self.bits - 1
            stack: list[PatriciaNode] = [self.root]
            while stack:
                node = stack.pop()
                visits += 1
                if ((signature >> node.shift) & node.mask) & ~node.prefix:
                    continue
                if node.items is not None:
                    result.append(node)
                elif (signature >> (bits_minus_1 - node.stop)) & 1:
                    stack.append(node.right)  # type: ignore[arg-type]
                else:
                    stack.append(node.left)   # type: ignore[arg-type]
                    stack.append(node.right)  # type: ignore[arg-type]
        self.visits_last_query = visits
        return result

    def equal_leaf(self, signature: int) -> PatriciaNode | None:
        """Exact-signature lookup (set-equality join, Sec. III-E2)."""
        validate_signature(signature, self.bits)
        node = self.root
        visits = 0
        bits_minus_1 = self.bits - 1
        while node is not None:
            visits += 1
            if ((signature >> node.shift) & node.mask) != node.prefix:
                self.visits_last_query = visits
                return None
            if node.items is not None:
                self.visits_last_query = visits
                return node
            node = node.right if (signature >> (bits_minus_1 - node.stop)) & 1 else node.left
        self.visits_last_query = visits
        return None

    def hamming_leaves(self, signature: int, threshold: int) -> list[tuple[PatriciaNode, int]]:
        """Algorithm 7 on Patricia nodes: leaves within Hamming ``threshold``.

        Returns ``(leaf, distance)`` pairs.  The accumulated distance of a
        node is the Hamming distance between the query's bits and the node's
        prefix over all segments on the root path; branches whose partial
        distance already exceeds ``threshold`` are pruned, which is the
        Patricia analogue of the per-bit counter in the paper's Algorithm 7.

        Raises:
            TrieError: If ``threshold`` is negative.
        """
        validate_signature(signature, self.bits)
        if threshold < 0:
            raise TrieError(f"hamming threshold must be non-negative, got {threshold}")
        result: list[tuple[PatriciaNode, int]] = []
        visits = 0
        if self.root is not None:
            stack: list[tuple[PatriciaNode, int]] = [(self.root, 0)]
            while stack:
                node, dist = stack.pop()
                visits += 1
                qseg = (signature >> node.shift) & node.mask
                dist += (qseg ^ node.prefix).bit_count()
                if dist > threshold:
                    continue
                if node.items is not None:
                    result.append((node, dist))
                else:
                    stack.append((node.left, dist))   # type: ignore[arg-type]
                    stack.append((node.right, dist))  # type: ignore[arg-type]
        self.visits_last_query = visits
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of distinct signatures stored."""
        return self.leaf_count

    def leaves(self) -> Iterator[PatriciaNode]:
        """Iterate all leaves (depth-first, left before right)."""
        if self.root is None:
            return
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node
            else:
                stack.append(node.right)  # type: ignore[arg-type]
                stack.append(node.left)   # type: ignore[arg-type]

    def node_count(self) -> int:
        """Total nodes — at most ``2 * leaf_count - 1`` (Sec. III-C1)."""
        if self.root is None:
            return 0
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.append(node.left)   # type: ignore[arg-type]
                stack.append(node.right)  # type: ignore[arg-type]
        return count

    def height(self) -> int:
        """Maximum number of nodes on a root-to-leaf path."""
        if self.root is None:
            return 0
        best = 0
        stack = [(self.root, 1)]
        while stack:
            node, depth = stack.pop()
            if node.is_leaf:
                best = max(best, depth)
            else:
                stack.append((node.left, depth + 1))   # type: ignore[arg-type]
                stack.append((node.right, depth + 1))  # type: ignore[arg-type]
        return best

    def check_invariants(self) -> None:
        """Validate structural invariants (used by property tests).

        * Segments tile ``[0, bits)`` along every root path.
        * Every internal node has both children (Patricia compression).
        * Branch bits match child sides (left starts 0, right starts 1).
        * Cached ``shift``/``mask`` agree with the segment bounds.
        * Leaf ``signature`` equals the concatenation of prefixes on its path.

        Raises:
            TrieError: On the first violated invariant.
        """
        if self.root is None:
            return
        stack: list[tuple[PatriciaNode, int, int]] = [(self.root, 0, 0)]
        while stack:
            node, start, acc = stack.pop()
            if node.start != start:
                raise TrieError(f"segment start {node.start} != expected {start}")
            if node.prefix >> node.width:
                raise TrieError("prefix wider than segment")
            if node.shift != self.bits - node.stop:
                raise TrieError("cached shift out of date")
            if node.mask != (1 << node.width) - 1:
                raise TrieError("cached mask out of date")
            acc = (acc << node.width) | node.prefix
            if node.is_leaf:
                if node.stop != self.bits:
                    raise TrieError("leaf does not extend to signature width")
                if node.signature != acc:
                    raise TrieError(
                        f"leaf signature 0x{node.signature:x} != path bits 0x{acc:x}"
                    )
            else:
                if node.left is None or node.right is None:
                    raise TrieError("internal node with a missing child (single branch)")
                if node.stop >= self.bits:
                    raise TrieError("internal node extends to signature width")
                left_bit = node.left.prefix >> (node.left.width - 1)
                right_bit = node.right.prefix >> (node.right.width - 1)
                if left_bit != 0 or right_bit != 1:
                    raise TrieError("child branch bits do not match sides")
                stack.append((node.left, node.stop, acc))
                stack.append((node.right, node.stop, acc))
