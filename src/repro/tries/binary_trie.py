"""Plain (uncompressed) binary trie over signatures (paper Sec. III-A).

This is the stepping-stone structure the paper introduces before the
Patricia trie: one node per bit level, so a trie over ``k`` signatures of
``b`` bits needs up to ``k * (b - lg2 k) + 2k`` nodes — the single-branch
chains that make Algorithm 4 *slower than SHJ* in practice (the paper
excludes it from its empirical study for that reason; this repository keeps
it as an ablation baseline, see ``benchmarks/test_ablation_plain_trie.py``).

:meth:`BinaryTrie.subset_leaves` is the paper's Algorithm 4 (TRIEENUM): a
level-synchronous breadth-first walk that keeps, at level ``i``, exactly the
nodes whose path prefix is contained in the query's first ``i`` bits.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator

from repro.errors import TrieError
from repro.signatures.bitmap import get_bit, validate_signature

__all__ = ["BinaryTrieNode", "BinaryTrie"]


class BinaryTrieNode:
    """One node of the uncompressed trie; one bit of path per level.

    Attributes:
        left: Child on bit 0, or ``None``.
        right: Child on bit 1, or ``None``.
        signature: The full signature (leaves only).
        items: Caller-managed payload list (leaves only).
    """

    __slots__ = ("left", "right", "signature", "items")

    def __init__(self) -> None:
        self.left: BinaryTrieNode | None = None
        self.right: BinaryTrieNode | None = None
        self.signature: int | None = None
        self.items: list[Any] | None = None

    @property
    def is_leaf(self) -> bool:
        return self.items is not None


class BinaryTrie:
    """Uncompressed binary trie over ``bits``-wide signatures.

    Same payload contract as :class:`repro.tries.patricia.PatriciaTrie`:
    :meth:`insert` returns the leaf's ``items`` list.

    Args:
        bits: Signature width.

    Raises:
        TrieError: If ``bits`` is not positive.
    """

    def __init__(self, bits: int) -> None:
        if bits <= 0:
            raise TrieError(f"signature width must be positive, got {bits}")
        self.bits = bits
        self.root = BinaryTrieNode()
        self.leaf_count = 0
        self.visits_last_query = 0

    def insert(self, signature: int) -> list[Any]:
        """Insert ``signature``; return the (possibly shared) leaf payload list."""
        validate_signature(signature, self.bits)
        node = self.root
        for position in range(self.bits):
            if get_bit(signature, position, self.bits):
                if node.right is None:
                    node.right = BinaryTrieNode()
                node = node.right
            else:
                if node.left is None:
                    node.left = BinaryTrieNode()
                node = node.left
        if node.items is None:
            node.items = []
            node.signature = signature
            self.leaf_count += 1
        return node.items

    def subset_leaves(self, signature: int) -> list[BinaryTrieNode]:
        """Algorithm 4 (TRIEENUM): leaves whose signature is ``⊑ signature``.

        Level-synchronous BFS: at level ``i`` the queue holds every node
        whose path prefix is a subset of the query's first ``i`` bits; a
        query bit of 0 keeps only left children, a 1 keeps both.
        """
        validate_signature(signature, self.bits)
        queue: deque[BinaryTrieNode] = deque((self.root,))
        visits = 1
        for position in range(self.bits):
            bit = get_bit(signature, position, self.bits)
            for _ in range(len(queue)):
                node = queue.popleft()
                if node.left is not None:
                    queue.append(node.left)
                    visits += 1
                if bit and node.right is not None:
                    queue.append(node.right)
                    visits += 1
        self.visits_last_query = visits
        return [node for node in queue if node.is_leaf]

    def superset_leaves(self, signature: int) -> list[BinaryTrieNode]:
        """Algorithm 6: leaves whose signature covers ``signature``.

        The branch rule is switched relative to Algorithm 4: a query bit of
        1 keeps only right children, a 0 keeps both.
        """
        validate_signature(signature, self.bits)
        queue: deque[BinaryTrieNode] = deque((self.root,))
        visits = 1
        for position in range(self.bits):
            bit = get_bit(signature, position, self.bits)
            for _ in range(len(queue)):
                node = queue.popleft()
                if node.right is not None:
                    queue.append(node.right)
                    visits += 1
                if not bit and node.left is not None:
                    queue.append(node.left)
                    visits += 1
        self.visits_last_query = visits
        return [node for node in queue if node.is_leaf]

    def hamming_leaves(self, signature: int, threshold: int) -> list[tuple[BinaryTrieNode, int]]:
        """Algorithm 7 (TRIESSJ): leaves within Hamming ``threshold``.

        Each queue entry carries the mismatch count accumulated so far; a
        branch that disagrees with the query bit increments it, and entries
        above ``threshold`` are dropped.

        Raises:
            TrieError: If ``threshold`` is negative.
        """
        validate_signature(signature, self.bits)
        if threshold < 0:
            raise TrieError(f"hamming threshold must be non-negative, got {threshold}")
        queue: deque[tuple[BinaryTrieNode, int]] = deque(((self.root, 0),))
        visits = 1
        for position in range(self.bits):
            bit = get_bit(signature, position, self.bits)
            for _ in range(len(queue)):
                node, dist = queue.popleft()
                left_dist = dist + (1 if bit else 0)
                right_dist = dist + (0 if bit else 1)
                if node.left is not None and left_dist <= threshold:
                    queue.append((node.left, left_dist))
                    visits += 1
                if node.right is not None and right_dist <= threshold:
                    queue.append((node.right, right_dist))
                    visits += 1
        self.visits_last_query = visits
        return [(node, dist) for node, dist in queue if node.is_leaf]

    def equal_leaf(self, signature: int) -> BinaryTrieNode | None:
        """Exact lookup of one signature's leaf, or ``None``."""
        validate_signature(signature, self.bits)
        node: BinaryTrieNode | None = self.root
        for position in range(self.bits):
            if node is None:
                return None
            node = node.right if get_bit(signature, position, self.bits) else node.left
        return node if node is not None and node.is_leaf else None

    def __len__(self) -> int:
        """Number of distinct signatures stored."""
        return self.leaf_count

    def leaves(self) -> Iterator[BinaryTrieNode]:
        """Iterate all leaves, left (0) branches first."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)

    def node_count(self) -> int:
        """Total allocated nodes — exhibits the single-branch blow-up."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return count
