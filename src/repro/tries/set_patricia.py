"""Element-space Patricia trie for PRETTI+ (paper Sec. IV, Alg. 8, Fig. 4).

PRETTI+ replaces PRETTI's one-element-per-node prefix tree with a Patricia
trie whose nodes hold *runs* of elements (variable-length prefixes), which
removes single-child chains and is the source of PRETTI+'s much smaller
memory footprint (paper Fig. 6a).

Unlike the signature-space :class:`repro.tries.patricia.PatriciaTrie`, the
stored strings here are the tuples' sorted element sequences, which have
*different lengths* — so a set can end in the middle of the trie and every
node (not only leaves) may carry tuples.  Insertion is the paper's
Algorithm 8 with its four cases: append to the current node, descend into a
child, split the node (new parent carrying the common run), or split with a
new sibling.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import TrieError

__all__ = ["SetPatriciaNode", "SetPatriciaTrie"]


def _common_prefix_len(a: tuple[int, ...], b: Sequence[int], b_from: int) -> int:
    """Length of the common prefix of ``a`` and ``b[b_from:]``."""
    limit = min(len(a), len(b) - b_from)
    i = 0
    while i < limit and a[i] == b[b_from + i]:
        i += 1
    return i


class SetPatriciaNode:
    """One PRETTI+ node: a run of elements, resident tuples, children.

    Attributes:
        prefix: The run of elements on the edge into this node (ascending;
            empty only at the root).
        tuples: Ids of S-tuples whose sorted set ends exactly at this node.
        children: ``{first_element_of_child_prefix: child}`` hash map.
    """

    __slots__ = ("prefix", "tuples", "children")

    def __init__(self, prefix: tuple[int, ...]) -> None:
        self.prefix = prefix
        self.tuples: list[int] = []
        self.children: dict[int, SetPatriciaNode] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SetPatriciaNode prefix={self.prefix} tuples={len(self.tuples)}>"


class SetPatriciaTrie:
    """Patricia trie over sorted element sequences (PRETTI+'s index on ``S``)."""

    def __init__(self) -> None:
        self.root = SetPatriciaNode(())
        self.size = 0

    def insert(self, elements: Sequence[int], rid: int) -> None:
        """Insert tuple ``rid`` with its *ascending* element sequence.

        Implements the paper's Algorithm 8 (PRETTI+INSERT) iteratively.

        Raises:
            TrieError: If ``elements`` is not strictly ascending.
        """
        for i in range(1, len(elements)):
            if elements[i] <= elements[i - 1]:
                raise TrieError(
                    "elements must be strictly ascending, got "
                    f"{elements[i]} after {elements[i - 1]}"
                )

        node = self.root
        parent: SetPatriciaNode | None = None
        consumed = 0
        while True:
            clen = _common_prefix_len(node.prefix, elements, consumed)
            nlen = len(node.prefix)
            tlen = len(elements) - consumed
            if clen == nlen:
                if clen == tlen:
                    # Case (1): the set ends exactly at this node.
                    node.tuples.append(rid)
                    break
                # Case (2): descend into (or create) the child that matches
                # the next element of the set.
                nxt = elements[consumed + clen]
                child = node.children.get(nxt)
                if child is None:
                    leaf = SetPatriciaNode(tuple(elements[consumed + clen:]))
                    leaf.tuples.append(rid)
                    node.children[nxt] = leaf
                    break
                parent = node
                consumed += clen
                node = child
            else:
                # clen < nlen: split ``node`` — a new node takes the common
                # run and ``node`` keeps the remainder.
                assert parent is not None, "root has an empty prefix and never splits"
                common = SetPatriciaNode(node.prefix[:clen])
                node.prefix = node.prefix[clen:]
                common.children[node.prefix[0]] = node
                parent.children[common.prefix[0]] = common
                if clen == tlen:
                    # Case (3): the new common node *is* the set's end.
                    common.tuples.append(rid)
                else:
                    # Case (4): the set continues past the split — new sibling.
                    sibling = SetPatriciaNode(tuple(elements[consumed + clen:]))
                    sibling.tuples.append(rid)
                    common.children[sibling.prefix[0]] = sibling
                break
        self.size += 1

    def remove(self, elements: Sequence[int], rid: int) -> bool:
        """Remove tuple ``rid`` stored under the given element sequence.

        Returns ``True`` if the tuple was found and removed.  Emptied
        nodes are pruned and single-child chains re-merged, so the
        Patricia compression invariant survives arbitrary delete
        sequences (checked by the property tests).
        """
        path: list[SetPatriciaNode] = []
        node = self.root
        consumed = 0
        while True:
            clen = _common_prefix_len(node.prefix, elements, consumed)
            if clen < len(node.prefix):
                return False
            consumed += clen
            if consumed == len(elements):
                break
            child = node.children.get(elements[consumed])
            if child is None:
                return False
            path.append(node)
            node = child
        try:
            node.tuples.remove(rid)
        except ValueError:
            return False
        self.size -= 1

        # Restore compression bottom-up.
        while node is not self.root:
            if node.tuples or len(node.children) > 1:
                break
            parent = path[-1]
            if not node.children:
                del parent.children[node.prefix[0]]
                node = path.pop()
                continue
            # Exactly one child, no resident tuples: merge it upwards.
            only_child = next(iter(node.children.values()))
            only_child.prefix = node.prefix + only_child.prefix
            parent.children[only_child.prefix[0]] = only_child
            break
        return True

    def __len__(self) -> int:
        """Number of inserted tuples."""
        return self.size

    def node_count(self) -> int:
        """Total trie nodes including the root."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count

    def height(self) -> int:
        """Longest root-to-leaf path in *nodes* (excluding the root)."""
        best = 0
        stack = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            best = max(best, depth)
            for child in node.children.values():
                stack.append((child, depth + 1))
        return best

    # ------------------------------------------------------------------
    # Set-trie search operations (Patricia variants)
    # ------------------------------------------------------------------
    def subsets_of(self, query: frozenset[int]) -> list[int]:
        """Ids of stored sets that are subsets of ``query``.

        Same pruning as :meth:`repro.tries.set_trie.SetTrie.subsets_of`,
        except each node contributes a *run* of elements that must all be
        in the query.
        """
        result: list[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            result.extend(node.tuples)
            for first, child in node.children.items():
                if first in query and all(e in query for e in child.prefix):
                    stack.append(child)
        return result

    def supersets_of(self, query: frozenset[int]) -> list[int]:
        """Ids of stored sets that contain ``query``.

        The sorted query is consumed against each node's prefix run:
        run elements below the next needed element are optional extras,
        a match consumes it, and an element above it prunes the branch.
        """
        needed = sorted(query)
        total = len(needed)
        result: list[int] = []
        stack: list[tuple[SetPatriciaNode, int]] = [(self.root, 0)]
        while stack:
            node, i = stack.pop()
            # Consume this node's prefix against the query cursor.
            matched = True
            for element in node.prefix:
                if i < total:
                    target = needed[i]
                    if element == target:
                        i += 1
                    elif element > target:
                        matched = False
                        break
            if not matched:
                continue
            if i == total:
                collect = [node]
                while collect:
                    current = collect.pop()
                    result.extend(current.tuples)
                    collect.extend(current.children.values())
                continue
            target = needed[i]
            for first, child in node.children.items():
                if first <= target:
                    stack.append((child, i))
        return result

    def walk(self) -> Iterator[tuple[SetPatriciaNode, tuple[int, ...]]]:
        """Depth-first iteration of ``(node, full_path_elements)`` pairs."""
        stack: list[tuple[SetPatriciaNode, tuple[int, ...]]] = [(self.root, ())]
        while stack:
            node, path = stack.pop()
            yield node, path
            for child in node.children.values():
                stack.append((child, path + child.prefix))

    def stored_sets(self) -> Iterator[tuple[tuple[int, ...], list[int]]]:
        """Iterate ``(sorted_elements, tuple_ids)`` for every resident set."""
        for node, path in self.walk():
            if node.tuples:
                yield path, node.tuples

    def check_invariants(self) -> None:
        """Validate PRETTI+ structural invariants (used by property tests).

        * Children are keyed by the first element of their prefix.
        * Non-root prefixes are non-empty and strictly ascending.
        * Along every path, element values strictly ascend across node
          boundaries too.
        * No node other than the root has an empty prefix; the compression
          invariant: a childless node must hold tuples, and a node with
          exactly one child and no tuples would be mergeable (violation).

        Raises:
            TrieError: On the first violated invariant.
        """
        stack: list[tuple[SetPatriciaNode, int]] = [(self.root, -1)]
        while stack:
            node, last = stack.pop()
            if node is not self.root:
                if not node.prefix:
                    raise TrieError("non-root node with empty prefix")
                if node.prefix[0] <= last:
                    raise TrieError("path elements not strictly ascending at boundary")
                for i in range(1, len(node.prefix)):
                    if node.prefix[i] <= node.prefix[i - 1]:
                        raise TrieError("node prefix not strictly ascending")
                if not node.children and not node.tuples:
                    raise TrieError("childless node without tuples")
                if len(node.children) == 1 and not node.tuples:
                    raise TrieError("mergeable single-child node without tuples")
            for key, child in node.children.items():
                if not child.prefix or child.prefix[0] != key:
                    raise TrieError(f"child keyed {key} has prefix {child.prefix}")
                tail = node.prefix[-1] if node.prefix else last
                stack.append((child, tail))
