"""Trie data structures: the paper's central machinery.

* :class:`~repro.tries.binary_trie.BinaryTrie` — uncompressed signature trie
  (paper Sec. III-A, Algorithm 4; kept as an ablation baseline).
* :class:`~repro.tries.patricia.PatriciaTrie` — Patricia trie over
  signatures (Sec. III-B, Algorithms 5/6/7; PTSJ's index).
* :class:`~repro.tries.set_trie.SetTrie` — element-space prefix tree
  (Sec. II-B; PRETTI's index).
* :class:`~repro.tries.set_patricia.SetPatriciaTrie` — element-space
  Patricia trie (Sec. IV, Algorithm 8; PRETTI+'s index).
"""

from repro.tries.binary_trie import BinaryTrie, BinaryTrieNode
from repro.tries.patricia import PatriciaNode, PatriciaTrie
from repro.tries.set_patricia import SetPatriciaNode, SetPatriciaTrie
from repro.tries.set_trie import SetTrie, SetTrieNode

__all__ = [
    "BinaryTrie",
    "BinaryTrieNode",
    "PatriciaTrie",
    "PatriciaNode",
    "SetTrie",
    "SetTrieNode",
    "SetPatriciaTrie",
    "SetPatriciaNode",
]
