"""Element-space prefix tree (trie) for PRETTI (paper Sec. II-B, Fig. 1).

PRETTI indexes the relation ``S`` by inserting each tuple's *sorted* element
sequence into a trie whose edges are labelled with elements.  Along any
root-to-leaf path, descendants' sets contain ancestors' sets — the property
PRETTI's single traversal exploits to reuse early containment results.

Children are stored in a per-node hash map, matching the paper's
implementation note ("we maintain a hash map in each trie node to enable
fast access to children while traversing", Sec. V-A3).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import TrieError

__all__ = ["SetTrieNode", "SetTrie"]


class SetTrieNode:
    """One PRETTI trie node: an element label, tuple ids, and children.

    Attributes:
        label: The element on the edge into this node (``-1`` at the root).
        tuples: Ids of S-tuples whose sorted set ends exactly here.
        children: ``{element: child}`` hash map.
    """

    __slots__ = ("label", "tuples", "children")

    def __init__(self, label: int) -> None:
        self.label = label
        self.tuples: list[int] = []
        self.children: dict[int, SetTrieNode] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SetTrieNode label={self.label} tuples={len(self.tuples)}>"


class SetTrie:
    """Prefix tree over sorted element sequences (PRETTI's index on ``S``)."""

    ROOT_LABEL = -1

    def __init__(self) -> None:
        self.root = SetTrieNode(self.ROOT_LABEL)
        self.size = 0

    def insert(self, elements: Sequence[int], rid: int) -> None:
        """Insert tuple ``rid`` with the given *ascending* element sequence.

        Tuples with empty sets legitimately live at the root: the empty set
        is contained in every set.

        Raises:
            TrieError: If ``elements`` is not strictly ascending.
        """
        node = self.root
        previous = -1
        for element in elements:
            if element <= previous:
                raise TrieError(
                    f"elements must be strictly ascending, got {element} after {previous}"
                )
            previous = element
            child = node.children.get(element)
            if child is None:
                child = SetTrieNode(element)
                node.children[element] = child
            node = child
        node.tuples.append(rid)
        self.size += 1

    def __len__(self) -> int:
        """Number of inserted tuples."""
        return self.size

    def node_count(self) -> int:
        """Total trie nodes including the root — PRETTI's memory driver."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count

    def height(self) -> int:
        """Longest root-to-leaf path in edges = largest set cardinality."""
        best = 0
        stack = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            best = max(best, depth)
            for child in node.children.values():
                stack.append((child, depth + 1))
        return best

    # ------------------------------------------------------------------
    # Set-trie search operations
    # ------------------------------------------------------------------
    def subsets_of(self, query: frozenset[int]) -> list[int]:
        """Ids of stored sets that are subsets of ``query``.

        Classic set-trie search: descend only into children whose label is
        in the query; every node reached has a path contained in the
        query, so all its resident tuples qualify.  This is the
        single-query analogue of PRETTI's join traversal.
        """
        result: list[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            result.extend(node.tuples)
            children = node.children
            if len(children) <= len(query):
                for label, child in children.items():
                    if label in query:
                        stack.append(child)
            else:
                for label in query:
                    child = children.get(label)
                    if child is not None and label > node.label:
                        stack.append(child)
        return result

    def supersets_of(self, query: frozenset[int]) -> list[int]:
        """Ids of stored sets that contain ``query``.

        Walks the trie consuming the sorted query: a child labelled below
        the next needed element is an optional extra, a child matching it
        consumes it, and children labelled above it cannot lead to a match
        (labels ascend along paths).
        """
        needed = sorted(query)
        result: list[int] = []
        stack: list[tuple[SetTrieNode, int]] = [(self.root, 0)]
        while stack:
            node, i = stack.pop()
            if i == len(needed):
                # Everything below (and here) contains the whole query.
                collect = [node]
                while collect:
                    current = collect.pop()
                    result.extend(current.tuples)
                    collect.extend(current.children.values())
                continue
            target = needed[i]
            for label, child in node.children.items():
                if label < target:
                    stack.append((child, i))
                elif label == target:
                    stack.append((child, i + 1))
        return result

    def walk(self) -> Iterator[tuple[SetTrieNode, tuple[int, ...]]]:
        """Depth-first iteration of ``(node, path_elements)`` pairs."""
        stack: list[tuple[SetTrieNode, tuple[int, ...]]] = [(self.root, ())]
        while stack:
            node, path = stack.pop()
            yield node, path
            for child in node.children.values():
                stack.append((child, path + (child.label,)))

    def check_invariants(self) -> None:
        """Validate that every path is strictly ascending in labels.

        Raises:
            TrieError: On the first violated invariant.
        """
        stack: list[SetTrieNode] = [self.root]
        while stack:
            node = stack.pop()
            for label, child in node.children.items():
                if label != child.label:
                    raise TrieError(f"child keyed {label} has label {child.label}")
                if node is not self.root and child.label <= node.label:
                    raise TrieError(
                        f"labels not ascending: {child.label} under {node.label}"
                    )
                stack.append(child)
