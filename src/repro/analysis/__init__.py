"""repro.analysis — project-specific static analysis + runtime sanitizer.

Two enforcement layers for the contracts the test suite cannot see
(``docs/ANALYSIS.md``):

* :mod:`repro.analysis.engine` + :mod:`repro.analysis.rules` — an AST lint
  engine (``python -m repro.analysis`` / ``repro-scj lint``) with rules
  ``RPR001``… covering the one-clock discipline, pickle-safety at the
  process boundary, planner value-object immutability, JoinStats counter
  discipline, determinism, and general exception/default hygiene.
  Violations are suppressed inline with ``# repro: noqa RPRxxx <reason>``;
  suppressions are counted and an unexplained one fails the run.
* :mod:`repro.analysis.sanitizer` — runtime structural checks, enabled by
  ``REPRO_SANITIZE=1``: tries, signature bitmaps, the inverted index and
  prepared indexes are re-validated at their hook sites and a violation
  raises :class:`~repro.errors.SanitizerError` with the offending node
  path.
"""

from repro.analysis.engine import (
    FileReport,
    LintReport,
    ModuleContext,
    Rule,
    Suppression,
    Violation,
    lint_paths,
    lint_source,
    main,
)
from repro.analysis.sanitizer import ENV_VAR as SANITIZE_ENV_VAR
from repro.analysis.sanitizer import enabled as sanitizer_enabled

__all__ = [
    "Violation",
    "Suppression",
    "ModuleContext",
    "Rule",
    "FileReport",
    "LintReport",
    "lint_source",
    "lint_paths",
    "main",
    "SANITIZE_ENV_VAR",
    "sanitizer_enabled",
]
