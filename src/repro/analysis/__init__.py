"""repro.analysis — project-specific static analysis + runtime sanitizers.

Three enforcement layers for the contracts the test suite cannot see
(``docs/ANALYSIS.md``):

* :mod:`repro.analysis.engine` + :mod:`repro.analysis.rules` — an AST lint
  engine (``python -m repro.analysis`` / ``repro-scj lint``) with rules
  ``RPR001``… covering the one-clock discipline, pickle-safety at the
  process boundary, planner value-object immutability, JoinStats counter
  discipline, determinism, general exception/default hygiene, and (PR 10)
  the lock discipline of the threaded serving stack.  Violations are
  suppressed inline with ``# repro: noqa RPRxxx <reason>``; suppressions
  are counted and an unexplained one fails the run.
* :mod:`repro.analysis.sanitizer` — runtime structural checks, enabled by
  ``REPRO_SANITIZE=1``: tries, signature bitmaps, the inverted index and
  prepared indexes are re-validated at their hook sites and a violation
  raises :class:`~repro.errors.SanitizerError` with the offending node
  path.
* :mod:`repro.analysis.concurrency` — runtime lock-order / race detector,
  enabled by ``REPRO_RACEDETECT=1``: locks created through
  :func:`~repro.analysis.concurrency.tracked_lock` record a process-wide
  acquisition-order graph and raise
  :class:`~repro.errors.LockOrderError` on an order inversion or a
  same-thread re-entry, naming both acquisition stacks.

Package attributes resolve lazily (PEP 562): low layers like
:mod:`repro.kernels` and :mod:`repro.obs.metrics` import
``repro.analysis.concurrency`` for their lock factories, and an eager
``from .sanitizer import ...`` here would drag the whole index stack
(tries → signatures → kernels) into that import and cycle.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "Violation",
    "Suppression",
    "ModuleContext",
    "Rule",
    "FileReport",
    "LintReport",
    "lint_source",
    "lint_paths",
    "main",
    "SANITIZE_ENV_VAR",
    "sanitizer_enabled",
    "RACEDETECT_ENV_VAR",
    "racedetect_enabled",
    "TrackedLock",
    "tracked_lock",
]

_ENGINE_EXPORTS = {
    "Violation",
    "Suppression",
    "ModuleContext",
    "Rule",
    "FileReport",
    "LintReport",
    "lint_source",
    "lint_paths",
    "main",
}


def __getattr__(name: str) -> Any:
    if name in _ENGINE_EXPORTS:
        from repro.analysis import engine

        return getattr(engine, name)
    if name in ("SANITIZE_ENV_VAR", "sanitizer_enabled"):
        from repro.analysis import sanitizer

        return sanitizer.ENV_VAR if name == "SANITIZE_ENV_VAR" else sanitizer.enabled
    if name in ("RACEDETECT_ENV_VAR", "racedetect_enabled"):
        from repro.analysis import concurrency

        return concurrency.ENV_VAR if name == "RACEDETECT_ENV_VAR" else concurrency.enabled
    if name in ("TrackedLock", "tracked_lock"):
        from repro.analysis import concurrency

        return getattr(concurrency, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
