"""AST-based lint engine for project-specific contracts.

The engine is deliberately small: it parses each Python file once, derives
the dotted module name (``repro.core.base``) from the path so rules can be
layer-scoped, collects ``# repro: noqa RPRxxx <reason>`` suppressions, and
runs every registered rule over the tree.  Rules live in
:mod:`repro.analysis.rules`; each one is a pure function from a
:class:`ModuleContext` to an iterable of :class:`Violation`.

Suppression contract (see ``docs/ANALYSIS.md``):

* ``# repro: noqa RPR001 <reason>`` silences RPR001 on that line.
* Several ids may be listed (``RPR001 RPR006 <reason>``); the reason is
  whatever trails the last id and is *required* — a suppression without a
  reason is counted as *unexplained* and fails the run just like a
  violation would.
* Suppressions are never free: the engine counts them and reports every
  one in the summary so reviewers see what has been waived and why.
"""

from __future__ import annotations

import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "Violation",
    "Suppression",
    "ModuleContext",
    "Rule",
    "FileReport",
    "LintReport",
    "lint_source",
    "lint_paths",
    "iter_python_files",
    "module_name_for",
    "main",
    "run",
]

#: ``# repro: noqa RPR001 RPR006 seeded rng, deterministic per caller seed``
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\b(?P<rest>[^\n]*)", re.IGNORECASE)
_RULE_ID_RE = re.compile(r"RPR\d{3}")


@dataclass(frozen=True)
class Violation:
    """One rule firing at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    fixit: str

    def render(self, show_fixit: bool = True) -> str:
        text = f"{self.path}:{self.line}:{self.col + 1}: {self.rule_id} {self.message}"
        if show_fixit and self.fixit:
            text += f"\n    fix: {self.fixit}"
        return text


@dataclass(frozen=True)
class Suppression:
    """One inline ``# repro: noqa`` comment, explained or not."""

    path: str
    line: int
    rule_ids: tuple[str, ...]  # empty tuple == blanket (all rules)
    reason: str

    @property
    def explained(self) -> bool:
        return bool(self.reason.strip())

    def covers(self, rule_id: str) -> bool:
        return not self.rule_ids or rule_id in self.rule_ids

    def render(self) -> str:
        ids = ", ".join(self.rule_ids) if self.rule_ids else "ALL"
        reason = self.reason.strip() or "<no reason given>"
        return f"{self.path}:{self.line}: noqa {ids} — {reason}"


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one parsed module."""

    path: str
    module: str | None  # dotted name such as "repro.core.base", if derivable
    tree: ast.Module
    lines: list[str]

    def in_package(self, *prefixes: str) -> bool:
        """True when the module sits under one of the dotted ``prefixes``.

        Unknown modules (paths outside a ``repro`` tree) are treated as
        *outside* every package, so layer-scoped bans apply to them —
        the conservative reading for ad-hoc scripts.
        """
        if self.module is None:
            return False
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )

    def violation(
        self, rule: "Rule", node: ast.AST, message: str | None = None
    ) -> Violation:
        return Violation(
            rule_id=rule.id,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message or rule.title,
            fixit=rule.fixit,
        )


@dataclass(frozen=True)
class Rule:
    """A registered lint rule: id, human-readable contract, and checker."""

    id: str
    title: str
    rationale: str
    fixit: str
    check: Callable[["Rule", ModuleContext], Iterator[Violation]]

    def run(self, ctx: ModuleContext) -> Iterator[Violation]:
        return self.check(self, ctx)


@dataclass
class FileReport:
    """Lint outcome for one file: surviving violations + suppressions."""

    path: str
    violations: list[Violation] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)
    suppressed: list[tuple[Violation, Suppression]] = field(default_factory=list)

    @property
    def unexplained(self) -> list[Suppression]:
        return [s for s in self.suppressions if not s.explained]

    @property
    def clean(self) -> bool:
        return not self.violations and not self.unexplained


@dataclass
class LintReport:
    """Aggregate outcome across every linted file."""

    files: list[FileReport] = field(default_factory=list)

    @property
    def violations(self) -> list[Violation]:
        return [v for f in self.files for v in f.violations]

    @property
    def suppressions(self) -> list[Suppression]:
        return [s for f in self.files for s in f.suppressions]

    @property
    def suppressed(self) -> list[tuple[Violation, Suppression]]:
        return [pair for f in self.files for pair in f.suppressed]

    @property
    def unexplained(self) -> list[Suppression]:
        return [s for f in self.files for s in f.unexplained]

    @property
    def exit_code(self) -> int:
        return 1 if self.violations or self.unexplained else 0

    def statistics(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for v in self.violations:
            counts[v.rule_id] = counts.get(v.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def module_name_for(path: str) -> str | None:
    """Derive ``repro.core.base`` from ``.../src/repro/core/base.py``.

    Rules scope themselves by dotted module prefix, so the mapping only
    needs to be right for files under a ``repro`` package root.  Returns
    ``None`` for paths with no ``repro`` component.
    """
    parts = Path(path).parts
    try:
        start = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return None
    rel = parts[start:]
    if not rel or not rel[-1].endswith(".py"):
        return None
    stem = rel[-1][: -len(".py")]
    dotted = list(rel[:-1]) + ([] if stem == "__init__" else [stem])
    return ".".join(dotted)


def _parse_noqa(path: str, lines: Sequence[str]) -> dict[int, Suppression]:
    table: dict[int, Suppression] = {}
    for lineno, line in enumerate(lines, start=1):
        m = _NOQA_RE.search(line)
        if m is None:
            continue
        rest = m.group("rest")
        ids = tuple(_RULE_ID_RE.findall(rest))
        # The reason is everything after the last rule id (or the whole
        # trailer when no ids are listed).
        reason = rest
        for rule_id in ids:
            _, _, reason = reason.partition(rule_id)
        table[lineno] = Suppression(
            path=path, line=lineno, rule_ids=ids, reason=reason.strip(" :,-\t")
        )
    return table


def _registered_rules(select: Sequence[str] | None = None) -> list[Rule]:
    from repro.analysis.rules import ALL_RULES

    if select is None:
        return list(ALL_RULES)
    wanted = set(select)
    unknown = wanted - {r.id for r in ALL_RULES}
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [r for r in ALL_RULES if r.id in wanted]


def lint_source(
    text: str,
    path: str = "<string>",
    *,
    module: str | None = None,
    select: Sequence[str] | None = None,
) -> FileReport:
    """Lint one source string.  The test-fixture entry point.

    ``module`` overrides path-derived module resolution so fixtures can
    pose as any layer (e.g. ``module="repro.exec.parallel"``).
    """
    report = FileReport(path=path)
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        report.violations.append(
            Violation(
                rule_id="RPR000",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
                fixit="fix the syntax error; unparseable files cannot be linted",
            )
        )
        return report

    lines = text.splitlines()
    ctx = ModuleContext(
        path=path,
        module=module if module is not None else module_name_for(path),
        tree=tree,
        lines=lines,
    )
    noqa = _parse_noqa(path, lines)
    report.suppressions.extend(noqa.values())

    for rule in _registered_rules(select):
        for violation in rule.run(ctx):
            suppression = noqa.get(violation.line)
            if suppression is not None and suppression.covers(violation.rule_id):
                report.suppressed.append((violation, suppression))
            else:
                report.violations.append(violation)
    report.violations.sort(key=lambda v: (v.line, v.col, v.rule_id))
    return report


def iter_python_files(paths: Iterable[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {raw}")
    return files


def lint_paths(
    paths: Iterable[str], *, select: Sequence[str] | None = None
) -> LintReport:
    report = LintReport()
    for file in iter_python_files(paths):
        text = file.read_text(encoding="utf-8")
        report.files.append(lint_source(text, str(file), select=select))
    return report


def _render_text(report: LintReport, *, statistics: bool, out) -> None:
    for violation in report.violations:
        print(violation.render(), file=out)
    for suppression in report.unexplained:
        print(
            f"{suppression.path}:{suppression.line}: RPR999 unexplained "
            "suppression: '# repro: noqa' requires a reason after the rule ids",
            file=out,
        )
    if statistics:
        for rule_id, count in report.statistics().items():
            print(f"{rule_id:8s} {count}", file=out)
    n_v = len(report.violations)
    n_s = len(report.suppressed)
    n_u = len(report.unexplained)
    n_f = len(report.files)
    print(
        f"{n_v} violation(s), {n_s} suppressed ({n_u} unexplained) "
        f"across {n_f} file(s)",
        file=out,
    )
    if n_s:
        print("suppressions in effect:", file=out)
        for _, suppression in report.suppressed:
            print(f"  {suppression.render()}", file=out)


def _gh_escape(value: str, *, property: bool = False) -> str:
    """Escape a string for a GitHub Actions workflow command.

    ``%``/CR/LF are escaped everywhere; property values (file, title)
    additionally escape ``:`` and ``,``, their delimiters.
    """
    value = value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    if property:
        value = value.replace(":", "%3A").replace(",", "%2C")
    return value


def _render_github(report: LintReport, out) -> None:
    """GitHub workflow-command annotations: one ``::error`` per finding.

    Emitted by the ``static-analysis`` CI job so violations annotate the
    offending diff lines in the pull-request view instead of hiding in a
    job log.  A trailing plain-text summary keeps the log readable; the
    exit code is unchanged from the other formats.
    """
    for v in report.violations:
        message = v.message if not v.fixit else f"{v.message} — fix: {v.fixit}"
        print(
            f"::error file={_gh_escape(v.path, property=True)},"
            f"line={v.line},col={v.col + 1},"
            f"title={_gh_escape(v.rule_id, property=True)}::"
            f"{_gh_escape(message)}",
            file=out,
        )
    for s in report.unexplained:
        print(
            f"::error file={_gh_escape(s.path, property=True)},"
            f"line={s.line},title=RPR999::"
            "unexplained suppression: '# repro: noqa' requires a reason "
            "after the rule ids",
            file=out,
        )
    print(
        f"{len(report.violations)} violation(s), "
        f"{len(report.suppressed)} suppressed "
        f"({len(report.unexplained)} unexplained) "
        f"across {len(report.files)} file(s)",
        file=out,
    )


def _render_json(report: LintReport, out) -> None:
    payload = {
        "violations": [
            {
                "rule": v.rule_id,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
                "fixit": v.fixit,
            }
            for v in report.violations
        ],
        "suppressed": [
            {
                "rule": v.rule_id,
                "path": v.path,
                "line": v.line,
                "reason": s.reason,
            }
            for v, s in report.suppressed
        ],
        "unexplained_suppressions": [
            {"path": s.path, "line": s.line, "rules": list(s.rule_ids)}
            for s in report.unexplained
        ],
        "statistics": report.statistics(),
        "files": len(report.files),
        "exit_code": report.exit_code,
    }
    json.dump(payload, out, indent=2)
    print(file=out)


def list_rules(out) -> None:
    for rule in _registered_rules():
        print(f"{rule.id}  {rule.title}", file=out)
        print(f"        {rule.rationale}", file=out)
        print(f"        fix: {rule.fixit}", file=out)


def build_arg_parser():
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-scj lint",
        description="Project-specific AST lint for the repro codebase "
        "(see docs/ANALYSIS.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RPRxxx",
        help="run only the listed rule ids (repeatable, comma-separated)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (default: text); 'github' emits workflow-"
        "command annotations for CI",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print per-rule violation counts",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every registered rule and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point for ``python -m repro.analysis``; returns the exit code."""
    parser = build_arg_parser()
    return run(parser.parse_args(argv), out=out)


def run(args, out=None) -> int:
    """Run the linter from a parsed namespace (shared with ``repro-scj lint``).

    Expects the attributes :func:`build_arg_parser` defines: ``paths``,
    ``select``, ``format``, ``statistics``, ``list_rules``.
    """
    out = out if out is not None else sys.stdout
    if args.list_rules:
        list_rules(out)
        return 0

    select: list[str] | None = None
    if args.select:
        select = [s for chunk in args.select for s in chunk.split(",") if s]

    try:
        report = lint_paths(args.paths, select=select)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        _render_json(report, out)
    elif args.format == "github":
        _render_github(report, out)
    else:
        _render_text(report, statistics=args.statistics, out=out)
    return report.exit_code
