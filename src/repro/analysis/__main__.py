"""``python -m repro.analysis`` — run the project lint engine."""

import sys

from repro.analysis.engine import main

if __name__ == "__main__":
    sys.exit(main())
