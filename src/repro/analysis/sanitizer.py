"""Runtime invariant sanitizer (``REPRO_SANITIZE=1``).

The lint engine (:mod:`repro.analysis.engine`) enforces *source* contracts;
this module enforces *structural* ones at runtime.  With the environment
variable ``REPRO_SANITIZE`` set to a truthy value, the hook sites listed
below re-validate every index structure after it is built or mutated and
raise :class:`~repro.errors.SanitizerError` naming the violating node path
(e.g. ``root.left.right``) on the first broken invariant:

* :meth:`repro.core.base.SetContainmentJoin.prepare` — the freshly-built
  prepared index (trie / buckets / inverted structure + leaf-vs-relation
  accounting).
* :meth:`repro.core.base.PreparedIndex.probe_many` — probe accounting:
  ``probe_calls`` strictly monotone, ``reused_index`` consistent,
  cumulative counters non-decreasing.
* :class:`repro.index.inverted.InvertedIndex` — postings sorted and
  consistent at construction.
* :class:`repro.extensions.set_index.PatriciaSetIndex` — full trie
  re-validation after every ``add``/``discard``.
* :func:`repro.planner.executor.execute_plan` — the plan is a frozen value
  object with a known executor.

The checks are deliberately O(index size) — they re-walk whole tries — so
the sanitizer is a testing/debugging mode, not a production default (see
``docs/ANALYSIS.md`` for overhead numbers).  Everything here duck-types
against the public structure attributes; only the trie classes themselves
are imported, keeping this module free of cycles with the core layers.
"""

from __future__ import annotations

import os
from typing import Any

from repro.errors import SanitizerError
from repro.tries.binary_trie import BinaryTrie
from repro.tries.patricia import PatriciaTrie
from repro.tries.set_patricia import SetPatriciaTrie
from repro.tries.set_trie import SetTrie

__all__ = [
    "ENV_VAR",
    "enabled",
    "check_signature",
    "check_patricia_trie",
    "check_binary_trie",
    "check_set_trie",
    "check_set_patricia_trie",
    "check_inverted_index",
    "check_prepared_index",
    "check_probe_accounting",
    "check_plan",
    "maybe_check_prepared_index",
    "maybe_check_probe_accounting",
    "maybe_check_inverted_index",
    "maybe_check_patricia_trie",
    "maybe_check_plan",
]

ENV_VAR = "REPRO_SANITIZE"
_FALSY = frozenset({"", "0", "false", "no", "off"})


def enabled() -> bool:
    """True when ``REPRO_SANITIZE`` is set to a truthy value.

    Read fresh on every call (not cached) so tests can toggle the mode
    with ``monkeypatch.setenv`` without reloading modules.
    """
    return os.environ.get(ENV_VAR, "").strip().lower() not in _FALSY


def _fail(message: str, path: str) -> None:
    raise SanitizerError(message, path=path)


# ----------------------------------------------------------------------
# Signatures
# ----------------------------------------------------------------------
def check_signature(signature: Any, bits: int, path: str = "signature") -> None:
    """A signature bitmap must be a non-negative int fitting ``bits``."""
    if not isinstance(signature, int) or isinstance(signature, bool):
        _fail(f"signature is {type(signature).__name__}, expected int", path)
    if signature < 0:
        _fail(f"negative signature {signature}", path)
    if signature.bit_length() > bits:
        _fail(
            f"signature needs {signature.bit_length()} bits but the "
            f"configured signature length is {bits}",
            path,
        )


# ----------------------------------------------------------------------
# Signature-space tries
# ----------------------------------------------------------------------
def check_patricia_trie(trie: PatriciaTrie) -> None:
    """Re-validate every Patricia-trie invariant, reporting the node path.

    Checks (paper Sec. III-B / docs/ALGORITHMS.md): segments tile
    ``[0, bits)`` along every root path, prefixes fit their segment, the
    cached ``shift``/``mask`` agree with the bounds, internal nodes are
    genuine two-way branches with correct branch bits, leaves extend to the
    signature width and store exactly their path bits, and the recorded
    ``leaf_count`` matches the walk.
    """
    if trie.root is None:
        if trie.leaf_count != 0:
            _fail(f"empty trie reports leaf_count={trie.leaf_count}", "root")
        return
    leaves = 0
    nodes = 0
    stack: list[tuple[Any, int, int, str]] = [(trie.root, 0, 0, "root")]
    while stack:
        node, start, acc, path = stack.pop()
        nodes += 1
        if node.start != start:
            _fail(f"skip-prefix gap: segment starts at {node.start}, "
                  f"expected {start}", path)
        if node.stop > trie.bits or node.stop < node.start:
            _fail(f"segment [{node.start},{node.stop}) out of range "
                  f"[0,{trie.bits})", path)
        width = node.stop - node.start
        if node.prefix >> width:
            _fail(f"prefix 0x{node.prefix:x} wider than its {width}-bit "
                  "segment", path)
        if node.shift != trie.bits - node.stop:
            _fail(f"cached shift {node.shift} != bits - stop "
                  f"({trie.bits - node.stop})", path)
        if node.mask != (1 << width) - 1:
            _fail(f"cached mask 0x{node.mask:x} != segment mask", path)
        acc = (acc << width) | node.prefix
        if node.is_leaf:
            leaves += 1
            if node.stop != trie.bits:
                _fail(f"leaf stops at bit {node.stop}, not the signature "
                      f"length {trie.bits}", path)
            check_signature(node.signature, trie.bits, f"{path}.signature")
            if node.signature != acc:
                _fail(f"leaf signature 0x{node.signature:x} != path bits "
                      f"0x{acc:x}", path)
        else:
            if node.left is None or node.right is None:
                _fail("internal node with a single child (Patricia "
                      "compression violated)", path)
            if node.stop >= trie.bits:
                _fail("internal node extends to the signature width", path)
            left_bit = node.left.prefix >> (node.left.stop - node.left.start - 1)
            right_bit = node.right.prefix >> (node.right.stop - node.right.start - 1)
            if left_bit != 0:
                _fail("left child's branch bit is 1", f"{path}.left")
            if right_bit != 1:
                _fail("right child's branch bit is 0", f"{path}.right")
            stack.append((node.left, node.stop, acc, f"{path}.left"))
            stack.append((node.right, node.stop, acc, f"{path}.right"))
    if leaves != trie.leaf_count:
        _fail(f"walk found {leaves} leaves but leaf_count={trie.leaf_count}",
              "root")
    if nodes > 2 * leaves - 1:
        _fail(f"{nodes} nodes exceed the Patricia bound 2k-1={2 * leaves - 1}",
              "root")


def check_binary_trie(trie: BinaryTrie) -> None:
    """Re-validate the uncompressed binary trie: leaves live exactly at
    depth ``bits`` and store the signature spelled by their path."""
    leaves = 0
    stack: list[tuple[Any, int, int, str]] = [(trie.root, 0, 0, "root")]
    while stack:
        node, depth, acc, path = stack.pop()
        if node.is_leaf:
            leaves += 1
            if depth != trie.bits:
                _fail(f"leaf at depth {depth}, expected {trie.bits}", path)
            check_signature(node.signature, trie.bits, f"{path}.signature")
            if node.signature != acc:
                _fail(f"leaf signature 0x{node.signature:x} != path bits "
                      f"0x{acc:x}", path)
        elif depth >= trie.bits and (node.left or node.right):
            _fail("node below the signature width has children", path)
        if node.left is not None:
            stack.append((node.left, depth + 1, acc << 1, f"{path}.left"))
        if node.right is not None:
            stack.append((node.right, depth + 1, (acc << 1) | 1, f"{path}.right"))
    if leaves != trie.leaf_count:
        _fail(f"walk found {leaves} leaves but leaf_count={trie.leaf_count}",
              "root")


# ----------------------------------------------------------------------
# Element-space tries (PRETTI / PRETTI+)
# ----------------------------------------------------------------------
def check_set_trie(trie: SetTrie) -> None:
    """Re-validate the PRETTI set trie: children keyed by their label,
    labels strictly ascending along paths, ``size`` equals resident ids."""
    resident = 0
    stack: list[tuple[Any, str]] = [(trie.root, "root")]
    while stack:
        node, path = stack.pop()
        resident += len(node.tuples)
        for label, child in node.children.items():
            child_path = f"{path}.{label}"
            if label != child.label:
                _fail(f"child keyed {label} carries label {child.label}",
                      child_path)
            if node is not trie.root and child.label <= node.label:
                _fail(f"labels not ascending: {child.label} under "
                      f"{node.label}", child_path)
            stack.append((child, child_path))
    if resident != trie.size:
        _fail(f"walk found {resident} resident tuples but size={trie.size}",
              "root")


def check_set_patricia_trie(trie: SetPatriciaTrie) -> None:
    """Re-validate the PRETTI+ element-space Patricia trie: non-empty
    strictly-ascending prefixes, children keyed by their first element,
    compression (no mergeable chains), ``size`` equals resident ids."""
    resident = 0
    stack: list[tuple[Any, int, str]] = [(trie.root, -1, "root")]
    while stack:
        node, last, path = stack.pop()
        resident += len(node.tuples)
        if node is not trie.root:
            if not node.prefix:
                _fail("non-root node with an empty prefix", path)
            if node.prefix[0] <= last:
                _fail(f"element {node.prefix[0]} does not ascend past "
                      f"{last} at the node boundary", path)
            for i in range(1, len(node.prefix)):
                if node.prefix[i] <= node.prefix[i - 1]:
                    _fail(f"prefix {node.prefix} not strictly ascending",
                          path)
            if not node.children and not node.tuples:
                _fail("childless node holds no tuples", path)
            if len(node.children) == 1 and not node.tuples:
                _fail("single-child node without tuples (mergeable chain)",
                      path)
        for key, child in node.children.items():
            child_path = f"{path}.{key}"
            if not child.prefix or child.prefix[0] != key:
                _fail(f"child keyed {key} has prefix {child.prefix}",
                      child_path)
            tail = node.prefix[-1] if node.prefix else last
            stack.append((child, tail, child_path))
    if resident != trie.size:
        _fail(f"walk found {resident} resident tuples but size={trie.size}",
              "root")


# ----------------------------------------------------------------------
# Inverted index
# ----------------------------------------------------------------------
def check_inverted_index(index: Any) -> None:
    """Postings lists and ``all_ids`` must be strictly ascending, and every
    posting must reference a known tuple id."""
    all_ids = index.all_ids
    for i in range(1, len(all_ids)):
        if all_ids[i] <= all_ids[i - 1]:
            _fail(f"all_ids not strictly ascending at index {i} "
                  f"({all_ids[i - 1]} then {all_ids[i]})", f"all_ids[{i}]")
    known = set(all_ids)
    for element, postings in index.lists.items():
        for i, rid in enumerate(postings):
            if i and rid <= postings[i - 1]:
                _fail(f"postings for element {element} not strictly "
                      f"ascending at index {i}", f"postings[{element}][{i}]")
            if rid not in known:
                _fail(f"postings for element {element} reference unknown "
                      f"tuple id {rid}", f"postings[{element}][{i}]")


# ----------------------------------------------------------------------
# Prepared indexes
# ----------------------------------------------------------------------
def _group_ids(payload: Any) -> int:
    """Count tuple ids in a leaf payload of CandidateGroup-likes."""
    total = 0
    for group in payload:
        ids = getattr(group, "ids", None)
        total += len(ids) if ids is not None else 1
    return total


def check_prepared_index(index: Any) -> None:
    """Validate a freshly-built prepared index against its relation.

    Dispatches on the structure the index exposes: a signature trie
    (PTSJ/TSJ), an element-space trie (PRETTI/PRETTI+), or SHJ's hash
    buckets.  Beyond each structure's own invariants, the accounting must
    close: the ids resident in the structure are exactly the indexed
    relation's tuples, and the configured signature length matches the
    trie width.
    """
    relation_size = len(index.relation)
    trie = getattr(index, "trie", None)
    sig_bits = getattr(index, "signature_bits", 0)

    if isinstance(trie, PatriciaTrie) or isinstance(trie, BinaryTrie):
        check_patricia_trie(trie) if isinstance(trie, PatriciaTrie) else check_binary_trie(trie)
        if sig_bits and trie.bits != sig_bits:
            _fail(f"trie width {trie.bits} != configured signature length "
                  f"{sig_bits}", "root")
        resident = sum(_group_ids(leaf.items) for leaf in trie.leaves())
        if resident != relation_size:
            _fail(f"trie holds {resident} tuple ids but the indexed "
                  f"relation has {relation_size}", "root")
    elif isinstance(trie, SetTrie):
        check_set_trie(trie)
        if trie.size != relation_size:
            _fail(f"set trie holds {trie.size} tuples but the indexed "
                  f"relation has {relation_size}", "root")
    elif isinstance(trie, SetPatriciaTrie):
        check_set_patricia_trie(trie)
        if trie.size != relation_size:
            _fail(f"set Patricia trie holds {trie.size} tuples but the "
                  f"indexed relation has {relation_size}", "root")

    buckets = getattr(getattr(index, "_algorithm", None), "buckets", None)
    if trie is None and isinstance(buckets, dict):
        resident = 0
        for key, bucket in buckets.items():
            for i, entry in enumerate(bucket):
                if sig_bits:
                    check_signature(entry.signature, sig_bits,
                                    f"buckets[{key}][{i}].signature")
                resident += _group_ids([entry.group])
        if resident != relation_size:
            _fail(f"hash buckets hold {resident} tuple ids but the indexed "
                  f"relation has {relation_size}", "buckets")

    calls = getattr(index, "_probe_calls", 0)
    if calls != 0:
        _fail(f"freshly-prepared index reports probe_calls={calls}",
              "probe_calls")


def check_probe_accounting(index: Any, stats: Any, probe_records: int) -> None:
    """After one ``probe_many`` batch: reuse counters must be monotone and
    self-consistent, and cumulative counters can only grow."""
    calls = index._probe_calls
    last = getattr(index, "_sanitizer_last_probe_calls", 0)
    if calls != last + 1:
        _fail(f"probe_calls went {last} -> {calls}; must increase by "
              "exactly 1 per batch", "probe_calls")
    index._sanitizer_last_probe_calls = calls
    if stats.extras.get("probe_calls") != calls:
        _fail(f"stats.extras['probe_calls']={stats.extras.get('probe_calls')}"
              f" disagrees with the index's counter {calls}",
              "extras.probe_calls")
    expected_reuse = 0 if calls == 1 else 1
    if stats.extras.get("reused_index") != expected_reuse:
        _fail(f"stats.extras['reused_index']="
              f"{stats.extras.get('reused_index')} on batch {calls}",
              "extras.reused_index")
    if stats.build_seconds != 0.0:
        _fail("a pure probe batch reports non-zero build_seconds",
              "build_seconds")
    cum = index._cumulative
    for counter in ("pairs", "candidates", "verifications", "node_visits",
                    "intersections"):
        batch = getattr(stats, counter)
        total = getattr(cum, counter)
        if batch < 0:
            _fail(f"negative counter {counter}={batch}", counter)
        if total < batch:
            _fail(f"cumulative {counter}={total} fell below this batch's "
                  f"{batch}; accumulation is not monotone", counter)


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
def check_plan(plan: Any) -> None:
    """A plan entering the executor must still be a frozen value object."""
    params = getattr(type(plan), "__dataclass_params__", None)
    if params is None or not params.frozen:
        _fail(f"plan of type {type(plan).__name__} is not a frozen "
              "dataclass", "plan")
    for name in ("algorithm_kwargs", "executor_options", "decisions"):
        if not isinstance(getattr(plan, name), tuple):
            _fail(f"plan.{name} is {type(getattr(plan, name)).__name__}, "
                  "expected an immutable tuple", f"plan.{name}")


# ----------------------------------------------------------------------
# Env-gated wrappers (the hook entry points)
# ----------------------------------------------------------------------
def maybe_check_prepared_index(index: Any) -> None:
    if enabled():
        check_prepared_index(index)


def maybe_check_probe_accounting(index: Any, stats: Any, probe_records: int) -> None:
    if enabled():
        check_probe_accounting(index, stats, probe_records)


def maybe_check_inverted_index(index: Any) -> None:
    if enabled():
        check_inverted_index(index)


def maybe_check_patricia_trie(trie: PatriciaTrie) -> None:
    if enabled():
        check_patricia_trie(trie)


def maybe_check_plan(plan: Any) -> None:
    if enabled():
        check_plan(plan)
