"""Runtime lock-order / race sanitizer (``REPRO_RACEDETECT=1``).

PR 10's dynamic half: the serving stack (``serve/``, ``obs/metrics.py``,
``kernels/__init__.py``, ``core/base.py``) creates its locks through
:func:`tracked_lock` instead of ``threading.Lock()``.  With
``REPRO_RACEDETECT`` unset that factory returns a *plain* stdlib lock —
the hot path pays nothing.  With it set (same truthiness contract as
``REPRO_SANITIZE``, see :mod:`repro.analysis.sanitizer`) the factory
returns a :class:`TrackedLock` that enforces the project's lock
discipline at runtime:

* **Lock-order graph.**  Locks are named (``"cache.lock"``,
  ``"metrics.registry"``, ...); whenever a thread acquires ``B`` while
  holding ``A``, the edge ``A → B`` is recorded process-wide together
  with the acquiring stack.  An acquisition that would close a cycle
  raises :class:`~repro.errors.LockOrderError` naming *both* stacks —
  the one acquiring now and the one that established the reverse path —
  before the thread ever blocks, so a potential deadlock becomes a
  stack-bearing test failure instead of a hang.  The offending edge is
  *not* inserted, keeping the graph acyclic for subsequent checks.
* **Re-entry.**  Acquiring a non-reentrant tracked lock twice on one
  thread is a guaranteed self-deadlock; the detector raises immediately
  instead of freezing the suite.
* **Hold-time histograms.**  Each release stamps the hold duration into
  the owning component's :class:`~repro.obs.metrics.MetricsRegistry`
  (``lock.<name>.hold_seconds``), so contention shows up in the same
  ``stats`` snapshot the server already serves.

The order graph keys on lock *names*, not instances: every
``cache.build`` lock is one node, so an inversion between any build lock
and the registry lock is caught even when the two runs used different
key objects.  The documented project-wide order lives in
``docs/ANALYSIS.md``.

This module deliberately imports nothing from :mod:`repro.obs` —
``obs/metrics.py`` itself creates its registry lock through
:func:`tracked_lock`, so an import in the other direction would be a
cycle.  Hold times are read from ``time.perf_counter`` directly for the
same reason; they are detector diagnostics, never join phase timings, so
the one-clock comparability contract (RPR001) is not at stake.
"""

from __future__ import annotations

import os
import threading
import traceback
from typing import TYPE_CHECKING, Union

# Deliberately not repro.obs.clock: metrics.py builds its registry lock
# through tracked_lock, so importing obs from here would be a cycle.
# The two perf_counter call sites below carry the RPR001 waivers.
import time

from repro.errors import LockOrderError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "ENV_VAR",
    "TrackedLock",
    "enabled",
    "held_lock_names",
    "lock_order_edges",
    "reset_lock_order",
    "tracked_lock",
]

#: Environment variable enabling the detector (``REPRO_SANITIZE`` style).
ENV_VAR = "REPRO_RACEDETECT"

_FALSY = {"", "0", "false", "no", "off"}


def enabled() -> bool:
    """Whether the race detector is switched on for this process.

    Read fresh on every call (cheap: one dict lookup), so tests can flip
    the environment variable per-case; locks constructed *before* the
    flip keep the flavour they were built with.
    """
    return os.environ.get(ENV_VAR, "").strip().lower() not in _FALSY


# ----------------------------------------------------------------------
# Process-wide lock-order graph
# ----------------------------------------------------------------------
#: ``_EDGES[a][b]`` = formatted stack of the acquisition that first took
#: ``b`` while holding ``a``.  Guarded by ``_GRAPH_LOCK`` — a *plain*
#: lock, always leaf-most, never itself tracked.
_EDGES: dict[str, dict[str, str]] = {}
_GRAPH_LOCK = threading.Lock()

#: Per-thread stack of currently-held TrackedLocks (innermost last).
_HELD = threading.local()


def _held(create: bool = True) -> list[tuple["TrackedLock", float]]:
    stack = getattr(_HELD, "stack", None)
    if stack is None:
        if not create:
            return []
        stack = []
        _HELD.stack = stack
    return stack


def held_lock_names() -> tuple[str, ...]:
    """Names of tracked locks the calling thread holds, outermost first."""
    return tuple(entry.name for entry, _ in _held(create=False))


def lock_order_edges() -> dict[str, tuple[str, ...]]:
    """The recorded acquisition-order graph: name → names acquired under it."""
    with _GRAPH_LOCK:
        return {a: tuple(sorted(bs)) for a, bs in _EDGES.items()}


def reset_lock_order() -> None:
    """Forget every recorded edge (test isolation between scenarios)."""
    with _GRAPH_LOCK:
        _EDGES.clear()


def _capture_stack() -> str:
    # Drop the two innermost frames (this helper and TrackedLock.acquire)
    # so the stack ends at the caller actually taking the lock.
    frames = traceback.format_stack()[:-2]
    return "".join(frames)


def _find_path(start: str, goal: str) -> list[str] | None:
    """A path ``start → ... → goal`` through ``_EDGES`` (caller holds
    ``_GRAPH_LOCK``), or ``None``."""
    seen = {start}
    frontier: list[list[str]] = [[start]]
    while frontier:
        path = frontier.pop()
        for nxt in _EDGES.get(path[-1], ()):
            if nxt == goal:
                return path + [nxt]
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(path + [nxt])
    return None


def _record_edge(held_name: str, acquiring: str, stack: str, thread: str) -> None:
    """Record ``held_name → acquiring``; raise on a would-be cycle."""
    with _GRAPH_LOCK:
        targets = _EDGES.get(held_name)
        if targets is not None and acquiring in targets:
            return
        path = _find_path(acquiring, held_name)
        if path is not None:
            # The first edge of the reverse path carries the stack that
            # committed the conflicting order.
            prior_stack = _EDGES[path[0]][path[1]]
            chain = " -> ".join(path)
            raise LockOrderError(
                f"lock-order inversion: thread {thread!r} acquiring "
                f"{acquiring!r} while holding {held_name!r}, but the "
                f"opposite order {chain} is already established\n"
                f"--- this acquisition ({held_name!r} -> {acquiring!r}) ---\n"
                f"{stack}"
                f"--- prior acquisition ({path[0]!r} -> {path[1]!r}) ---\n"
                f"{prior_stack}"
            )
        # Insert only after the cycle check passed, so a raising
        # acquisition leaves the graph exactly as it found it.
        _EDGES.setdefault(held_name, {})[acquiring] = stack


class TrackedLock:
    """An instrumented mutex enforcing the project lock discipline.

    Drop-in for ``threading.Lock()`` / ``threading.RLock()`` — supports
    ``acquire(blocking, timeout)`` / ``release()`` / context-manager use
    / ``locked()`` — plus:

    * lock-order cycle detection against every other :class:`TrackedLock`
      in the process (see module docstring);
    * same-thread re-entry detection when ``reentrant=False``;
    * hold-time stamping into ``registry`` (``lock.<name>.hold_seconds``)
      when a registry was supplied.

    Not picklable (owners already drop their locks in ``__getstate__``).
    """

    __slots__ = ("name", "reentrant", "_inner", "_registry")

    def __init__(
        self,
        name: str,
        *,
        registry: "MetricsRegistry | None" = None,
        reentrant: bool = False,
    ) -> None:
        self.name = name
        self.reentrant = reentrant
        self._inner = threading.RLock() if reentrant else threading.Lock()
        self._registry = registry

    # -- acquisition ---------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        held = _held()
        thread = threading.current_thread().name
        if not self.reentrant and any(entry is self for entry, _ in held):
            raise LockOrderError(
                f"re-entrant acquisition of non-reentrant lock {self.name!r} "
                f"on thread {thread!r} (guaranteed self-deadlock)\n"
                f"--- this acquisition ---\n{_capture_stack()}"
            )
        # Order check happens *before* blocking: a would-be deadlock
        # raises with stacks instead of hanging the suite.
        if held:
            stack = _capture_stack()
            for entry_name in {entry.name for entry, _ in held}:
                if entry_name != self.name:
                    _record_edge(entry_name, self.name, stack, thread)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            held.append((self, time.perf_counter()))  # repro: noqa RPR001 detector-internal hold timing (see module docstring)
        return acquired

    def release(self) -> None:
        held = _held()
        acquired_at: float | None = None
        for idx in range(len(held) - 1, -1, -1):
            if held[idx][0] is self:
                acquired_at = held.pop(idx)[1]
                break
        self._inner.release()
        # Stamp after the raw release so observing (which may create the
        # histogram under the registry's own lock) never extends the
        # measured hold and never runs while this lock is marked held.
        if acquired_at is not None and self._registry is not None:
            elapsed = time.perf_counter() - acquired_at  # repro: noqa RPR001 detector-internal hold timing (see module docstring)
            self._registry.histogram(f"lock.{self.name}.hold_seconds").observe(
                elapsed
            )

    # -- context manager / introspection -------------------------------
    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.release()

    def locked(self) -> bool:
        if self.reentrant:
            # RLock has no locked(), and probing it with a non-blocking
            # acquire would *succeed* for the owning thread — so check
            # this thread's held stack first, then probe for others.
            if any(entry is self for entry, _ in _held(create=False)):
                return True
            if self._inner.acquire(blocking=False):
                self._inner.release()
                return False
            return True
        return self._inner.locked()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flavour = "reentrant" if self.reentrant else "plain"
        return f"<TrackedLock {self.name} ({flavour})>"


def tracked_lock(
    name: str,
    *,
    registry: "MetricsRegistry | None" = None,
    reentrant: bool = False,
) -> Union[TrackedLock, threading.Lock, threading.RLock]:
    """A mutex named ``name``: tracked under ``REPRO_RACEDETECT``, plain
    stdlib otherwise.

    This is the adoption point: components create their locks through
    this factory and get the zero-overhead stdlib primitive in normal
    runs (the flavour is decided once, at construction) and the
    instrumented :class:`TrackedLock` under the detector.  ``registry``
    is the component's metrics sink for hold-time histograms; pass
    ``None`` for the registry's *own* lock (stamping into itself while
    it may be mid-creation is the one recursion the detector avoids).
    """
    if not enabled():
        return threading.RLock() if reentrant else threading.Lock()
    return TrackedLock(name, registry=registry, reentrant=reentrant)
