"""Rule registry for :mod:`repro.analysis`.

Each rule module exposes one or more :class:`~repro.analysis.engine.Rule`
instances in a module-level ``RULES`` tuple; this package concatenates
them into ``ALL_RULES`` in id order.  To add a rule (``docs/ANALYSIS.md``
walks through an example): write a checker ``def check(rule, ctx)`` that
yields :class:`~repro.analysis.engine.Violation` objects, wrap it in a
``Rule`` with the next free ``RPRxxx`` id, append it to a ``RULES`` tuple
here, and cover it with a bad/good fixture pair under
``tests/analysis_fixtures/``.
"""

from __future__ import annotations

from repro.analysis.rules import (
    clocks,
    concurrency,
    counters,
    dependencies,
    determinism,
    governance,
    hygiene,
    immutability,
    pickling,
)

ALL_RULES = tuple(
    sorted(
        (
            *clocks.RULES,
            *pickling.RULES,
            *immutability.RULES,
            *hygiene.RULES,
            *determinism.RULES,
            *counters.RULES,
            *governance.RULES,
            *dependencies.RULES,
            *concurrency.RULES,
        ),
        key=lambda rule: rule.id,
    )
)

__all__ = ["ALL_RULES"]
