"""RPR009 — relation-sized loops must poll the governance cursor.

The governance guarantee ("a cancelled or over-deadline join terminates
within one poll interval") only holds if every loop whose trip count
scales with relation size actually ticks a
:class:`~repro.governance.policy.Governor`.  A new build or probe loop
that forgets the tick silently re-opens an unbounded window — the kind
of regression no runtime test catches until a join hangs in production.

The rule is heuristic but tuned to this codebase's idiom: ``for``
statements iterating a relation-shaped name (``r``, ``s``, a ``.records``
attribute, an ``enumerate(...)`` of either) and ``while stack:`` trie
traversals inside :mod:`repro.core` / :mod:`repro.exec` must contain a
``.tick()`` or ``.poll()`` call somewhere in their body, or carry an
explained line waiver (``# repro: noqa RPR009 <why this loop is
bounded>``).  Comprehensions are exempt: they cannot carry statements,
and the project keeps them for small bounded scans.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext, Rule, Violation

#: Variable names conventionally bound to a whole relation (or a
#: relation-sized slice) in this codebase.
RELATION_NAMES = frozenset(
    {"r", "s", "relation", "probes", "chunk", "r_chunk", "s_part", "r_part"}
)

#: Attribute suffixes that expose a relation's full record tuple.
RECORD_ATTRS = ("records", "_records")


def _is_relation_expr(node: ast.expr) -> bool:
    """Whether ``node`` looks like an iterable over a whole relation."""
    if isinstance(node, ast.Name):
        return node.id in RELATION_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in RECORD_ATTRS
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "enumerate"
        and node.args
    ):
        return _is_relation_expr(node.args[0])
    return False


def _polls_governor(body: list[ast.stmt]) -> bool:
    """Whether any statement in ``body`` calls a ``.tick()``/``.poll()``."""
    for stmt in body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("tick", "poll")
            ):
                return True
    return False


def check_governed_loops(rule: Rule, ctx: ModuleContext) -> Iterator[Violation]:
    if not ctx.in_package("repro.core", "repro.exec"):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.For) and _is_relation_expr(node.iter):
            if not _polls_governor(node.body):
                source = ast.unparse(node.iter)
                yield ctx.violation(
                    rule,
                    node,
                    f"relation-sized 'for' over {source!r} never ticks a "
                    "governance cursor",
                )
        elif (
            isinstance(node, ast.While)
            and isinstance(node.test, ast.Name)
            and node.test.id == "stack"
        ):
            if not _polls_governor(node.body):
                yield ctx.violation(
                    rule,
                    node,
                    "trie-traversal 'while stack:' loop never ticks a "
                    "governance cursor",
                )


RULES = (
    Rule(
        id="RPR009",
        title="relation-sized loop without a governance poll",
        rationale="deadline/cancel enforcement is cooperative: a "
        "build/probe loop that never ticks a Governor re-opens an "
        "unbounded window in which a cancelled or over-deadline join "
        "cannot stop.",
        fixit="hoist `gov = governor(phase, stats)` before the loop and "
        "add `if gov is not None: gov.tick()` per iteration, or waive a "
        "genuinely bounded loop with `# repro: noqa RPR009 <reason>`",
        check=check_governed_loops,
    ),
)
