"""RPR011–RPR014 — lock discipline for the threaded serving stack.

PR 8–9 made the codebase genuinely multithreaded: the join server's
request pool, the index cache's singleflight builds, shared metrics
instruments, the kernel registry and thread-local ambient state all run
concurrently.  These rules encode the lock discipline those layers agree
on (``docs/ANALYSIS.md`` documents the project-wide lock order; the
runtime half lives in :mod:`repro.analysis.concurrency`):

* **RPR011** — if a class guards mutations of a ``self._*`` attribute
  with a lock *somewhere*, every mutation of that attribute must be
  guarded.  The lock/attribute association is inferred per class from
  the mutations that do take a lock, so the rule needs no annotations.
  ``__init__``-family methods are exempt (the object is not shared yet).
* **RPR012** — no reaching into another object's private lock
  (``hist._lock``): the owner must expose a locked method instead, or a
  refactor of the owner silently unguards the caller.
* **RPR013** — no blocking work (futures, pool submission, socket I/O,
  sleeps, index builds) while holding a lock; an intentional case (e.g.
  the singleflight builder under its per-key lock) carries an explained
  ``# repro: noqa RPR013`` waiver.
* **RPR014** — ``threading.local()`` ambient state must be a private
  module-level global touched only through its module's accessor
  functions; other modules importing or dotting into a ``_STATE``
  re-create exactly the shared-mutable coupling thread-locals exist to
  prevent.

All four rules apply everywhere: the serving stack spans ``serve``,
``obs``, ``kernels`` and ``core``, and a lock is a lock wherever it
lives.  The heuristics key on this codebase's naming idiom — lock
attributes and variables contain ``"lock"``, ambient state is
``_STATE`` — which the fixtures pin down.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext, Rule, Violation

#: Method calls that mutate their receiver in place (container idiom).
MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)

#: Methods where unguarded mutation is fine: the object is being born,
#: torn down, or rebuilt on the far side of a process boundary.
EXEMPT_METHODS = frozenset(
    {"__init__", "__new__", "__del__", "__getstate__", "__setstate__"}
)

#: Attribute/method calls that block the calling thread (RPR013).
BLOCKING_ATTRS = frozenset(
    {
        "accept",
        "connect",
        "makefile",
        "map",
        "recv",
        "recvfrom",
        "result",
        "sendall",
        "shutdown",
        "sleep",
        "submit",
        "wait",
    }
)

#: Callable-name substrings that mean "this builds an index" (RPR013):
#: index construction is the system's single most expensive operation.
BUILDING_NAME_PARTS = ("build", "prepare")
BLOCKING_NAMES = frozenset({"probe_many", "sleep"})


def _is_lockish(expr: ast.expr) -> bool:
    """Whether ``expr`` names a lock by this codebase's conventions."""
    if isinstance(expr, ast.Name):
        return "lock" in expr.id.lower()
    if isinstance(expr, ast.Attribute):
        return "lock" in expr.attr.lower()
    return False


def _self_attr(node: ast.expr) -> str | None:
    """``X`` when ``node`` is ``self.X`` (or ``cls.X``), else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in ("self", "cls")
    ):
        return node.attr
    return None


def _mutated_self_attrs(stmt: ast.stmt) -> Iterator[tuple[str, ast.AST]]:
    """Yield ``(attr, node)`` for every ``self.X`` mutated by ``stmt``
    itself (not by nested statements — callers walk)."""
    targets: list[ast.expr] = []
    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    for target in targets:
        for leaf in _unpack_targets(target):
            base = leaf
            if isinstance(base, ast.Subscript):
                base = base.value
            attr = _self_attr(base)
            if attr is not None:
                yield attr, leaf
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        func = stmt.value.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
            attr = _self_attr(func.value)
            if attr is not None:
                yield attr, stmt.value


def _unpack_targets(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _unpack_targets(elt)
    else:
        yield target


def _lock_withs(func: ast.AST) -> Iterator[ast.With]:
    for node in ast.walk(func):
        if isinstance(node, ast.With) and any(
            _is_lockish(item.context_expr) for item in node.items
        ):
            yield node


def _statements_under_lock(func: ast.AST) -> set[int]:
    """Line numbers of statements inside any lock-guarded ``with``."""
    covered: set[int] = set()
    for with_node in _lock_withs(func):
        for stmt in with_node.body:
            for node in ast.walk(stmt):
                lineno = getattr(node, "lineno", None)
                if lineno is not None:
                    covered.add(lineno)
    return covered


# ----------------------------------------------------------------------
# RPR011 — guarded attributes stay guarded
# ----------------------------------------------------------------------
def check_guarded_mutations(rule: Rule, ctx: ModuleContext) -> Iterator[Violation]:
    for klass in ast.walk(ctx.tree):
        if not isinstance(klass, ast.ClassDef):
            continue
        methods = [
            n
            for n in klass.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        # Pass 1: which self attributes does this class ever mutate
        # under a lock?  That set *is* the class's locking contract.
        guarded: set[str] = set()
        for method in methods:
            for with_node in _lock_withs(method):
                for stmt in with_node.body:
                    for node in ast.walk(stmt):
                        if isinstance(node, ast.stmt):
                            for attr, _ in _mutated_self_attrs(node):
                                guarded.add(attr)
        if not guarded:
            continue
        # Pass 2: every other mutation of those attributes must also sit
        # under a lock (any of the class's locks: cross-lock confusion
        # is the runtime detector's department, unguarded is ours).
        for method in methods:
            if method.name in EXEMPT_METHODS:
                continue
            covered = _statements_under_lock(method)
            for node in ast.walk(method):
                if not isinstance(node, ast.stmt):
                    continue
                for attr, site in _mutated_self_attrs(node):
                    if attr in guarded and node.lineno not in covered:
                        yield ctx.violation(
                            rule,
                            site,
                            f"'self.{attr}' is lock-guarded elsewhere in "
                            f"class {klass.name!r} but mutated here without "
                            "the lock",
                        )


# ----------------------------------------------------------------------
# RPR012 — no reaching into another object's private lock
# ----------------------------------------------------------------------
def check_foreign_locks(rule: Rule, ctx: ModuleContext) -> Iterator[Violation]:
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Attribute)
            and (node.attr == "_lock" or node.attr.endswith("_lock"))
            and node.attr.startswith("_")
            and _self_attr(node) is None
        ):
            owner = ast.unparse(node.value)
            yield ctx.violation(
                rule,
                node,
                f"reaching into {owner!r}'s private lock '.{node.attr}' — "
                "ask the owner for a locked method instead",
            )


# ----------------------------------------------------------------------
# RPR013 — no blocking calls while holding a lock
# ----------------------------------------------------------------------
def _blocking_reason(call: ast.Call) -> str | None:
    func = call.func
    name = None
    if isinstance(func, ast.Attribute):
        name = func.attr
        if name in BLOCKING_ATTRS:
            return f"blocking call '.{name}()'"
    elif isinstance(func, ast.Name):
        name = func.id
    if name is None:
        return None
    if name in BLOCKING_NAMES:
        return f"blocking call '{name}()'"
    lowered = name.lower()
    if any(part in lowered for part in BUILDING_NAME_PARTS):
        return f"index-building call '{name}()'"
    return None


def check_blocking_under_lock(rule: Rule, ctx: ModuleContext) -> Iterator[Violation]:
    for with_node in ast.walk(ctx.tree):
        if not isinstance(with_node, ast.With):
            continue
        if not any(_is_lockish(item.context_expr) for item in with_node.items):
            continue
        lock = ast.unparse(with_node.items[0].context_expr)
        for stmt in with_node.body:
            for node in ast.walk(stmt):
                # A nested with releases nothing — still under the lock.
                if isinstance(node, ast.Call):
                    reason = _blocking_reason(node)
                    if reason is not None:
                        yield ctx.violation(
                            rule,
                            node,
                            f"{reason} while holding {lock!r}",
                        )


# ----------------------------------------------------------------------
# RPR014 — thread-local ambient state stays behind module accessors
# ----------------------------------------------------------------------
def _is_threading_local_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return (
            func.attr == "local"
            and isinstance(func.value, ast.Name)
            and func.value.id == "threading"
        )
    return isinstance(func, ast.Name) and func.id == "local"


def check_threadlocal_discipline(rule: Rule, ctx: ModuleContext) -> Iterator[Violation]:
    # Module-level `_NAME = threading.local()` assignments are the one
    # sanctioned shape; remember their names.
    sanctioned_calls: set[int] = set()
    local_names: set[str] = set()
    for stmt in ctx.tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and _is_threading_local_call(stmt.value)
            and all(isinstance(t, ast.Name) for t in stmt.targets)
        ):
            sanctioned_calls.add(id(stmt.value))
            local_names.update(t.id for t in stmt.targets)  # type: ignore[union-attr]
    for node in ast.walk(ctx.tree):
        if _is_threading_local_call(node) and id(node) not in sanctioned_calls:
            yield ctx.violation(
                rule,
                node,
                "threading.local() outside a module-level private global — "
                "ambient state hiding in instances/functions cannot be "
                "reset or reasoned about",
            )
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "_STATE" or alias.name.endswith("_STATE"):
                    yield ctx.violation(
                        rule,
                        node,
                        f"importing thread-local state {alias.name!r} from "
                        f"{node.module!r} — use that module's accessor "
                        "functions",
                    )
        elif isinstance(node, ast.Attribute) and (
            node.attr == "_STATE" or node.attr.endswith("_STATE")
        ):
            yield ctx.violation(
                rule,
                node,
                f"dotting into another module's thread-local "
                f"'.{node.attr}' — use its accessor functions",
            )
    # Module-level code touching the thread-local directly (outside any
    # accessor function) binds attributes on the importing thread only.
    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in local_names
            ):
                yield ctx.violation(
                    rule,
                    node,
                    f"module-level access to thread-local "
                    f"{node.value.id!r} — attributes bound at import time "
                    "exist only on the importing thread",
                )


RULES = (
    Rule(
        id="RPR011",
        title="lock-guarded attribute mutated without the lock",
        rationale="a class that guards an attribute's mutations with a "
        "lock anywhere promises every mutation is guarded; one unguarded "
        "write (a lost increment, a torn LRU update) is a data race no "
        "single-threaded test can see.",
        fixit="wrap the mutation in the class's `with self._lock:` block "
        "(the same lock the other mutation sites take)",
        check=check_guarded_mutations,
    ),
    Rule(
        id="RPR012",
        title="reaching into another object's private lock",
        rationale="`other._lock` couples the caller to the owner's "
        "locking internals: renaming the lock, splitting it, or changing "
        "its granularity silently unguards every outside toucher.",
        fixit="add a method on the owning class that takes its own lock "
        "(e.g. Histogram.summary()) and call that instead",
        check=check_foreign_locks,
    ),
    Rule(
        id="RPR013",
        title="blocking call while holding a lock",
        rationale="a lock held across socket I/O, future waits, pool "
        "submission, sleeps or an index build turns one slow operation "
        "into a pile-up of every thread needing that lock — the serving "
        "stack's tail latency dies first, then deadlock risk follows.",
        fixit="take what you need under the lock, release it, then do "
        "the blocking work; a deliberate hold (e.g. the singleflight "
        "builder) carries `# repro: noqa RPR013 <why>`",
        check=check_blocking_under_lock,
    ),
    Rule(
        id="RPR014",
        title="thread-local ambient state outside module accessors",
        rationale="ambient state (current tracer, governance policy) "
        "works because exactly one module owns each threading.local and "
        "mediates access; foreign imports or instance-held locals "
        "re-create untracked shared state.",
        fixit="declare `_STATE = threading.local()` at module level and "
        "route every read/write through that module's accessor functions "
        "(current_x()/set_x()/use())",
        check=check_threadlocal_discipline,
    ),
)
