"""RPR001 — one-clock discipline.

Every duration reported by :class:`~repro.core.base.JoinStats`, the span
tracer, and the bench harness must come from the same monotonic source so
phase trees and counters are comparable bit-for-bit (PR 3's "one clock").
Reading ``time.time``/``perf_counter``/``monotonic`` anywhere outside
:mod:`repro.obs` silently forks the timebase, so this rule bans it.
``time.sleep`` is not a clock read and stays allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext, Rule, Violation

#: ``time`` attributes that read a clock; ``sleep`` deliberately absent.
CLOCK_READS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

#: Packages allowed to read ``time`` directly: the obs layer owns the clock.
ALLOWED_PACKAGES = ("repro.obs",)


def check_one_clock(rule: Rule, ctx: ModuleContext) -> Iterator[Violation]:
    if ctx.in_package(*ALLOWED_PACKAGES):
        return
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "time"
            and node.attr in CLOCK_READS
        ):
            yield ctx.violation(
                rule, node, f"clock read 'time.{node.attr}' outside repro.obs"
            )
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in CLOCK_READS:
                    yield ctx.violation(
                        rule,
                        node,
                        f"clock import 'from time import {alias.name}' "
                        "outside repro.obs",
                    )


RULES = (
    Rule(
        id="RPR001",
        title="clock read outside repro.obs (one-clock discipline)",
        rationale="JoinStats timings, tracer spans and bench records must "
        "share one monotonic source; a stray time.perf_counter() forks the "
        "timebase and makes phase trees incomparable.",
        fixit="import perf_counter/monotonic/wall_clock from repro.obs.clock "
        "instead of reading the time module directly",
        check=check_one_clock,
    ),
)
