"""RPR010 — numpy stays behind the kernel layer.

numpy is an *optional* accelerator dependency: the package must import,
plan and join on a stdlib-only host (docs/KERNELS.md).  The two places
allowed to import it are :mod:`repro.kernels` (the numpy backend, behind
a guarded import and :class:`~repro.kernels.base.KernelUnavailableError`)
and :mod:`repro.datagen` (dataset synthesis, an offline tool that has
depended on numpy's generators since PR 1).  A numpy import anywhere
else either makes a hot path silently backend-dependent — bypassing the
registry, the ``REPRO_KERNEL`` override and the parity suites — or turns
the whole package into a hard numpy dependency.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext, Rule, Violation

#: Packages allowed to import numpy: the kernel backends own vectorized
#: compute, the data generators own synthesis.
ALLOWED_PACKAGES = ("repro.kernels", "repro.datagen")


def _is_numpy(module: str | None) -> bool:
    return module is not None and (module == "numpy" or module.startswith("numpy."))


def check_numpy_containment(rule: Rule, ctx: ModuleContext) -> Iterator[Violation]:
    if ctx.in_package(*ALLOWED_PACKAGES):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _is_numpy(alias.name):
                    yield ctx.violation(
                        rule, node, f"numpy import '{alias.name}' outside repro.kernels"
                    )
        elif isinstance(node, ast.ImportFrom) and _is_numpy(node.module):
            yield ctx.violation(
                rule,
                node,
                f"numpy import 'from {node.module} import ...' outside repro.kernels",
            )


RULES = (
    Rule(
        id="RPR010",
        title="numpy import outside repro.kernels / repro.datagen",
        rationale="numpy is optional; vectorized compute must go through "
        "the kernel backend registry so the REPRO_KERNEL override, the "
        "pure-Python fallback and the parity suites keep covering every "
        "hot path, and stdlib-only hosts keep working.",
        fixit="route batch work through repro.kernels.get_backend() (or add "
        "a backend) instead of importing numpy directly",
        check=check_numpy_containment,
    ),
)
