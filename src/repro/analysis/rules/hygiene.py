"""RPR004 / RPR005 / RPR008 — general hygiene rules.

* RPR004: mutable default arguments (``def f(xs=[])``) — the default is
  evaluated once and shared across calls, which corrupts cached prepared
  indexes and stats accumulators in ways that only show up on reuse.
* RPR005: bare ``except:`` — swallows ``KeyboardInterrupt`` and
  ``SystemExit``, which turns Ctrl-C during a long probe into a hang and
  hides worker shutdown in the resilient executor.
* RPR008: exception handlers whose entire body is ``pass`` — a fault that
  is neither counted, logged, nor re-raised contradicts the stats-extras
  accounting contract from PR 2 (every fallback and retry is counted).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext, Rule, Violation

MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict", "deque"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, MUTABLE_LITERALS):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in MUTABLE_CALLS
    )


def check_mutable_defaults(rule: Rule, ctx: ModuleContext) -> Iterator[Violation]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                yield ctx.violation(
                    rule,
                    default,
                    "mutable default argument is shared across every call",
                )


def check_bare_except(rule: Rule, ctx: ModuleContext) -> Iterator[Violation]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield ctx.violation(
                rule,
                node,
                "bare 'except:' also catches KeyboardInterrupt/SystemExit",
            )


def check_swallowed_exception(rule: Rule, ctx: ModuleContext) -> Iterator[Violation]:
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.ExceptHandler)
            and len(node.body) == 1
            and isinstance(node.body[0], ast.Pass)
        ):
            yield ctx.violation(
                rule,
                node,
                "exception handler swallows the error without counting, "
                "logging or re-raising",
            )


RULES = (
    Rule(
        id="RPR004",
        title="mutable default argument",
        rationale="defaults are evaluated once at def time; a shared "
        "list/dict default leaks state between calls — fatal for anything "
        "cached or reused (prepared indexes, stats accumulators).",
        fixit="default to None and create the list/dict inside the function "
        "body",
        check=check_mutable_defaults,
    ),
    Rule(
        id="RPR005",
        title="bare 'except:' clause",
        rationale="bare except also traps KeyboardInterrupt and SystemExit, "
        "turning Ctrl-C during a long probe into a hang and hiding pool "
        "shutdown in the resilient executor.",
        fixit="catch the narrowest exception that can actually occur "
        "(at minimum 'except Exception:')",
        check=check_bare_except,
    ),
    Rule(
        id="RPR008",
        title="silently swallowed exception",
        rationale="PR 2's accounting contract: every fault is counted in "
        "stats.extras or re-raised; an 'except X: pass' handler hides a "
        "failure mode from both the tests and the operator.",
        fixit="count the event (stats/extras/metrics), log it, or re-raise; "
        "if truly benign, say why with '# repro: noqa RPR008 <reason>'",
        check=check_swallowed_exception,
    ),
)
