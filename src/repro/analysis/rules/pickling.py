"""RPR002 — pickle-safety at the process boundary.

Everything submitted to a pool in :mod:`repro.exec` (and its historical
home :mod:`repro.future`, kept in scope so the deprecation shims stay
honest) crosses a process boundary, and under the ``spawn`` start method
(the CI matrix runs both ``fork`` and ``spawn``) the callable is pickled
by reference.  Lambdas, nested closures and bound methods are not
picklable, so a submission that works under ``fork`` dies with a
``PicklingError`` under ``spawn`` — the exact regression PR 2's resilient
executor exists to avoid.  Only module-level functions (``_probe_chunk``,
``_init_worker``, ``_join_shard``) may cross.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext, Rule, Violation

#: Executor methods whose first argument is shipped to a worker process.
SUBMIT_METHODS = frozenset({"submit", "map"})

#: Keyword arguments that also ship a callable to workers.
CALLABLE_KWARGS = frozenset({"initializer"})

SCOPED_PACKAGES = ("repro.exec", "repro.future")


def _nested_function_names(tree: ast.Module) -> frozenset[str]:
    """Names of functions defined *inside* another function (closures)."""
    nested: set[str] = set()
    for outer in ast.walk(tree):
        if isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(outer):
                if inner is not outer and isinstance(
                    inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    nested.add(inner.name)
    return frozenset(nested)


def _describe_unpicklable(
    node: ast.expr, nested: frozenset[str]
) -> str | None:
    if isinstance(node, ast.Lambda):
        return "a lambda"
    if isinstance(node, ast.Attribute):
        # self.method / obj.method — a bound method pickles its instance,
        # which drags the whole join (tries included) across the boundary
        # or fails outright.
        return f"the bound method '...{node.attr}'"
    if isinstance(node, ast.Name) and node.id in nested:
        return f"the nested function '{node.id}'"
    return None


def check_pickle_safety(rule: Rule, ctx: ModuleContext) -> Iterator[Violation]:
    if not ctx.in_package(*SCOPED_PACKAGES):
        return
    nested = _nested_function_names(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in SUBMIT_METHODS
            and node.args
        ):
            why = _describe_unpicklable(node.args[0], nested)
            if why is not None:
                yield ctx.violation(
                    rule,
                    node.args[0],
                    f"{why} is submitted to an executor; it cannot be "
                    "pickled under the spawn start method",
                )
        for kw in node.keywords:
            if kw.arg in CALLABLE_KWARGS:
                why = _describe_unpicklable(kw.value, nested)
                if why is not None:
                    yield ctx.violation(
                        rule,
                        kw.value,
                        f"{why} is passed as '{kw.arg}='; worker "
                        "initializers must pickle under spawn",
                    )


RULES = (
    Rule(
        id="RPR002",
        title="unpicklable callable crosses the process boundary",
        rationale="repro.exec pools run under both fork and spawn; "
        "lambdas, closures and bound methods pickle only by reference and "
        "fail under spawn, turning a green fork-only run into a production "
        "crash.",
        fixit="submit a module-level function (like _probe_chunk / "
        "_init_worker) and pass state through its arguments",
        check=check_pickle_safety,
    ),
)
