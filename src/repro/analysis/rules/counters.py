"""RPR007 — JoinStats counter discipline.

The registry guarantees bit-for-bit JoinStats parity between ``join()``
and ``prepare()+probe_many()`` for all 8 algorithms, and the differential
harness asserts it.  That only holds if algorithms mutate the documented
counters — inventing an ad-hoc field on a stats object bypasses
``merge_chunk_stats``, the metrics snapshot and the golden files at once.
Free-form data belongs in ``stats.extras[...]`` (a subscript write, which
this rule deliberately allows).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext, Rule, Violation

#: The documented JoinStats surface (repro/core/base.py).
ALLOWED_FIELDS = frozenset(
    {
        "algorithm",
        "build_seconds",
        "probe_seconds",
        "pairs",
        "candidates",
        "verifications",
        "node_visits",
        "intersections",
        "index_nodes",
        "signature_bits",
        "extras",
    }
)

#: Variable names conventionally bound to a JoinStats instance.
STATS_NAMES = frozenset({"stats", "st", "cum", "snap"})


def _is_stats_name(name: str) -> bool:
    return name in STATS_NAMES or name.endswith("_stats")


def check_counter_discipline(rule: Rule, ctx: ModuleContext) -> Iterator[Violation]:
    for node in ast.walk(ctx.tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and _is_stats_name(target.value.id)
                and target.attr not in ALLOWED_FIELDS
            ):
                yield ctx.violation(
                    rule,
                    target,
                    f"write to undocumented stats field "
                    f"'{target.value.id}.{target.attr}'",
                )


RULES = (
    Rule(
        id="RPR007",
        title="write to an undocumented JoinStats counter",
        rationale="bit-for-bit counter parity across join() and "
        "prepare()+probe_many() only holds for the documented JoinStats "
        "fields; ad-hoc attributes bypass merge_chunk_stats, the metrics "
        "snapshot and the golden files.",
        fixit="use one of the documented counters (pairs, candidates, "
        "verifications, node_visits, intersections, index_nodes, ...) or "
        "put free-form data in stats.extras['key']",
        check=check_counter_discipline,
    ),
)
