"""RPR003 — plan immutability.

:class:`~repro.planner.plan.Plan`, :class:`Decision`,
:class:`CostEstimate`, :class:`Alternative` and :class:`Workload` are
frozen dataclasses: a plan handed to ``execute_plan`` must describe the
same join when it is explained, serialized, or re-executed.  The only
module allowed to sidestep freezing (``object.__setattr__`` inside
``__post_init__``) is :mod:`repro.planner.plan` itself.  This rule flags
both the escape hatch and plain attribute assignment on values that are
conventionally plans or decisions.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext, Rule, Violation

#: Variable names that conventionally hold planner value objects.
PLAN_NAMES = frozenset(
    {"plan", "query_plan", "decision", "workload", "cost_estimate", "alternative"}
)

ALLOWED_MODULE = "repro.planner.plan"


def _is_plan_name(name: str) -> bool:
    return name in PLAN_NAMES or name.endswith("_plan") or name.endswith("_decision")


def _assigned_attribute_targets(node: ast.AST) -> Iterator[ast.Attribute]:
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Attribute):
                yield target
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        if isinstance(node.target, ast.Attribute):
            yield node.target


def check_plan_immutability(rule: Rule, ctx: ModuleContext) -> Iterator[Violation]:
    if ctx.module == ALLOWED_MODULE:
        return
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "__setattr__"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "object"
        ):
            yield ctx.violation(
                rule,
                node,
                "object.__setattr__ outside repro.planner.plan defeats "
                "frozen-dataclass immutability",
            )
            continue
        for target in _assigned_attribute_targets(node):
            if isinstance(target.value, ast.Name) and _is_plan_name(
                target.value.id
            ):
                yield ctx.violation(
                    rule,
                    target,
                    f"attribute assignment on '{target.value.id}.{target.attr}' "
                    "— Plan/Decision/CostEstimate values are frozen",
                )


RULES = (
    Rule(
        id="RPR003",
        title="mutation of a frozen planner value object",
        rationale="a Plan must describe the same join when explained, "
        "serialized or re-executed; mutating one (or using the "
        "object.__setattr__ escape hatch outside planner/plan.py) breaks "
        "that contract silently.",
        fixit="build a new Plan/Decision with dataclasses.replace(...) or "
        "the constructor instead of mutating the existing one",
        check=check_plan_immutability,
    ),
)
