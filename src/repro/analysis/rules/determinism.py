"""RPR006 — determinism: randomness stays in datagen and testing.

The differential harness, the golden-file regression suite and the
fault-injection drills all depend on bit-for-bit reproducibility: the same
seed must produce the same relations, the same fault schedule, the same
JoinStats.  ``random`` / ``numpy.random`` usage is therefore confined to
:mod:`repro.datagen` (seeded generators) and :mod:`repro.testing`
(deterministic fault schedules).  A seeded, caller-controlled RNG
elsewhere may be waived with an explained ``# repro: noqa RPR006``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext, Rule, Violation

ALLOWED_PACKAGES = ("repro.datagen", "repro.testing")

RANDOM_MODULES = frozenset({"random", "secrets"})
NUMPY_ALIASES = frozenset({"numpy", "np"})


def check_determinism(rule: Rule, ctx: ModuleContext) -> Iterator[Violation]:
    if ctx.in_package(*ALLOWED_PACKAGES):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in RANDOM_MODULES or alias.name == "numpy.random":
                    yield ctx.violation(
                        rule,
                        node,
                        f"import of '{alias.name}' outside repro.datagen / "
                        "repro.testing",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and (
                node.module.split(".")[0] in RANDOM_MODULES
                or node.module.startswith("numpy.random")
            ):
                yield ctx.violation(
                    rule,
                    node,
                    f"import from '{node.module}' outside repro.datagen / "
                    "repro.testing",
                )
        elif (
            isinstance(node, ast.Attribute)
            and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in NUMPY_ALIASES
        ):
            yield ctx.violation(
                rule,
                node,
                "numpy.random usage outside repro.datagen / repro.testing",
            )


RULES = (
    Rule(
        id="RPR006",
        title="randomness outside repro.datagen / repro.testing",
        rationale="the differential, golden and fault-injection suites "
        "require bit-for-bit reproducibility; an unseeded RNG anywhere else "
        "makes failures unreproducible.",
        fixit="move the randomness into repro.datagen, or accept an rng/seed "
        "from the caller; a seeded deterministic use may be waived with "
        "'# repro: noqa RPR006 <reason>'",
        check=check_determinism,
    ),
)
