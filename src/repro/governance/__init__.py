"""Resource governance: deadlines, cooperative cancellation, byte budgets.

The admission-control substrate for the join stack (ISSUE 7): every
build and probe loop in the registry algorithms and every executor polls
an ambient :class:`GovernancePolicy` at bounded intervals, so a join can
be bounded end to end — whole-join deadline, cooperative cancel, and an
index-build memory budget that the resilient executor turns into
degradation rather than failure.

Usage::

    from repro.governance import Deadline, GovernancePolicy, govern

    policy = GovernancePolicy(deadline=Deadline.after(30.0))
    with govern(policy):
        result = set_containment_join("ptsj", r, s)

See ``docs/ROBUSTNESS.md`` for semantics and the degradation ladder.
"""

from repro.governance.deadline import CancelToken, Deadline
from repro.governance.memory import default_sampler, traced_build
from repro.governance.policy import (
    DEFAULT_POLL_INTERVAL,
    GovernancePolicy,
    Governor,
    current_policy,
    govern,
    governor,
    set_policy,
)

__all__ = [
    "DEFAULT_POLL_INTERVAL",
    "CancelToken",
    "Deadline",
    "GovernancePolicy",
    "Governor",
    "current_policy",
    "default_sampler",
    "govern",
    "governor",
    "set_policy",
    "traced_build",
]
