"""The governance policy and the poll loop that enforces it.

A :class:`GovernancePolicy` bundles the three bounds a join can carry —
a whole-join :class:`~repro.governance.deadline.Deadline`, a cooperative
:class:`~repro.governance.deadline.CancelToken`, and an index-build byte
budget — plus the poll cadence.  It is installed *ambiently*, exactly
like the tracer (:mod:`repro.obs.tracer`): ``with govern(policy): ...``
in the owning process, :func:`set_policy` in pool-worker initializers.
Algorithms never take a policy parameter; their loops ask
:func:`governor` for a cursor and tick it.

The hot-path contract is strict.  With no policy installed,
:func:`governor` returns ``None`` and a governed loop pays one
``is not None`` test per record — that is the whole governance-off cost,
and the bench gate holds it under 5%.  With a policy installed, a
:class:`Governor` counts ticks and *polls* every ``poll_interval`` of
them; only a poll touches the clock, the token or the memory sampler.
Breaches raise the typed errors from :mod:`repro.errors`, so "terminates
within one poll interval of the bound" is the enforced guarantee.

Lint rule ``RPR009`` (:mod:`repro.analysis.rules.governance`) closes the
loop statically: relation-sized loops in ``repro.core`` / ``repro.exec``
must tick a governor or carry an explained waiver.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Iterator, Optional

from repro.core.options import validate_max_memory_bytes
from repro.errors import (
    AlgorithmError,
    BudgetExceededError,
    CancelledError,
    DeadlineExceededError,
)
from repro.governance.deadline import CancelToken, Deadline
from repro.governance.memory import build_base, default_sampler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.base import JoinStats

__all__ = [
    "DEFAULT_POLL_INTERVAL",
    "GovernancePolicy",
    "Governor",
    "current_policy",
    "govern",
    "governor",
    "set_policy",
]

#: Records between governance polls.  Coarse enough that the clock read /
#: token check / memory sample vanish against per-record join work, fine
#: enough that a breached bound stops the loop within a few milliseconds.
DEFAULT_POLL_INTERVAL = 1024


@dataclass(frozen=True)
class GovernancePolicy:
    """Immutable bundle of join bounds, carried ambiently per thread.

    Attributes:
        deadline: Whole-join absolute deadline, or ``None``.
        cancel: Cooperative cancel token, or ``None``.
        memory_budget_bytes: Index-build byte budget, or ``None``.
        poll_interval: Ticks between polls (records/nodes per check).
        memory_sampler: Optional ``() -> int`` byte reading (test seam);
            ``None`` uses the tracemalloc default, armed by
            :func:`repro.governance.memory.traced_build`.
    """

    deadline: Deadline | None = None
    cancel: CancelToken | None = None
    memory_budget_bytes: int | None = None
    poll_interval: int = DEFAULT_POLL_INTERVAL
    memory_sampler: Callable[[], int] | None = None

    def __post_init__(self) -> None:
        validate_max_memory_bytes(self.memory_budget_bytes)
        if self.poll_interval <= 0:
            raise AlgorithmError(
                f"poll_interval must be positive, got {self.poll_interval}"
            )

    @property
    def active(self) -> bool:
        """Whether any bound is actually set."""
        return (
            self.deadline is not None
            or self.cancel is not None
            or self.memory_budget_bytes is not None
        )

    def worker_policy(self) -> "GovernancePolicy":
        """The copy shipped to pool workers.

        The deadline and token travel as-is (both pickle; the token's
        flag file makes parent-side cancels visible).  A custom sampler
        does not — it may close over parent state — so workers fall back
        to the tracemalloc default.
        """
        if self.memory_sampler is None:
            return self
        return replace(self, memory_sampler=None)


# Thread-local ambient policy, mirroring the tracer's storage.  Pool
# workers are processes whose initializers install their own copy in the
# worker's main thread; the join server's request threads each install a
# per-request policy (deadline/budget from the request) without
# clobbering the policies of concurrently-running requests.
_STATE = threading.local()


def current_policy() -> GovernancePolicy | None:
    """The ambient policy for this thread, or ``None``."""
    policy: Optional[GovernancePolicy] = getattr(_STATE, "policy", None)
    return policy


def set_policy(policy: GovernancePolicy | None) -> GovernancePolicy | None:
    """Install ``policy`` ambiently for this thread; returns the previous one."""
    previous = current_policy()
    _STATE.policy = policy
    return previous


@contextmanager
def govern(policy: GovernancePolicy | None) -> Iterator[GovernancePolicy | None]:
    """Scope ``policy`` as the ambient policy; restores the previous one."""
    previous = set_policy(policy)
    try:
        yield policy
    finally:
        set_policy(previous)


class Governor:
    """A polling cursor for one governed loop.

    Hoisted once per loop (``gov = governor(phase, stats)``), ticked once
    per record/node.  ``tick`` is a decrement and a compare until the
    countdown hits zero; ``poll`` then re-arms it, counts itself in
    ``stats.extras["deadline_polls"]`` and checks each configured bound.

    The *first* tick always polls: a pre-expired deadline or an
    already-tripped token must stop the loop on record one, even when
    the whole relation is smaller than ``poll_interval`` (otherwise a
    small join would never observe its bounds at all).
    """

    __slots__ = ("policy", "phase", "stats", "ticks", "_countdown", "_sampler", "_base_bytes")

    def __init__(self, policy: GovernancePolicy, phase: str, stats: "JoinStats | None") -> None:
        self.policy = policy
        self.phase = phase
        self.stats = stats
        self.ticks = 0
        self._countdown = 1
        if policy.memory_budget_bytes is not None and phase == "build":
            self._sampler = policy.memory_sampler or default_sampler
            # Inside a traced_build scope every governor shares the
            # scope's base reading — the loop governor and the build-
            # boundary governor must measure the same delta.
            base = build_base()
            self._base_bytes = base if base is not None else self._sampler()
        else:
            self._sampler = None
            self._base_bytes = 0

    def tick(self) -> None:
        """Count one record/node; polls every ``poll_interval`` ticks."""
        self.ticks += 1
        self._countdown -= 1
        if self._countdown <= 0:
            self.poll()

    def poll(self) -> None:
        """Check every configured bound now; raises the typed error on breach."""
        self._countdown = self.policy.poll_interval
        stats = self.stats
        if stats is not None:
            stats.extras["deadline_polls"] = stats.extras.get("deadline_polls", 0) + 1
        cancel = self.policy.cancel
        if cancel is not None and cancel.cancelled():
            reason = cancel.reason or "cancel token tripped"
            raise CancelledError(f"join cancelled during {self.phase}: {reason}")
        deadline = self.policy.deadline
        if deadline is not None:
            overdue = -deadline.remaining()
            if overdue >= 0.0:
                raise DeadlineExceededError(
                    f"deadline of {deadline.seconds:g}s exceeded during "
                    f"{self.phase} ({overdue:.3f}s over)"
                )
        if self._sampler is not None:
            used = self._sampler() - self._base_bytes
            budget = self.policy.memory_budget_bytes
            assert budget is not None  # _sampler is only armed with a budget
            if used > budget:
                raise BudgetExceededError(
                    f"index build used {used} bytes of a {budget}-byte budget "
                    f"after ~{self.ticks} records",
                    budget_bytes=budget,
                    used_bytes=used,
                    records_indexed=self.ticks,
                )


def governor(phase: str, stats: "JoinStats | None" = None) -> Governor | None:
    """A :class:`Governor` for the ambient policy, or ``None`` if ungoverned.

    The ``None`` return is the governance-off fast path: loops hoist the
    result and guard each tick with ``if gov is not None``.
    """
    policy = current_policy()
    if policy is None or not policy.active:
        return None
    return Governor(policy, phase, stats)
