"""Byte-budget sampling for index builds, backed by ``tracemalloc``.

The memory governor needs a cheap-enough answer to "how many bytes has
this build allocated so far?" at every poll point.  ``tracemalloc`` gives
exactly that — current traced size, per process, no polling thread — at
the cost of slower allocations while tracing.  That cost is acceptable
because tracing is armed *only* for builds that actually carry a
``memory_budget_bytes``; an ungoverned build never starts it.

:func:`traced_build` owns the lifecycle: it starts tracing only if the
policy budgets memory with the default sampler and nothing else is
already tracing, and it stops only what it started, so user-level
``tracemalloc`` sessions (or an outer governed build) are never clobbered.

It also records the *build base* — one byte reading taken at scope entry
— which every governor created inside the scope shares
(:func:`build_base`).  A single base keeps the loop governor and the
build-boundary governor measuring the same delta, and keeps scripted
test samplers deterministic: exactly one base reading per build, however
many governors the build creates.
"""

from __future__ import annotations

import tracemalloc
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.governance.policy import GovernancePolicy

__all__ = ["build_base", "default_sampler", "traced_build"]


def default_sampler() -> int:
    """Bytes currently attributed to this process by ``tracemalloc``.

    Returns 0 when tracing is off — a budget checked against an unarmed
    sampler never trips, which is the safe direction.
    """
    return tracemalloc.get_traced_memory()[0]


# The byte reading taken at traced_build entry, shared by every governor
# the scope creates.  Plain module state, like the ambient policy:
# workers are processes, not threads.
_BUILD_BASE: Optional[int] = None


def build_base() -> int | None:
    """The ambient build-scope base reading, or ``None`` outside a scope."""
    return _BUILD_BASE


@contextmanager
def traced_build(policy: "GovernancePolicy | None") -> Iterator[None]:
    """Arm ``tracemalloc`` around an index build when the policy needs it."""
    global _BUILD_BASE
    if policy is None or policy.memory_budget_bytes is None:
        yield
        return
    sampler = policy.memory_sampler  # a custom sampler brings its own source
    started = False
    if sampler is None and not tracemalloc.is_tracing():
        tracemalloc.start()
        started = True
    previous = _BUILD_BASE
    _BUILD_BASE = (sampler or default_sampler)()
    try:
        yield
    finally:
        _BUILD_BASE = previous
        if started:
            tracemalloc.stop()
