"""Whole-join deadlines and cooperative cancellation primitives.

A service cannot admit a request it can't bound.  This module supplies
the two bounds a caller can put on a join as a whole:

* :class:`Deadline` — an *absolute* instant on the monotonic clock
  (:mod:`repro.obs.clock`), constructed from a relative budget via
  :meth:`Deadline.after`.  Absolute, because a deadline that is re-derived
  per phase silently stretches; every executor, worker and retry round
  compares against the same instant.  ``remaining()``/``expired()`` are a
  subtraction and a comparison — cheap enough for poll loops.
* :class:`CancelToken` — a cooperative flag the owner trips with
  :meth:`~CancelToken.cancel` and governed loops observe at poll points.
  Tokens are picklable and can be backed by a flag *file* so a cancel
  issued in the parent is seen by pool workers under both ``fork`` and
  ``spawn`` (the same cross-process idiom as
  :class:`repro.testing.faults.FaultTrigger`).

Neither primitive interrupts anything by itself: enforcement happens in
:mod:`repro.governance.policy`, which raises the typed errors from
:mod:`repro.errors` at the next poll.

Both carry an optional ``clock`` seam (any picklable ``() -> float``
monotonic reading) so the fault harness can skew time deterministically;
production code leaves it ``None`` and reads the one clock.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from repro.core.options import validate_deadline_seconds
from repro.errors import AlgorithmError
from repro.obs.clock import monotonic

__all__ = ["CancelToken", "Deadline"]


@dataclass(frozen=True)
class Deadline:
    """An absolute whole-join time bound on the monotonic clock.

    Attributes:
        at: Absolute monotonic instant after which the join is overdue.
        seconds: The original relative budget (kept for error messages).
        clock: Optional monotonic-clock override (test seam, picklable).
    """

    at: float
    seconds: float
    clock: Callable[[], float] | None = None

    @classmethod
    def after(cls, seconds: float, clock: Callable[[], float] | None = None) -> "Deadline":
        """A deadline ``seconds`` from now; rejects non-positive budgets."""
        if seconds is None:
            raise AlgorithmError("Deadline.after requires a positive budget, got None")
        validate_deadline_seconds(seconds)
        now = (clock or monotonic)()
        return cls(at=now + seconds, seconds=float(seconds), clock=clock)

    def remaining(self) -> float:
        """Seconds until the deadline; negative once it has passed."""
        return self.at - (self.clock or monotonic)()

    def expired(self) -> bool:
        """Whether the deadline has passed."""
        return self.remaining() <= 0.0


class CancelToken:
    """Cooperative, picklable cancellation flag.

    Three ways the token can read as cancelled, checked in order of cost:

    1. The in-process flag set by :meth:`cancel`.
    2. An auto-cancel instant (``cancel_at``, absolute monotonic) — how
       the CLI's ``--cancel-after`` trips a join from within.
    3. A flag file under ``flag_dir`` — its *existence* is the signal, so
       a cancel issued in the parent process is observed by pool workers
       under both start methods without shared memory.

    A token without a ``flag_dir`` still works in-process and still
    pickles; the worker copy simply cannot observe a later parent-side
    :meth:`cancel` (the auto-cancel instant still travels).
    """

    def __init__(
        self,
        flag_dir: str | os.PathLike[str] | None = None,
        name: str = "cancel",
        cancel_at: float | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self._flag = None if flag_dir is None else os.path.join(str(flag_dir), f"{name}.cancelled")
        self._cancelled = False
        self.reason = ""
        self.cancel_at = cancel_at
        self._clock = clock

    def cancel(self, reason: str = "cancel requested") -> None:
        """Trip the token; idempotent, keeps the first reason."""
        if not self._cancelled:
            self._cancelled = True
            self.reason = reason
        if self._flag is not None and not os.path.exists(self._flag):
            with open(self._flag, "w", encoding="utf-8") as fh:
                fh.write(self.reason)

    def cancelled(self) -> bool:
        """Whether the token has been tripped (here or in another process)."""
        if self._cancelled:
            return True
        if self.cancel_at is not None and (self._clock or monotonic)() >= self.cancel_at:
            self._cancelled = True
            self.reason = "cancel_after budget elapsed"
            return True
        if self._flag is not None and os.path.exists(self._flag):
            self._cancelled = True
            self.reason = "cancelled by peer process"
            return True
        return False
