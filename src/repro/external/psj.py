"""PSJ-style element-partitioned set-containment join.

The paper positions PSJ [11] and APSJ [12] as the advanced *disk-based*
algorithms of the signature family, noting they "share the same in-memory
processing strategy with main-memory algorithm SHJ" (Sec. I).  This module
implements the family's core idea — the pick-based partitioning that
bounds each in-memory join to a fraction of the data — so the repository's
disk-based story covers more than the naive quadratic nested loop of
Sec. III-E4:

* every S-tuple is assigned to ONE partition by hashing its *pick* element
  (its smallest element; empty sets go to a dedicated partition);
* every R-tuple is *replicated* to the partition of each distinct pick
  hash among its elements — if ``r.set ⊇ s.set`` then ``min(s.set)`` is in
  ``r.set``, so the pair is guaranteed to meet in s's partition;
* each partition pair is joined in memory with a pluggable algorithm
  (SHJ by default, matching the lineage; PTSJ works too and is what the
  paper suggests smarter partitioning should be combined with).

Unlike the Sec. III-E4 nested loop (quadratic partition loads), PSJ joins
each S-partition exactly once against its replicated R-partition; the cost
moved into R's replication factor (average distinct pick-hashes per
R-tuple, reported in the stats).
"""

from __future__ import annotations

from repro.core.base import JoinResult, JoinStats
from repro.core.registry import make_algorithm
from repro.errors import ExternalMemoryError
from repro.relations.relation import Relation, SetRecord

__all__ = ["PickPartitionedSetJoin", "psj_join"]


def _pick_hash(element: int, partitions: int) -> int:
    """Partition id for a pick element (splitmix64 finalizer + modulo).

    The full three-step finalizer matters: a single multiply-xor-shift
    leaves the low bits of consecutive inputs algebraically correlated,
    which collapses power-of-two partition counts onto one bucket.
    """
    mask = (1 << 64) - 1
    z = (element + 0x9E3779B97F4A7C15) & mask
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & mask
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & mask
    z ^= z >> 31
    return z % partitions


class PickPartitionedSetJoin:
    """Pick-partitioned set-containment join (the PSJ/APSJ family idea).

    Args:
        partitions: Number of hash partitions (>= 1).
        algorithm: In-memory algorithm per partition pair (default SHJ,
            the family's historical core; any registry name works).
        pick: Pick-element policy.  ``"min"`` is PSJ's data-independent
            pick (smallest element).  ``"rarest"`` is the APSJ-flavoured
            adaptive pick: each S-tuple is filed under its globally
            *least frequent* element, which spreads skewed data across
            partitions more evenly — popular elements (Zipf heads) stop
            funnelling most of S into a few partitions.  Correctness is
            unchanged: whichever element of ``s.set`` is picked, every
            containing ``r`` holds it and meets ``s`` in its partition.
        **algorithm_kwargs: Forwarded to the per-partition factory.

    Raises:
        ExternalMemoryError: If ``partitions`` is not positive or ``pick``
            is unknown.
    """

    def __init__(
        self,
        partitions: int = 8,
        algorithm: str = "shj",
        pick: str = "min",
        **algorithm_kwargs,
    ) -> None:
        if partitions <= 0:
            raise ExternalMemoryError(f"partitions must be positive, got {partitions}")
        if pick not in ("min", "rarest"):
            raise ExternalMemoryError(f"pick must be 'min' or 'rarest', got {pick!r}")
        self.partitions = partitions
        self.algorithm = algorithm
        self.pick = pick
        self.algorithm_kwargs = algorithm_kwargs

    def _pick_element(self, elements: frozenset[int], frequency: dict[int, int]) -> int:
        if self.pick == "min":
            return min(elements)
        # Rarest element; ties broken by value for determinism.
        return min(elements, key=lambda e: (frequency.get(e, 0), e))

    def join(self, r: Relation, s: Relation) -> JoinResult:
        """Compute ``R ⋈⊇ S`` via pick partitioning.

        ``extras`` reports the replication factor (average partitions an
        R-tuple lands in) and the S-partition skew (largest partition over
        the ideal |S|/k) — the quantities PSJ/APSJ trade against each
        other.
        """
        stats = JoinStats(algorithm=f"psj-{self.algorithm}")
        k = self.partitions

        frequency: dict[int, int] = {}
        if self.pick == "rarest":
            for rec in s:
                for element in rec.elements:
                    frequency[element] = frequency.get(element, 0) + 1

        s_parts: list[list[SetRecord]] = [[] for _ in range(k)]
        empty_s: list[SetRecord] = []
        for rec in s:
            if rec.elements:
                s_parts[_pick_hash(self._pick_element(rec.elements, frequency), k)].append(rec)
            else:
                empty_s.append(rec)

        r_parts: list[list[SetRecord]] = [[] for _ in range(k)]
        replicas = 0
        for rec in r:
            targets = {_pick_hash(e, k) for e in rec.elements}
            replicas += len(targets)
            for part in targets:
                r_parts[part].append(rec)
        stats.extras["partitions"] = k
        stats.extras["replication_factor"] = replicas / len(r) if len(r) else 0.0
        non_empty_s = len(s) - len(empty_s)
        if non_empty_s:
            ideal = non_empty_s / k
            stats.extras["s_partition_skew"] = max(len(p) for p in s_parts) / ideal

        pairs: list[tuple[int, int]] = []
        for part in range(k):
            if not s_parts[part] or not r_parts[part]:
                continue
            algo = make_algorithm(self.algorithm, **self.algorithm_kwargs)
            part_result = algo.join(
                Relation(r_parts[part]), Relation(s_parts[part])
            )
            pairs.extend(part_result.pairs)
            stats.build_seconds += part_result.stats.build_seconds
            stats.probe_seconds += part_result.stats.probe_seconds
            stats.candidates += part_result.stats.candidates
            stats.verifications += part_result.stats.verifications
            stats.node_visits += part_result.stats.node_visits
            stats.signature_bits = max(stats.signature_bits, part_result.stats.signature_bits)

        # Empty S-sets are contained in every R-tuple.
        if empty_s:
            for s_rec in empty_s:
                for r_rec in r:
                    pairs.append((r_rec.rid, s_rec.rid))
        return JoinResult(pairs, stats)


def psj_join(
    r: Relation,
    s: Relation,
    partitions: int = 8,
    algorithm: str = "shj",
    **algorithm_kwargs,
) -> JoinResult:
    """One-shot helper around :class:`PickPartitionedSetJoin`.

    Example:
        >>> from repro.relations import Relation
        >>> r = Relation.from_sets([{1, 2, 3}, {2, 4}])
        >>> s = Relation.from_sets([{2}, {1, 3}])
        >>> sorted(psj_join(r, s, partitions=3).pairs)
        [(0, 0), (0, 1), (1, 0)]
    """
    return PickPartitionedSetJoin(
        partitions=partitions, algorithm=algorithm, **algorithm_kwargs
    ).join(r, s)
