"""Deprecated shim: :class:`DiskPartitionedJoin` moved to :mod:`repro.exec.disk`.

The executors were unified behind the :class:`repro.exec.Executor`
protocol (see ``docs/EXECUTORS.md``); this module re-exports the public
surface so pre-refactor imports keep working.  New code should import
from :mod:`repro.exec`.
"""

from __future__ import annotations

import warnings

from repro.exec.disk import (  # noqa: F401 - re-exported for compatibility
    DiskPartitionedJoin,
    disk_partitioned_join,
)
from repro.exec.merge import merge_stats as _merge_stats

__all__ = ["DiskPartitionedJoin", "disk_partitioned_join"]

warnings.warn(
    "repro.external.disk_join is deprecated; import from repro.exec instead",
    DeprecationWarning,
    stacklevel=2,
)


def _accumulate(total, part) -> None:
    """Pre-refactor private helper, kept callable for old callers."""
    _merge_stats(total, part)
