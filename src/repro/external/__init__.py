"""External-memory join strategies.

* :class:`~repro.exec.disk.DiskPartitionedJoin` — the paper's
  Sec. III-E4 partitioned nested loop over on-disk partitions (now part
  of :mod:`repro.exec`; re-exported here — and importable via the
  deprecated ``repro.external.disk_join`` module path — for backwards
  compatibility).
* :mod:`repro.external.psj` — the PSJ/APSJ family's pick partitioning
  (the "smarter partitioning techniques" Sec. III-E4 points to).
"""

from repro.exec.disk import DiskPartitionedJoin, disk_partitioned_join
from repro.external.partition import SpilledRelation, partition_relation
from repro.external.psj import PickPartitionedSetJoin, psj_join

__all__ = [
    "DiskPartitionedJoin",
    "disk_partitioned_join",
    "SpilledRelation",
    "partition_relation",
    "PickPartitionedSetJoin",
    "psj_join",
]
