"""Relation partitioning for the disk-based join (paper Sec. III-E4).

The paper's external-memory strategy is a partitioned nested-loop: split
both relations into partitions small enough that one pair fits in memory,
then join every pair of partitions.  This module provides the splitting
and the on-disk spill format (the ``rid:``-prefixed text format of
:mod:`repro.relations.io`, which preserves tuple ids across partitions).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.errors import ExternalMemoryError
from repro.relations.io import read_relation_with_ids, write_relation_with_ids
from repro.relations.relation import Relation

__all__ = ["partition_relation", "SpilledRelation"]


def partition_relation(relation: Relation, max_tuples: int) -> list[Relation]:
    """Split ``relation`` into consecutive chunks of at most ``max_tuples``.

    Tuple ids are preserved, so the union of all partition joins equals the
    full join.

    Raises:
        ExternalMemoryError: If ``max_tuples`` is not positive.
    """
    if max_tuples <= 0:
        raise ExternalMemoryError(f"max_tuples must be positive, got {max_tuples}")
    records = relation.records
    return [
        Relation(records[i : i + max_tuples], name=f"{relation.name}[{i // max_tuples}]")
        for i in range(0, len(records), max_tuples)
    ] or [Relation((), name=relation.name)]


class SpilledRelation:
    """A relation spilled to disk as one file per partition.

    Models the external-memory setting: partitions are written once, then
    re-read each time a partition pair is loaded (quadratic I/O in the
    partition count, as the paper notes for the nested-loop strategy).

    Args:
        relation: The in-memory relation to spill.
        directory: Where partition files are written (created if missing).
        max_tuples: Partition capacity.

    Raises:
        ExternalMemoryError: On invalid capacity.
    """

    def __init__(self, relation: Relation, directory: str | Path, max_tuples: int) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.paths: list[Path] = []
        self.max_tuples = max_tuples
        stem = relation.name or "relation"
        for i, part in enumerate(partition_relation(relation, max_tuples)):
            path = self.directory / f"{stem}.part{i:04d}.txt"
            write_relation_with_ids(part, path)
            self.paths.append(path)
        self.reads = 0

    def __len__(self) -> int:
        """Number of partitions on disk."""
        return len(self.paths)

    def load(self, index: int) -> Relation:
        """Read one partition back into memory (counted in :attr:`reads`).

        Raises:
            ExternalMemoryError: If ``index`` is out of range.
        """
        if not 0 <= index < len(self.paths):
            raise ExternalMemoryError(
                f"partition {index} out of range [0, {len(self.paths)})"
            )
        self.reads += 1
        return read_relation_with_ids(self.paths[index])

    def iter_partitions(self) -> Iterator[Relation]:
        """Load partitions one at a time, in order."""
        for i in range(len(self.paths)):
            yield self.load(i)

    def cleanup(self) -> None:
        """Delete the partition files (idempotent)."""
        for path in self.paths:
            path.unlink(missing_ok=True)
