"""Chaos drills: governance bounds stop every executor, cleanly.

Each drill injects a deterministic governance fault — a pre-expired
deadline (via :class:`~repro.testing.faults.SkewedClock`), a mid-build
cancel (:class:`~repro.testing.faults.CountdownCancelToken`), or a
memory-budget trip (:class:`~repro.testing.faults.SteppingSampler`) —
and asserts the three invariants the subsystem promises:

1. the join terminates with the *typed* governance error (or, for the
   resilient executor's budget path, a recorded degradation);
2. nothing leaks: no orphaned worker processes, no leftover spill files
   in a caller-owned workdir;
3. the tracer's span stack stays balanced through the abort (checked
   the same way ``REPRO_SANITIZE=1`` does in CI).

No drill sleeps and none asserts on wall-clock timings: clocks are
skewed, tokens count checks, samplers read from a script.

Set ``REPRO_START_METHOD=fork|spawn`` to pin the pool start method (CI
runs the drills once per method).
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.errors import (
    BudgetExceededError,
    CancelledError,
    DeadlineExceededError,
)
from repro.governance import CancelToken, Deadline, GovernancePolicy, govern
from repro.obs import Tracer, use
from repro.testing.faults import CountdownCancelToken, SkewedClock, SteppingSampler
from tests.conftest import oracle_pairs, random_relation

#: Optional start-method override so CI can drill both fork and spawn.
START_METHOD = os.environ.get("REPRO_START_METHOD") or None


def make_executor(name: str, workers: int = 2, **extra):
    """One governed executor per registry name, pool sizes kept tiny."""
    if name == "inline":
        from repro.exec.inline import InlineJoin

        return InlineJoin(algorithm="ptsj", **extra)
    if name == "parallel":
        from repro.exec.parallel import ParallelJoin

        return ParallelJoin(algorithm="ptsj", workers=workers, chunks=2,
                            start_method=START_METHOD, **extra)
    if name == "sharded":
        from repro.exec.sharded import ShardedJoin

        return ShardedJoin(algorithm="ptsj", workers=workers, shards=2,
                           start_method=START_METHOD, **extra)
    if name == "resilient":
        from repro.exec.resilient import ResilientParallelJoin

        return ResilientParallelJoin(algorithm="ptsj", workers=workers,
                                     chunks=2, start_method=START_METHOD,
                                     **extra)
    if name == "disk":
        from repro.exec.disk import DiskPartitionedJoin

        return DiskPartitionedJoin(algorithm="ptsj", max_tuples=16, **extra)
    raise AssertionError(name)


ALL_EXECUTORS = ["inline", "parallel", "sharded", "resilient", "disk"]
POOLED_EXECUTORS = ["parallel", "sharded", "resilient"]


def expired_deadline(seconds: float = 1.0) -> Deadline:
    """Already overdue, without sleeping: real ``at``, skewed evaluation."""
    real = Deadline.after(seconds)
    return Deadline(at=real.at, seconds=real.seconds,
                    clock=SkewedClock(seconds + 5.0))


def assert_no_orphans() -> None:
    """No worker process survives a governed abort.

    Pool shutdown reaps asynchronously, so poll briefly instead of
    asserting on the instant — the bound is "they die", not "they die
    before the next bytecode".
    """
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert not multiprocessing.active_children()


@pytest.fixture
def rs_pair():
    r = random_relation(80, 6, 40, seed=701)
    s = random_relation(80, 4, 40, seed=702)
    return r, s


@pytest.fixture
def sanitized_tracer(monkeypatch):
    """A tracer whose teardown fails the test on an unbalanced span stack."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    tracer = Tracer("drill")
    with use(tracer):
        yield tracer
    tracer.finish()  # raises SanitizerError if any span leaked


# ----------------------------------------------------------------------
# Deadline drills
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_EXECUTORS)
def test_expired_deadline_stops_every_executor(name, rs_pair, sanitized_tracer):
    r, s = rs_pair
    policy = GovernancePolicy(deadline=expired_deadline(), poll_interval=1)
    with govern(policy):
        with pytest.raises(DeadlineExceededError, match="deadline of 1s exceeded"):
            make_executor(name).join(r, s)
    assert_no_orphans()


@pytest.mark.parametrize("name", POOLED_EXECUTORS)
def test_deadline_travels_into_worker_policies(name, rs_pair):
    # A *generous* deadline is shipped but never trips: the governed run
    # must complete and match the ungoverned ground truth, proving the
    # policy plumbing is inert until a bound actually breaches.
    r, s = rs_pair
    policy = GovernancePolicy(deadline=Deadline.after(600.0), poll_interval=4)
    with govern(policy):
        result = make_executor(name).join(r, s)
    assert result.pair_set() == oracle_pairs(r, s)
    assert result.stats.extras.get("deadline_polls", 0) >= 1
    assert_no_orphans()


# ----------------------------------------------------------------------
# Cancellation drills
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_EXECUTORS)
def test_mid_build_cancel_stops_every_executor(name, rs_pair, sanitized_tracer):
    r, s = rs_pair
    # Trips on the third poll: the build loop gets underway, then the
    # "user hits Ctrl-C" moment lands mid-flight, deterministically.
    token = CountdownCancelToken(after_checks=3)
    with govern(GovernancePolicy(cancel=token, poll_interval=4)):
        with pytest.raises(CancelledError, match="countdown tripped"):
            make_executor(name).join(r, s)
    assert_no_orphans()


@pytest.mark.parametrize("name", POOLED_EXECUTORS)
def test_flag_file_cancel_is_observed_across_processes(name, rs_pair, tmp_path,
                                                       sanitized_tracer):
    # The cancel is issued through a *peer* token sharing only the flag
    # directory — exactly how a parent-side cancel reaches pool workers
    # under fork and spawn alike.
    r, s = rs_pair
    token = CancelToken(flag_dir=tmp_path, name="drill")
    CancelToken(flag_dir=tmp_path, name="drill").cancel("issued by peer")
    with govern(GovernancePolicy(cancel=token, poll_interval=1)):
        with pytest.raises(CancelledError, match="cancelled by peer process"):
            make_executor(name).join(r, s)
    assert_no_orphans()


def test_cancel_after_instant_travels_by_value(rs_pair):
    # --cancel-after is an absolute monotonic instant on the token; a
    # pre-elapsed instant cancels the join wherever it is checked.
    r, s = rs_pair
    token = CancelToken(cancel_at=1.0, clock=SkewedClock(1e9))
    with govern(GovernancePolicy(cancel=token, poll_interval=1)):
        with pytest.raises(CancelledError, match="cancel_after budget elapsed"):
            make_executor("parallel").join(r, s)
    assert_no_orphans()


# ----------------------------------------------------------------------
# Memory-budget drills
# ----------------------------------------------------------------------
def budget_policy(poll_interval: int = 8) -> GovernancePolicy:
    # Base 1000, one healthy sample, then a reading 1696 bytes over.
    return GovernancePolicy(memory_budget_bytes=1024, poll_interval=poll_interval,
                            memory_sampler=SteppingSampler([1000, 1600, 2720]))


@pytest.mark.parametrize("name", ["inline", "parallel", "sharded", "disk"])
def test_budget_trip_raises_typed_error(name, rs_pair, sanitized_tracer):
    r, s = rs_pair
    with govern(budget_policy()):
        with pytest.raises(BudgetExceededError) as excinfo:
            make_executor(name).join(r, s)
    breach = excinfo.value
    assert breach.budget_bytes == 1024
    assert breach.used_bytes == 1720
    assert breach.records_indexed > 0
    assert_no_orphans()


@pytest.mark.parametrize("workers,target", [(2, "sharded"), (1, "disk")])
def test_resilient_degrades_instead_of_failing(workers, target, rs_pair,
                                               sanitized_tracer):
    r, s = rs_pair
    with govern(budget_policy()):
        result = make_executor("resilient", workers=workers).join(r, s)
    assert result.pair_set() == oracle_pairs(r, s)
    assert result.stats.extras["degraded_to"] == target
    assert result.stats.extras["budget_breach_bytes"] == 1720
    assert_no_orphans()


def test_degraded_run_keeps_honoring_cancel(rs_pair):
    # Degradation strips the *budget* (re-planning exists to finish the
    # join) but the cancel token must keep applying to the fallback run.
    r, s = rs_pair
    token = CountdownCancelToken(after_checks=40)
    policy = GovernancePolicy(cancel=token, poll_interval=2,
                              memory_budget_bytes=1024,
                              memory_sampler=SteppingSampler([1000, 2720]))
    with govern(policy):
        with pytest.raises(CancelledError):
            make_executor("resilient", workers=1).join(r, s)
    assert_no_orphans()


# ----------------------------------------------------------------------
# Spill hygiene
# ----------------------------------------------------------------------
def test_no_spill_files_leak_from_an_aborted_disk_join(rs_pair, tmp_path,
                                                       sanitized_tracer):
    r, s = rs_pair
    workdir = tmp_path / "spill"
    workdir.mkdir()
    token = CountdownCancelToken(after_checks=2)
    with govern(GovernancePolicy(cancel=token, poll_interval=1)):
        with pytest.raises(CancelledError):
            make_executor("disk", workdir=workdir).join(r, s)
    leftovers = [p for p in workdir.rglob("*") if p.is_file()]
    assert leftovers == []


def test_disk_join_cleans_up_after_a_deadline_abort(rs_pair, tmp_path):
    r, s = rs_pair
    workdir = tmp_path / "spill"
    workdir.mkdir()
    policy = GovernancePolicy(deadline=expired_deadline(), poll_interval=1)
    with govern(policy):
        with pytest.raises(DeadlineExceededError):
            make_executor("disk", workdir=workdir).join(r, s)
    assert [p for p in workdir.rglob("*") if p.is_file()] == []


# ----------------------------------------------------------------------
# Ungoverned runs are untouched
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_EXECUTORS)
def test_ungoverned_runs_carry_no_governance_extras(name, rs_pair):
    r, s = rs_pair
    result = make_executor(name).join(r, s)
    assert result.pair_set() == oracle_pairs(r, s)
    assert "deadline_polls" not in result.stats.extras
    assert "cancelled_chunks" not in result.stats.extras
    assert "degraded_to" not in result.stats.extras
    assert_no_orphans()
