"""Unit tests for the swappable kernel backend layer (docs/KERNELS.md).

Covers the registry (registration, selection order, the ``REPRO_KERNEL``
override, error paths), the ABI parity contract between the ``python``
and ``numpy`` backends, pickling-by-name, the relation-wide signature
pack on prepared indexes, and the posting-list-ordered ``refine_many``.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro import kernels
from repro.core.registry import make_algorithm
from repro.errors import ReproError
from repro.index.inverted import InvertedIndex, intersect_sorted
from repro.kernels import (
    KernelBackend,
    KernelUnavailableError,
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
    set_default_backend,
    use_backend,
)
from repro.kernels.python_backend import (
    GALLOP_RATIO,
    PythonKernel,
    gallop_intersect,
    merge_intersect,
)
from repro.relations.relation import Relation, SetRecord
from repro.signatures import bitmap

BACKENDS = available_backends()
HAS_NUMPY = "numpy" in BACKENDS


def random_signatures(count: int, bits: int, seed: int) -> list[int]:
    rng = random.Random(seed)
    sigs = [rng.getrandbits(bits) for _ in range(count)]
    # Edge rows the filters must get right: all-zero, all-one, one bit
    # at each word boundary of the packed uint64 layout.
    sigs += [0, (1 << bits) - 1]
    for shift in (0, 1, 63, 64, 65, bits - 1):
        if 0 <= shift < bits:
            sigs.append(1 << shift)
    return sigs[: count + 8]


# ----------------------------------------------------------------------
# Registry behaviour
# ----------------------------------------------------------------------
def test_python_backend_always_available():
    assert "python" in BACKENDS
    assert isinstance(get_backend("python"), PythonKernel)


def test_registered_superset_of_available():
    assert set(BACKENDS) <= set(registered_backends())
    # AUTO_ORDER names come first in both listings.
    assert registered_backends()[: len(kernels.AUTO_ORDER)] == tuple(
        n for n in kernels.AUTO_ORDER if n in registered_backends()
    )


def test_unknown_backend_raises_repro_error():
    with pytest.raises(KernelUnavailableError, match="unknown kernel backend"):
        get_backend("no-such-backend")
    # KernelUnavailableError is a ReproError: the CLI exits 2 cleanly.
    assert issubclass(KernelUnavailableError, ReproError)


def test_get_backend_returns_cached_singleton():
    assert get_backend("python") is get_backend("python")


def test_set_default_backend_round_trip():
    original = kernels.active_backend_name()
    previous = set_default_backend("python")
    try:
        assert previous == original
        assert kernels.active_backend_name() == "python"
        assert kernels.backend_source() == "explicit"
        assert get_backend().name == "python"
    finally:
        set_default_backend(original)


def test_use_backend_restores_default_and_source():
    before_name = kernels.active_backend_name()
    before_source = kernels.backend_source()
    with use_backend("python") as backend:
        assert backend.name == "python"
        assert kernels.active_backend_name() == "python"
        assert kernels.backend_source() == "explicit"
    assert kernels.active_backend_name() == before_name
    assert kernels.backend_source() == before_source


def test_env_override_selects_backend(monkeypatch):
    monkeypatch.setattr(kernels, "_active", None)
    monkeypatch.setattr(kernels, "_source", "auto")
    monkeypatch.setenv(kernels.ENV_VAR, "python")
    assert kernels.active_backend_name() == "python"
    assert kernels.backend_source() == "env"


def test_env_override_fails_loudly_for_bad_backend(monkeypatch):
    """Forcing an unavailable backend must not silently fall back."""
    monkeypatch.setattr(kernels, "_active", None)
    monkeypatch.setenv(kernels.ENV_VAR, "no-such-backend")
    with pytest.raises(KernelUnavailableError):
        get_backend()


def test_register_backend_replacement_and_unavailability(monkeypatch):
    # Shield the real registry from the throwaway registration.
    monkeypatch.setattr(kernels, "_factories", dict(kernels._factories))
    monkeypatch.setattr(kernels, "_instances", dict(kernels._instances))

    def broken() -> KernelBackend:
        raise KernelUnavailableError("no accelerator on this host")

    register_backend("accel", broken)
    assert "accel" in registered_backends()
    assert "accel" not in available_backends()
    with pytest.raises(KernelUnavailableError, match="not available"):
        get_backend("accel")
    register_backend("accel", PythonKernel)
    assert isinstance(get_backend("accel"), PythonKernel)


def test_backend_pickles_by_name():
    for name in BACKENDS:
        backend = get_backend(name)
        clone = pickle.loads(pickle.dumps(backend))
        assert clone is backend  # singleton reconnect, not a copy


# ----------------------------------------------------------------------
# ABI parity: python vs numpy
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bits", [1, 7, 64, 65, 128, 200, 512])
def test_pack_and_filter_parity(bits):
    sigs = random_signatures(40, bits, seed=bits)
    rng = random.Random(1000 + bits)
    probes = [rng.getrandbits(bits) for _ in range(12)] + [0, (1 << bits) - 1]
    reference = get_backend("python")
    ref_pack = reference.pack_signatures(sigs, bits)
    assert len(ref_pack) == len(sigs)
    for name in BACKENDS:
        backend = get_backend(name)
        pack = backend.pack_signatures(sigs, bits)
        assert len(pack) == len(sigs)
        assert pack.bits == bits
        for probe in probes:
            assert backend.filter_subset_batch(pack, probe) == \
                reference.filter_subset_batch(ref_pack, probe)
            assert backend.filter_superset_batch(pack, probe) == \
                reference.filter_superset_batch(ref_pack, probe)
        assert backend.popcount_batch(pack) == reference.popcount_batch(ref_pack)


def test_empty_pack():
    for name in BACKENDS:
        backend = get_backend(name)
        pack = backend.pack_signatures([], 64)
        assert len(pack) == 0
        assert backend.filter_subset_batch(pack, 0) == []
        assert backend.filter_superset_batch(pack, (1 << 64) - 1) == []
        assert backend.popcount_batch(pack) == []


def test_filter_semantics_are_positional():
    """Filters return *row indices* into the pack, in ascending order."""
    bits = 8
    sigs = [0b0001, 0b0011, 0b0111, 0b1000, 0b0011]
    for name in BACKENDS:
        backend = get_backend(name)
        pack = backend.pack_signatures(sigs, bits)
        # Rows whose signature is covered by probe 0b0011.
        assert backend.filter_subset_batch(pack, 0b0011) == [0, 1, 4]
        # Rows whose signature covers probe 0b0011.
        assert backend.filter_superset_batch(pack, 0b0011) == [1, 2, 4]


@pytest.mark.parametrize("sizes", [(0, 0), (0, 5), (5, 0), (3, 200), (200, 3),
                                   (50, 50), (1, 1)])
def test_intersect_sorted_parity(sizes):
    rng = random.Random(sum(sizes) * 7 + 1)
    a = sorted(rng.sample(range(1000), sizes[0]))
    b = sorted(rng.sample(range(1000), sizes[1]))
    expected = sorted(set(a) & set(b))
    for name in BACKENDS:
        assert get_backend(name).intersect_sorted(a, b) == expected
        assert get_backend(name).intersect_sorted(b, a) == expected


def test_gallop_and_merge_agree():
    rng = random.Random(99)
    small = sorted(rng.sample(range(10_000), 20))
    large = sorted(rng.sample(range(10_000), 20 * GALLOP_RATIO + 50))
    expected = sorted(set(small) & set(large))
    assert gallop_intersect(small, large) == expected
    assert merge_intersect(small, large) == expected
    assert merge_intersect(large, small) == expected


def test_module_level_intersect_uses_active_backend():
    assert intersect_sorted([1, 3, 5, 9], [3, 4, 5, 10]) == [3, 5]


# ----------------------------------------------------------------------
# bitmap module wrappers
# ----------------------------------------------------------------------
def test_bitmap_batch_wrappers_stay_backend_consistent():
    bits = 96
    sigs = random_signatures(20, bits, seed=5)
    for name in BACKENDS:
        pack = bitmap.pack_signatures(sigs, bits, backend=name)
        assert pack.backend == name
        probe = sigs[0]
        expected_sub = [i for i, s in enumerate(sigs) if s & ~probe == 0]
        expected_sup = [i for i, s in enumerate(sigs) if probe & ~s == 0]
        assert bitmap.filter_subset_batch(pack, probe) == expected_sub
        assert bitmap.filter_superset_batch(pack, probe) == expected_sup
        assert bitmap.popcount_batch(pack) == [s.bit_count() for s in sigs]


# ----------------------------------------------------------------------
# Prepared-index integration
# ----------------------------------------------------------------------
def small_relation(start_id: int = 0) -> Relation:
    sets = [
        frozenset(),
        frozenset({1}),
        frozenset({1, 2}),
        frozenset({1, 2, 3}),
        frozenset({4, 5}),
        frozenset({2, 3, 4, 5, 6}),
    ]
    return Relation(
        [SetRecord(start_id + i, elements) for i, elements in enumerate(sets)]
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_prepared_index_scan_candidates(backend):
    s = small_relation()
    r = small_relation(start_id=100)
    with use_backend(backend):
        index = make_algorithm("ptsj").prepare(s)
    assert index.kernel.name == backend
    assert len(index.signature_pack) == len(s)
    for record in r:
        candidates = set(index.scan_candidates(record))
        # Kernel-admitted candidates are a superset of the true matches
        # (signatures never produce false negatives) ...
        true_matches = {
            rec.rid for rec in s if record.elements >= rec.elements
        }
        assert true_matches <= candidates
        # ... and equal what the scalar signature filter admits.
        probe_sig = index.scheme.signature(record.elements)
        scalar = {
            rec.rid
            for rec in s
            if index.scheme.signature(rec.elements) & ~probe_sig == 0
        }
        assert candidates == scalar


@pytest.mark.parametrize("backend", BACKENDS)
def test_prepared_index_scan_superset_candidates(backend):
    s = small_relation()
    r = small_relation(start_id=100)
    with use_backend(backend):
        index = make_algorithm("ptsj").prepare(s)
    for record in r:
        candidates = set(index.scan_superset_candidates(record))
        true_matches = {
            rec.rid for rec in s if rec.elements >= record.elements
        }
        assert true_matches <= candidates


def test_prepared_index_keeps_build_backend():
    """An index packed under one backend keeps using it even after the
    process default changes (internal consistency for resident indexes)."""
    s = small_relation()
    with use_backend("python"):
        index = make_algorithm("ptsj").prepare(s)
    assert index.kernel.name == "python"
    assert index.signature_pack.backend == "python"
    other = BACKENDS[0]
    with use_backend(other):
        record = SetRecord(999, frozenset({1, 2}))
        assert index.scan_candidates(record) == sorted(
            index.scan_candidates(record)
        )
        assert index.kernel.name == "python"


# ----------------------------------------------------------------------
# refine_many ordering
# ----------------------------------------------------------------------
def test_refine_many_orders_by_posting_length():
    relation = Relation(
        [
            SetRecord(0, frozenset({1, 2, 3})),
            SetRecord(1, frozenset({1, 2})),
            SetRecord(2, frozenset({1})),
        ]
    )
    index = InvertedIndex(relation)
    # Element 7 has no postings; sorted-by-length refinement hits it
    # first, empties the candidate list, and stops after ONE refine even
    # though the caller listed the expensive elements first.
    before = index.intersection_count
    assert index.refine_many(index.all_ids, [1, 2, 7]) == []
    assert index.intersection_count == before + 1
    # Order of the surviving refinement is invisible in the result.
    assert index.refine_many(index.all_ids, [2, 1]) == [0, 1]
    assert index.refine_many(index.all_ids, [3, 1]) == [0]
