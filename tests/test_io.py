"""Unit tests for relation text I/O."""

from __future__ import annotations

import pytest

from repro.errors import RelationError
from repro.relations.io import (
    read_join_result,
    read_relation,
    read_relation_with_ids,
    write_join_result,
    write_relation,
    write_relation_with_ids,
)
from repro.relations.relation import Relation, SetRecord


class TestSetPerLine:
    def test_roundtrip(self, tmp_path):
        rel = Relation.from_sets([{3, 1}, {2}, {9, 4, 7}])
        path = tmp_path / "rel.txt"
        write_relation(rel, path)
        back = read_relation(path)
        assert back == rel

    def test_empty_sets_roundtrip(self, tmp_path):
        rel = Relation.from_sets([set(), {1}, set()])
        path = tmp_path / "rel.txt"
        write_relation(rel, path)
        assert read_relation(path) == rel

    def test_elements_written_sorted(self, tmp_path):
        path = tmp_path / "rel.txt"
        write_relation(Relation.from_sets([{9, 1, 5}]), path)
        assert path.read_text().strip() == "1 5 9"

    def test_read_assigns_line_number_ids(self, tmp_path):
        path = tmp_path / "rel.txt"
        path.write_text("1 2\n3\n")
        rel = read_relation(path)
        assert rel.ids() == (0, 1)

    def test_read_non_integer_raises(self, tmp_path):
        path = tmp_path / "rel.txt"
        path.write_text("1 x 2\n")
        with pytest.raises(RelationError):
            read_relation(path)

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mydata.txt"
        write_relation(Relation.from_sets([{1}]), path)
        assert read_relation(path).name == "mydata"


class TestIdPrefixed:
    def test_roundtrip_preserves_sparse_ids(self, tmp_path):
        rel = Relation([SetRecord(10, frozenset({1})), SetRecord(3, frozenset({2, 5}))])
        path = tmp_path / "rel.txt"
        write_relation_with_ids(rel, path)
        back = read_relation_with_ids(path)
        assert back == rel

    def test_missing_colon_raises(self, tmp_path):
        path = tmp_path / "rel.txt"
        path.write_text("1 2 3\n")
        with pytest.raises(RelationError):
            read_relation_with_ids(path)

    def test_non_integer_id_raises(self, tmp_path):
        path = tmp_path / "rel.txt"
        path.write_text("x: 1 2\n")
        with pytest.raises(RelationError):
            read_relation_with_ids(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "rel.txt"
        path.write_text("1: 2\n\n2: 3\n")
        assert len(read_relation_with_ids(path)) == 2

    def test_empty_set_record(self, tmp_path):
        path = tmp_path / "rel.txt"
        rel = Relation([SetRecord(5, frozenset())])
        write_relation_with_ids(rel, path)
        assert read_relation_with_ids(path).get(5).elements == frozenset()


class TestJoinResultIO:
    def test_roundtrip_sorted(self, tmp_path):
        path = tmp_path / "pairs.txt"
        write_join_result([(3, 1), (1, 2), (1, 1)], path)
        assert read_join_result(path) == [(1, 1), (1, 2), (3, 1)]

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "pairs.txt"
        path.write_text("1 2 3\n")
        with pytest.raises(RelationError):
            read_join_result(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "pairs.txt"
        write_join_result([], path)
        assert read_join_result(path) == []
