"""Unit tests for the governance subsystem (:mod:`repro.governance`).

Primitives first — :class:`Deadline`, :class:`CancelToken`, the policy
and its ambient installation, the :class:`Governor` poll loop with the
deterministic fault hooks from :mod:`repro.testing.faults` — then the
integration seams: option validators, the inline executor's rejection of
pooled-only bounds, the planner's deadline-feasibility decision, and
``execute_plan``'s refusal/ambient-install behavior.  Cross-process
drills (pools, fork/spawn, spill files) live in
``tests/test_governance_drills.py``.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.options import (
    validate_deadline_seconds,
    validate_max_memory_bytes,
)
from repro.errors import (
    AlgorithmError,
    BudgetExceededError,
    CancelledError,
    DeadlineExceededError,
    GovernanceError,
    ReproError,
)
from repro.governance import (
    CancelToken,
    Deadline,
    GovernancePolicy,
    Governor,
    current_policy,
    govern,
    governor,
    set_policy,
)
from repro.governance.memory import default_sampler, traced_build
from repro.testing.faults import CountdownCancelToken, SkewedClock, SteppingSampler

from .conftest import random_relation


def expired_deadline(seconds: float = 1.0) -> Deadline:
    """A deadline that is already overdue, without any sleeping.

    ``Deadline.after(s, clock=skewed)`` would *not* be expired — the skew
    cancels because "now" and ``at`` come from the same clock — so the
    drills anchor ``at`` on the real clock and evaluate on a skewed one.
    """
    real = Deadline.after(seconds)
    return Deadline(at=real.at, seconds=real.seconds,
                    clock=SkewedClock(seconds + 5.0))


@pytest.fixture(autouse=True)
def _no_leaked_policy():
    """Every test starts and ends ungoverned."""
    assert current_policy() is None
    yield
    set_policy(None)


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
class TestDeadline:
    def test_after_sets_an_absolute_instant(self):
        deadline = Deadline.after(60.0)
        assert deadline.seconds == 60.0
        assert 0.0 < deadline.remaining() <= 60.0
        assert not deadline.expired()

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_rejects_non_positive_budgets(self, bad):
        with pytest.raises(AlgorithmError):
            Deadline.after(bad)

    def test_rejects_none_budget(self):
        with pytest.raises(AlgorithmError):
            Deadline.after(None)

    def test_skewed_clock_expires_without_sleeping(self):
        # Build against the real clock, evaluate against one skewed past
        # the deadline: remaining() goes negative with zero wall time.
        real = Deadline.after(5.0)
        skewed = Deadline(at=real.at, seconds=real.seconds, clock=SkewedClock(10.0))
        assert skewed.expired()
        assert skewed.remaining() < 0.0

    def test_pickles_with_clock_seam(self):
        deadline = expired_deadline(5.0)
        revived = pickle.loads(pickle.dumps(deadline))
        assert revived.at == deadline.at
        assert revived.seconds == deadline.seconds
        assert revived.clock.offset_seconds == deadline.clock.offset_seconds
        assert revived.expired()


# ----------------------------------------------------------------------
# CancelToken
# ----------------------------------------------------------------------
class TestCancelToken:
    def test_cancel_is_idempotent_and_keeps_first_reason(self):
        token = CancelToken()
        assert not token.cancelled()
        token.cancel("first")
        token.cancel("second")
        assert token.cancelled()
        assert token.reason == "first"

    def test_cancel_at_auto_trips(self):
        # cancel_at in the past (skewed clock) trips on the first check.
        token = CancelToken(cancel_at=1.0, clock=SkewedClock(1e9))
        assert token.cancelled()
        assert token.reason == "cancel_after budget elapsed"

    def test_cancel_at_in_the_future_does_not_trip(self):
        token = CancelToken(cancel_at=Deadline.after(3600.0).at)
        assert not token.cancelled()

    def test_flag_file_is_seen_by_a_peer_token(self, tmp_path):
        owner = CancelToken(flag_dir=tmp_path, name="drill")
        peer = CancelToken(flag_dir=tmp_path, name="drill")
        assert not peer.cancelled()
        owner.cancel("parent says stop")
        assert peer.cancelled()
        assert peer.reason == "cancelled by peer process"

    def test_pickle_roundtrip_preserves_flag_and_instant(self, tmp_path):
        token = CancelToken(flag_dir=tmp_path, name="drill", cancel_at=1e18)
        revived = pickle.loads(pickle.dumps(token))
        assert not revived.cancelled()
        token.cancel("after pickling")
        # The revived copy observes the original's cancel via the flag file.
        assert revived.cancelled()

    def test_countdown_token_trips_after_n_checks(self):
        token = CountdownCancelToken(after_checks=3)
        assert [token.cancelled() for _ in range(4)] == [False, False, True, True]
        assert "countdown tripped" in token.reason

    def test_countdown_resets_per_process(self):
        token = CountdownCancelToken(after_checks=2)
        assert not token.cancelled()
        revived = pickle.loads(pickle.dumps(token))
        assert revived.checks == 0


# ----------------------------------------------------------------------
# GovernancePolicy and the ambient slot
# ----------------------------------------------------------------------
class TestPolicy:
    def test_inactive_without_any_bound(self):
        assert not GovernancePolicy().active
        assert GovernancePolicy(deadline=Deadline.after(1.0)).active
        assert GovernancePolicy(cancel=CancelToken()).active
        assert GovernancePolicy(memory_budget_bytes=1).active

    @pytest.mark.parametrize("bad", [dict(memory_budget_bytes=0),
                                     dict(memory_budget_bytes=-5),
                                     dict(poll_interval=0),
                                     dict(poll_interval=-1)])
    def test_invalid_configuration(self, bad):
        with pytest.raises(AlgorithmError):
            GovernancePolicy(**bad)

    def test_worker_policy_strips_custom_sampler(self):
        policy = GovernancePolicy(
            deadline=Deadline.after(9.0),
            memory_budget_bytes=100,
            memory_sampler=SteppingSampler([0]),
        )
        shipped = policy.worker_policy()
        assert shipped.memory_sampler is None
        assert shipped.deadline == policy.deadline
        assert shipped.memory_budget_bytes == 100
        # Without a custom sampler the policy ships as-is.
        plain = GovernancePolicy(deadline=Deadline.after(9.0))
        assert plain.worker_policy() is plain

    def test_govern_scopes_and_restores(self):
        outer = GovernancePolicy(memory_budget_bytes=1)
        inner = GovernancePolicy(memory_budget_bytes=2)
        with govern(outer):
            assert current_policy() is outer
            with govern(inner):
                assert current_policy() is inner
            assert current_policy() is outer
        assert current_policy() is None

    def test_govern_restores_after_an_exception(self):
        with pytest.raises(RuntimeError):
            with govern(GovernancePolicy(memory_budget_bytes=1)):
                raise RuntimeError("boom")
        assert current_policy() is None

    def test_govern_accepts_none(self):
        with govern(None):
            assert current_policy() is None

    def test_set_policy_returns_previous(self):
        policy = GovernancePolicy()
        assert set_policy(policy) is None
        assert set_policy(None) is policy

    def test_governor_is_none_when_ungoverned_or_inactive(self):
        assert governor("build") is None
        with govern(GovernancePolicy()):  # no bound set
            assert governor("build") is None
        with govern(GovernancePolicy(memory_budget_bytes=1)):
            assert governor("build") is not None


# ----------------------------------------------------------------------
# Governor polls
# ----------------------------------------------------------------------
class TestGovernor:
    def test_tick_polls_every_interval_and_counts(self):
        from repro.core.base import JoinStats

        stats = JoinStats()
        policy = GovernancePolicy(deadline=Deadline.after(3600.0), poll_interval=4)
        gov = Governor(policy, "probe", stats)
        for _ in range(12):
            gov.tick()
        assert gov.ticks == 12
        # The first tick polls (small inputs must observe their bounds),
        # then every poll_interval: ticks 1, 5 and 9.
        assert stats.extras["deadline_polls"] == 3

    def test_expired_deadline_raises_on_poll(self):
        gov = Governor(GovernancePolicy(deadline=expired_deadline()), "build", None)
        with pytest.raises(DeadlineExceededError, match="during build"):
            gov.poll()

    def test_tripped_token_raises_with_reason(self):
        token = CancelToken()
        token.cancel("operator abort")
        gov = Governor(GovernancePolicy(cancel=token), "probe", None)
        with pytest.raises(CancelledError, match="operator abort"):
            gov.poll()

    def test_countdown_token_trips_within_one_interval(self):
        policy = GovernancePolicy(cancel=CountdownCancelToken(after_checks=3),
                                  poll_interval=2)
        gov = Governor(policy, "build", None)
        with pytest.raises(CancelledError, match="countdown tripped"):
            for _ in range(8):
                gov.tick()
        # Polls land on ticks 1, 3 and 5 (first tick always polls); the
        # third check trips the countdown — within one poll interval.
        assert gov.ticks == 5

    def test_budget_breach_carries_partial_accounting(self):
        sampler = SteppingSampler([1000, 1600, 2720])  # base, ok, breach
        policy = GovernancePolicy(memory_budget_bytes=1024, poll_interval=8,
                                  memory_sampler=sampler)
        gov = Governor(policy, "build", None)
        with pytest.raises(BudgetExceededError) as excinfo:
            for _ in range(100):
                gov.tick()
        breach = excinfo.value
        assert breach.budget_bytes == 1024
        assert breach.used_bytes == 2720 - 1000
        # Polls at ticks 1 (1600, within budget) and 9 (2720, breach).
        assert breach.records_indexed == 9

    def test_budget_exceeded_pickles_with_accounting(self):
        err = BudgetExceededError("x", budget_bytes=7, used_bytes=9, records_indexed=3)
        revived = pickle.loads(pickle.dumps(err))
        assert (revived.budget_bytes, revived.used_bytes, revived.records_indexed) \
            == (7, 9, 3)

    def test_memory_sampler_armed_only_for_build(self):
        sampler = SteppingSampler([0, 10**9])
        policy = GovernancePolicy(memory_budget_bytes=1, memory_sampler=sampler,
                                  poll_interval=1)
        probe_gov = Governor(policy, "probe", None)
        probe_gov.tick()  # polls, but never samples memory
        assert sampler.calls == 0

    def test_error_taxonomy(self):
        for exc in (DeadlineExceededError, CancelledError, BudgetExceededError):
            assert issubclass(exc, GovernanceError)
        assert issubclass(GovernanceError, ReproError)


# ----------------------------------------------------------------------
# tracemalloc lifecycle
# ----------------------------------------------------------------------
class TestTracedBuild:
    def test_arms_only_for_a_default_sampler_budget(self):
        import tracemalloc

        assert not tracemalloc.is_tracing()
        with traced_build(GovernancePolicy(memory_budget_bytes=1 << 20)):
            assert tracemalloc.is_tracing()
            assert default_sampler() >= 0
        assert not tracemalloc.is_tracing()

    def test_stays_cold_without_a_budget_or_with_a_custom_sampler(self):
        import tracemalloc

        with traced_build(None):
            assert not tracemalloc.is_tracing()
        with traced_build(GovernancePolicy(deadline=Deadline.after(1.0))):
            assert not tracemalloc.is_tracing()
        custom = GovernancePolicy(memory_budget_bytes=1,
                                  memory_sampler=SteppingSampler([0]))
        with traced_build(custom):
            assert not tracemalloc.is_tracing()

    def test_never_stops_someone_elses_tracing(self):
        import tracemalloc

        tracemalloc.start()
        try:
            with traced_build(GovernancePolicy(memory_budget_bytes=1)):
                assert tracemalloc.is_tracing()
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()

    def test_default_sampler_reads_zero_when_cold(self):
        import tracemalloc

        assert not tracemalloc.is_tracing()
        assert default_sampler() == 0

    def test_governors_share_the_scope_base_reading(self):
        # One base reading per build scope: the loop governor and the
        # build-boundary governor must measure the same delta, and a
        # scripted sampler must be consumed exactly once for the base.
        from repro.governance.memory import build_base

        sampler = SteppingSampler([500, 2000])
        policy = GovernancePolicy(memory_budget_bytes=1 << 20,
                                  memory_sampler=sampler)
        assert build_base() is None
        with traced_build(policy):
            assert build_base() == 500
            first = Governor(policy, "build", None)
            second = Governor(policy, "build", None)
            assert first._base_bytes == 500
            assert second._base_bytes == 500
        assert build_base() is None
        # Outside a scope a governor samples its own base.
        loner = Governor(policy, "build", None)
        assert loner._base_bytes == 2000


# ----------------------------------------------------------------------
# Option validators (satellite: timeout vs deadline semantics)
# ----------------------------------------------------------------------
class TestValidators:
    @pytest.mark.parametrize("bad", [0.0, -0.5])
    def test_deadline_seconds_must_be_positive(self, bad):
        with pytest.raises(AlgorithmError, match="deadline_seconds"):
            validate_deadline_seconds(bad)

    def test_deadline_seconds_accepts_none_and_positive(self):
        assert validate_deadline_seconds(None) is None
        assert validate_deadline_seconds(2.5) == 2.5

    @pytest.mark.parametrize("bad", [0, -1])
    def test_max_memory_bytes_must_be_positive(self, bad):
        with pytest.raises(AlgorithmError, match="max_memory_bytes"):
            validate_max_memory_bytes(bad)

    def test_docstrings_state_the_scope_split(self):
        # The per-chunk/whole-join distinction is documented contract.
        from repro.core.options import validate_timeout_seconds

        assert "chunk" in validate_timeout_seconds.__doc__
        assert "deadline_seconds" in validate_timeout_seconds.__doc__
        assert "join" in validate_deadline_seconds.__doc__


# ----------------------------------------------------------------------
# Inline executor rejects pooled-only bounds (satellite)
# ----------------------------------------------------------------------
class TestInlineRejection:
    @pytest.mark.parametrize("option", [dict(timeout_seconds=1.0),
                                        dict(retries=3),
                                        dict(retry_policy=None),
                                        dict(fallback=True),
                                        dict(validate_results=True)])
    def test_pooled_only_option_is_a_loud_error(self, option):
        from repro.exec.inline import InlineJoin

        with pytest.raises(AlgorithmError, match="deadline_seconds instead"):
            InlineJoin(algorithm="ptsj", **option)

    def test_inline_honors_a_whole_join_deadline(self):
        from repro.exec.inline import InlineJoin

        r = random_relation(40, 6, 30, seed=11)
        s = random_relation(40, 4, 30, seed=12)
        with govern(GovernancePolicy(deadline=expired_deadline(), poll_interval=1)):
            with pytest.raises(DeadlineExceededError):
                InlineJoin(algorithm="ptsj").join(r, s)


# ----------------------------------------------------------------------
# Planner feasibility screening and execute_plan
# ----------------------------------------------------------------------
class TestPlannerGovernance:
    def _stats(self, size):
        from tests.test_planner import make_stats

        return make_stats(size)

    def test_no_deadline_no_governance_decision(self):
        from repro.planner import Planner, Workload

        p = Planner().plan(self._stats(1000), self._stats(1000), Workload())
        assert p.decision("governance") is None

    def test_feasible_deadline_is_recorded(self):
        from repro.planner import Planner, Workload

        p = Planner().plan(self._stats(1000), self._stats(1000),
                           Workload(deadline_seconds=3600.0))
        decision = p.decision("governance")
        assert decision is not None
        assert decision.detail_dict()["feasible"] is True
        assert decision.detail_dict()["deadline_seconds"] == 3600.0
        assert "estimated_seconds" in decision.detail_dict()

    def test_hopeless_deadline_is_screened_infeasible(self):
        from repro.planner import Planner, Workload

        p = Planner().plan(self._stats(2_000_000), self._stats(2_000_000),
                           Workload(deadline_seconds=1e-6))
        decision = p.decision("governance")
        assert decision.choice == "infeasible"
        assert decision.detail_dict()["feasible"] is False

    def test_execute_plan_refuses_an_infeasible_plan(self):
        from repro.core.registry import execute_plan
        from repro.planner import Planner, Workload

        r = random_relation(10, 4, 20, seed=21)
        s = random_relation(10, 3, 20, seed=22)
        p = Planner().plan(self._stats(2_000_000), self._stats(2_000_000),
                           Workload(deadline_seconds=1e-6))
        with pytest.raises(DeadlineExceededError, match="refused before execution"):
            execute_plan(p, r, s)

    def test_workload_validates_governance_hints(self):
        from repro.planner import Workload

        with pytest.raises(AlgorithmError):
            Workload(deadline_seconds=0.0)
        with pytest.raises(AlgorithmError):
            Workload(max_memory_bytes=-1)

    def test_workload_serializes_governance_hints(self):
        from repro.planner import Workload

        payload = Workload(deadline_seconds=2.0, max_memory_bytes=4096).to_dict()
        assert payload["deadline_seconds"] == 2.0
        assert payload["max_memory_bytes"] == 4096

    def test_policy_from_workload(self):
        from repro.planner import Planner, Workload, policy_from_workload

        stats = self._stats(1000)
        bare = Planner().plan(stats, stats, Workload())
        assert policy_from_workload(bare) is None
        hinted = Planner().plan(stats, stats,
                                Workload(deadline_seconds=60.0,
                                         max_memory_bytes=1 << 30))
        policy = policy_from_workload(hinted)
        assert policy.deadline.seconds == 60.0
        assert policy.memory_budget_bytes == 1 << 30

    def test_execute_plan_installs_ambient_policy(self):
        from repro.core.registry import execute_plan
        from repro.planner import Planner, Workload

        r = random_relation(30, 5, 25, seed=31)
        s = random_relation(30, 3, 25, seed=32)
        stats = self._stats(30)
        p = Planner().plan(stats, stats, Workload(deadline_seconds=3600.0))
        result = execute_plan(p, r, s)
        # The join ran governed: its loops polled the installed policy.
        assert result.stats.extras.get("deadline_polls", 0) >= 0
        assert current_policy() is None  # and the install was scoped

    def test_caller_policy_wins_over_workload_hints(self):
        from repro.core.registry import execute_plan
        from repro.planner import Planner, Workload

        r = random_relation(30, 5, 25, seed=33)
        s = random_relation(30, 3, 25, seed=34)
        stats = self._stats(30)
        p = Planner().plan(stats, stats, Workload(deadline_seconds=3600.0))
        with govern(GovernancePolicy(deadline=expired_deadline(), poll_interval=1)):
            with pytest.raises(DeadlineExceededError):
                execute_plan(p, r, s)


# ----------------------------------------------------------------------
# Tracer integration
# ----------------------------------------------------------------------
def test_governance_is_a_tracer_phase():
    from repro.obs.tracer import PHASES

    assert "governance" in PHASES
