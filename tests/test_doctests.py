"""Execute the doctest examples embedded in public docstrings.

The examples shown in module and function docstrings are part of the
documentation contract; this test keeps them honest.
"""

from __future__ import annotations

import doctest

import pytest

import repro.bench.reporting
import repro.core.pretti_plus
import repro.core.ptsj
import repro.core.registry
import repro.datagen.synthetic
import repro.extensions.equality
import repro.extensions.similarity
import repro.extensions.superset
import repro.exec.disk
import repro.external.psj
import repro.baselines.pretti
import repro.baselines.shj
import repro.index.inverted
import repro.relations.relation
import repro.relations.universe
import repro.signatures.bitmap
import repro.signatures.length

MODULES = [
    repro.relations.relation,
    repro.relations.universe,
    repro.signatures.bitmap,
    repro.signatures.length,
    repro.index.inverted,
    repro.core.ptsj,
    repro.core.pretti_plus,
    repro.core.registry,
    repro.baselines.pretti,
    repro.baselines.shj,
    repro.extensions.superset,
    repro.extensions.equality,
    repro.extensions.similarity,
    repro.exec.disk,
    repro.external.psj,
    repro.datagen.synthetic,
    repro.bench.reporting,
]


@pytest.mark.parametrize("module", MODULES, ids=[m.__name__ for m in MODULES])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"


def test_doctests_exist_somewhere():
    """At least a good handful of modules actually carry examples."""
    total = 0
    finder = doctest.DocTestFinder()
    for module in MODULES:
        total += sum(len(t.examples) for t in finder.find(module))
    assert total >= 15
