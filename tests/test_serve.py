"""Concurrency and chaos suite for the join server (:mod:`repro.serve`).

This is the first layer of the reproduction where concurrency is the
product, so the suite leans on load rather than single calls:

* **Parity under load** — N threaded clients fire mixed cached/uncached
  probe and join requests; every reply must be bit-for-bit identical to
  the inline :func:`set_containment_join` oracle, and the shared-S
  traffic must actually hit the resident index cache.
* **Hygiene** — after ``stop()`` no server thread, connection socket or
  spill file survives, whichever multiprocessing start method the run
  pins (CI runs this file under ``REPRO_START_METHOD=fork`` and
  ``spawn`` with ``REPRO_SANITIZE=1``).
* **Chaos drills** — a mid-request cancel-token trip, a deadline breach,
  a poisoned (malformed) request and an admission-control rejection each
  produce their *typed* error reply and leave the server fully usable.

The server binds loopback on an ephemeral port, so tests never collide.
"""

from __future__ import annotations

import glob
import multiprocessing
import os
import tempfile
import threading
import time

import pytest

from repro.core.registry import set_containment_join
from repro.errors import (
    CancelledError,
    DeadlineExceededError,
    OverCapacityError,
    ProtocolError,
)
from repro.governance.policy import GovernancePolicy
from repro.obs.metrics import MetricsRegistry
from repro.serve import JoinClient, JoinServer
from repro.testing.faults import CountdownCancelToken

from tests.conftest import oracle_pairs, random_relation

#: CI pins the start method (fork/spawn); locally the platform default
#: applies.  The server itself is thread-based — this suite asserts its
#: hygiene holds regardless of how sibling process pools would start.
START_METHOD = os.environ.get("REPRO_START_METHOD") or None
if START_METHOD is not None and START_METHOD not in multiprocessing.get_all_start_methods():
    pytest.skip(f"start method {START_METHOD} unavailable", allow_module_level=True)


def _spill_files() -> set[str]:
    """Temp-dir entries a leaked disk-partitioned join would leave."""
    return set(glob.glob(os.path.join(tempfile.gettempdir(), "repro*")))


@pytest.fixture
def server():
    """A started server with a fresh registry; guarantees clean stop."""
    threads_before = set(threading.enumerate())
    spills_before = _spill_files()
    srv = JoinServer(max_connections=8, cache_capacity=8)
    srv.start()
    try:
        yield srv
    finally:
        srv.stop()
    # Hygiene: every accept/pool thread joined, every connection closed,
    # no spill files abandoned — regardless of how the test ended.
    leaked = set(threading.enumerate()) - threads_before
    assert not leaked, f"leaked threads: {[t.name for t in leaked]}"
    assert not srv._connections, "leaked connection sockets"
    assert _spill_files() == spills_before, "leaked spill files"


def _client(srv: JoinServer) -> JoinClient:
    assert srv.address is not None
    return JoinClient(address=srv.address)


# ----------------------------------------------------------------------
# Parity under concurrent load
# ----------------------------------------------------------------------
def test_concurrent_clients_match_oracle_and_share_cache(server):
    """8 threaded clients, mixed shared/unique S: oracle parity + hits."""
    clients = 8
    requests_each = 5
    # Two S relations shared by all clients (cache hits) plus one unique
    # S per client (cache misses); R varies per request.
    shared_s = [
        random_relation(60, 5, 40, seed=100 + i, min_cardinality=1)
        for i in range(2)
    ]
    failures: list[str] = []
    barrier = threading.Barrier(clients)

    def worker(worker_id: int) -> None:
        try:
            unique_s = random_relation(40, 5, 40, seed=500 + worker_id, min_cardinality=1)
            with _client(server) as client:
                barrier.wait(timeout=30)
                for i in range(requests_each):
                    r = random_relation(50, 8, 40, seed=worker_id * 97 + i)
                    s = shared_s[i % 2] if i % 2 == 0 or i % 3 else unique_s
                    algorithm = ("auto", "ptsj", "pretti+")[i % 3]
                    reply = client.probe(r, s, algorithm=algorithm)
                    got = JoinClient.pairs(reply)
                    expected = sorted(
                        set_containment_join(r, s, algorithm=algorithm).pairs
                    )
                    if got != expected:
                        failures.append(
                            f"worker {worker_id} request {i}: {len(got)} pairs "
                            f"!= oracle {len(expected)}"
                        )
        except Exception as exc:  # surfaced below; threads must not die silently
            failures.append(f"worker {worker_id}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not failures, failures
    snapshot = server.registry.snapshot()
    assert snapshot.get("cache.hits", 0) > 0, "shared-S traffic never hit the cache"
    assert snapshot.get("cache.misses", 0) > 0
    assert snapshot["server.requests.probe"] == clients * requests_each
    assert snapshot.get("server.errors.internal", 0) == 0


def test_join_op_matches_oracle_and_probe_agrees_with_join(server):
    r = random_relation(80, 8, 50, seed=1)
    s = random_relation(60, 5, 50, seed=2, min_cardinality=1)
    with _client(server) as client:
        join_reply = client.join(r, s, algorithm="ptsj")
        probe_reply = client.probe(r, s, algorithm="ptsj")
    expected = sorted(oracle_pairs(r, s))
    assert JoinClient.pairs(join_reply) == expected
    assert JoinClient.pairs(probe_reply) == expected
    assert join_reply["algorithm"] == "ptsj"
    assert join_reply["cache_hit"] is False


def test_repeat_probe_hits_cache_and_reuses_index(server):
    r = random_relation(30, 6, 30, seed=3)
    s = random_relation(30, 4, 30, seed=4, min_cardinality=1)
    with _client(server) as client:
        first = client.probe(r, s, algorithm="ptsj")
        second = client.probe(r, s, algorithm="ptsj")
    assert first["cache_hit"] is False
    assert second["cache_hit"] is True
    assert JoinClient.pairs(first) == JoinClient.pairs(second)


def test_probe_by_handle_skips_reshipping_s(server):
    r = random_relation(30, 6, 30, seed=22)
    s = random_relation(30, 4, 30, seed=23, min_cardinality=1)
    with _client(server) as client:
        cold = client.probe(r, s, algorithm="ptsj")
        by_handle = client.probe(r, s_ref=cold["s_key"])
        assert by_handle["cache_hit"] is True
        assert JoinClient.pairs(by_handle) == JoinClient.pairs(cold)
        assert by_handle["s_key"] == cold["s_key"]
        assert by_handle["algorithm"] == "ptsj"
        # An unknown/evicted handle is a typed bad_request telling the
        # client to resend S — never a silent rebuild of nothing.
        with pytest.raises(ProtocolError):
            client.probe(r, s_ref="rf1:deadbeef|ptsj")
        # Handle and payload are mutually exclusive, both ways.
        with pytest.raises(ProtocolError):
            client.probe(r)
        with pytest.raises(ProtocolError):
            client.send_raw(
                b'{"op":"probe","r":[[1]],"s":[[1]],"s_ref":"x"}\n'
            )
        assert client.ping()


def test_cache_capacity_one_evicts_under_alternating_s(server):
    small = JoinServer(cache_capacity=1)
    small.start()
    try:
        r = random_relation(20, 5, 25, seed=5)
        s_a = random_relation(15, 4, 25, seed=6, min_cardinality=1)
        s_b = random_relation(15, 4, 25, seed=7, min_cardinality=1)
        with _client(small) as client:
            for _ in range(3):
                client.probe(r, s_a, algorithm="ptsj")
                client.probe(r, s_b, algorithm="ptsj")
            stats = client.stats()
    finally:
        small.stop()
    assert stats["metrics"]["cache.evictions"] >= 4
    assert stats["cache"]["size"] == 1


# ----------------------------------------------------------------------
# The stats surface
# ----------------------------------------------------------------------
def test_stats_exposes_cache_counters_inflight_and_latency(server):
    r = random_relation(20, 5, 25, seed=8)
    s = random_relation(15, 4, 25, seed=9, min_cardinality=1)
    with _client(server) as client:
        client.probe(r, s)
        client.probe(r, s)
        stats = client.stats()
    metrics = stats["metrics"]
    assert metrics["cache.hits"] == 1.0
    assert metrics["cache.misses"] == 1.0
    assert metrics["cache.evictions"] == 0.0  # instruments exist from start
    assert metrics["server.request_seconds.count"] == 2.0
    assert metrics["server.request_seconds.sum"] > 0.0
    assert metrics["server.request_seconds.max"] >= metrics["server.request_seconds.min"]
    assert metrics["server.inflight"] == 0.0
    assert stats["inflight"] == 0
    assert stats["max_inflight"] == server.max_inflight
    assert stats["cache"]["capacity"] == 8
    # The per-request tracer mirrors join counters into the registry.
    assert metrics.get("pairs", 0) >= 0
    assert stats["uptime_seconds"] >= 0.0


def test_probe_reply_carries_span_phases(server):
    r = random_relation(20, 5, 25, seed=10)
    s = random_relation(15, 4, 25, seed=11, min_cardinality=1)
    with _client(server) as client:
        cold = client.probe(r, s, algorithm="ptsj")
        warm = client.probe(r, s, algorithm="ptsj")
    assert "build" in cold["phases"], cold["phases"]
    assert "probe" in cold["phases"]
    assert "build" not in warm["phases"], "cache hit must not rebuild"
    assert warm["seconds"] >= 0.0


# ----------------------------------------------------------------------
# Chaos drills
# ----------------------------------------------------------------------
def test_poisoned_request_gets_error_reply_and_connection_survives(server):
    r = random_relation(10, 4, 20, seed=12)
    s = random_relation(10, 3, 20, seed=13, min_cardinality=1)
    with _client(server) as client:
        with pytest.raises(ProtocolError):
            client.send_raw(b"{this is not json\n")
        with pytest.raises(ProtocolError):
            client.send_raw(b'"a bare string, not an object"\n')
        with pytest.raises(ProtocolError):
            client.send_raw(b'{"op": "probe", "r": 7, "s": []}\n')
        with pytest.raises(ProtocolError):
            client.send_raw(b'{"op": "nope"}\n')
        with pytest.raises(ProtocolError):
            client.send_raw(b'{"op": "ping", "surprise": 1}\n')
        # The same connection keeps working after every poisoned line.
        reply = client.probe(r, s)
        assert JoinClient.pairs(reply) == sorted(oracle_pairs(r, s))
    assert server.registry.snapshot()["server.errors.bad_request"] == 5.0


def test_unknown_algorithm_is_bad_request_not_connection_loss(server):
    with _client(server) as client:
        with pytest.raises(Exception) as excinfo:
            client.probe([[1, 2]], [[1]], algorithm="quantum")
        assert "unknown algorithm" in str(excinfo.value)
        assert client.ping()


def test_midrequest_cancel_trip_is_typed_and_server_survives():
    policy = GovernancePolicy(
        cancel=CountdownCancelToken(after_checks=2), poll_interval=1
    )
    srv = JoinServer(default_policy=policy)
    srv.start()
    try:
        r = random_relation(40, 6, 30, seed=14)
        s = random_relation(40, 4, 30, seed=15, min_cardinality=1)
        with _client(srv) as client:
            with pytest.raises(CancelledError):
                client.probe(r, s, algorithm="ptsj")
            # The request thread's policy was scoped to the request:
            # control ops on the same connection still work.
            assert client.ping()
            stats = client.stats()
        assert stats["metrics"]["server.errors.cancelled"] == 1.0
        assert stats["inflight"] == 0
    finally:
        srv.stop()


def test_deadline_breach_is_typed_and_next_request_succeeds(server):
    r = random_relation(40, 6, 30, seed=16)
    s = random_relation(40, 4, 30, seed=17, min_cardinality=1)
    with _client(server) as client:
        with pytest.raises(DeadlineExceededError):
            client.probe(r, s, algorithm="ptsj", deadline_seconds=1e-9)
        # Same connection, no deadline: full service resumes.
        reply = client.probe(r, s, algorithm="ptsj")
        assert JoinClient.pairs(reply) == sorted(oracle_pairs(r, s))
    snapshot = server.registry.snapshot()
    assert snapshot["server.errors.deadline_exceeded"] == 1.0
    assert snapshot["server.inflight"] == 0.0


def test_failed_build_caches_nothing(server):
    r = random_relation(10, 4, 20, seed=18)
    s = random_relation(10, 3, 20, seed=19, min_cardinality=1)
    with _client(server) as client:
        with pytest.raises(DeadlineExceededError):
            client.probe(r, s, algorithm="ptsj", deadline_seconds=1e-9)
        assert len(server.cache) == 0
        # The retry (no deadline) builds and serves normally.
        reply = client.probe(r, s, algorithm="ptsj")
        assert reply["cache_hit"] is False
        assert JoinClient.pairs(reply) == sorted(oracle_pairs(r, s))


def test_admission_rejection_is_typed_and_decrements_inflight():
    release = threading.Event()
    entered = threading.Event()

    def hook(frame):
        # Hold the first probe's admission slot until the test releases it.
        entered.set()
        assert release.wait(timeout=30)

    srv = JoinServer(max_inflight=1, request_hook=hook)
    srv.start()
    try:
        r = random_relation(10, 4, 20, seed=20)
        s = random_relation(10, 3, 20, seed=21, min_cardinality=1)
        results: list = []

        def slow_request():
            with _client(srv) as client:
                results.append(client.probe(r, s))

        blocker = threading.Thread(target=slow_request)
        blocker.start()
        assert entered.wait(timeout=30), "first request never admitted"
        with _client(srv) as client:
            # stats is admission-exempt: a saturated server stays observable.
            assert client.stats()["inflight"] == 1
            with pytest.raises(OverCapacityError):
                client.probe(r, s)
            stats = client.stats()
            assert stats["inflight"] == 1, "rejection must not leak a slot"
            assert stats["metrics"]["server.rejected"] == 1.0
        srv.request_hook = None
        release.set()
        blocker.join(timeout=30)
        assert results and JoinClient.pairs(results[0]) == sorted(oracle_pairs(r, s))
        with _client(srv) as client:
            assert client.stats()["inflight"] == 0
            assert JoinClient.pairs(client.probe(r, s)) == sorted(oracle_pairs(r, s))
    finally:
        release.set()
        srv.stop()


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def test_shutdown_op_stops_the_server():
    srv = JoinServer()
    srv.start()
    try:
        with _client(srv) as client:
            assert client.ping()
            assert client.shutdown()
        assert srv.wait(timeout=10), "shutdown request never signalled stop"
    finally:
        srv.stop()
    with pytest.raises(OSError):
        _client(srv)


def test_scheduled_shutdown_during_inflight_probe_completes_the_probe():
    """Shutdown racing an in-flight probe, as a scripted interleaving.

    The script pins the probe between admission and execution while a
    second connection sends ``shutdown`` and receives its ack — then
    releases the probe.  The ack-before-stop ordering means the probe's
    connection keeps draining: its reply must still arrive correct, and
    the shutdown must leave no thread, socket or inflight count behind.
    """
    from repro.testing import Schedule

    sched = Schedule(
        [
            ("probe", "admitted"),
            ("main", "send-shutdown"),
            ("main", "shutdown-acked"),
            ("probe", "resume"),
        ],
        timeout_seconds=30,
    )

    def hook(frame):
        sched.point("probe", "admitted")
        sched.point("probe", "resume")

    threads_before = set(threading.enumerate())
    srv = JoinServer(max_connections=4, request_hook=hook)
    srv.start()
    try:
        r = random_relation(20, 4, 30, seed=71)
        s = random_relation(20, 3, 30, seed=72, min_cardinality=1)
        expected = sorted(oracle_pairs(r, s))

        def probe_worker():
            with _client(srv) as client:
                return JoinClient.pairs(client.probe(r, s))

        def main_worker():
            sched.point("main", "send-shutdown")  # probe is admitted now
            with _client(srv) as control:
                assert control.shutdown(), "shutdown must be acked"
            inflight_at_ack = srv.inflight
            stop_signalled = srv.wait(timeout=10)
            sched.point("main", "shutdown-acked")
            return inflight_at_ack, stop_signalled

        results = sched.run({"probe": probe_worker, "main": main_worker})
        assert results["probe"] == expected, "in-flight probe reply corrupted"
        inflight_at_ack, stop_signalled = results["main"]
        assert inflight_at_ack == 1, "probe should still be in flight at ack"
        assert stop_signalled, "shutdown ack must signal the stop event"
        assert srv.inflight == 0
        assert srv.registry.snapshot()["server.inflight"] == 0.0
    finally:
        srv.request_hook = None
        srv.stop()
    leaked = set(threading.enumerate()) - threads_before
    assert not leaked, f"leaked threads: {[t.name for t in leaked]}"
    assert not srv._connections, "leaked connection sockets"


def test_stop_is_idempotent_and_context_manager_cleans_up():
    threads_before = set(threading.enumerate())
    with JoinServer() as srv:
        with _client(srv) as client:
            assert client.ping()
    srv.stop()  # second stop: no-op
    assert set(threading.enumerate()) - threads_before == set()


def test_shared_registry_survives_across_servers():
    registry = MetricsRegistry()
    for _ in range(2):
        with JoinServer(registry=registry) as srv:
            with _client(srv) as client:
                client.ping()
    assert registry.snapshot()["server.requests.ping"] == 2.0


def test_cli_serve_subcommand_round_trip(capsys):
    """`repro-scj serve` starts, serves and stops via a shutdown request."""
    import re

    from repro.cli import main

    rc: list[int] = []

    def run():
        rc.append(main(["serve", "--port", "0", "--cache-capacity", "4"]))

    thread = threading.Thread(target=run)
    thread.start()
    address = None
    seen = ""
    try:
        for _ in range(400):
            seen += capsys.readouterr().out
            match = re.search(r"serving on ([\d.]+):(\d+)", seen)
            if match:
                address = (match.group(1), int(match.group(2)))
                break
            if not thread.is_alive():
                break
            time.sleep(0.025)
        assert address is not None, "serve never announced its address"
        with JoinClient(address=address) as client:
            reply = client.probe([[1, 2, 3], [2, 4]], [[2], [1, 3], [4, 5]])
            assert JoinClient.pairs(reply) == [(0, 0), (0, 1), (1, 0)]
            assert client.shutdown()
    finally:
        thread.join(timeout=30)
    assert not thread.is_alive()
    assert rc == [0]
