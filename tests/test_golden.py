"""Golden-file regression tests: bit-for-bit output pinning.

``tests/golden/`` holds a tiny handcrafted dataset — subset chains,
duplicate sets on both sides, empty sets, a universal set — plus the
expected join output in :func:`repro.relations.io.write_join_result`'s
canonical sorted ``"r_id s_id"`` format.  Every registry algorithm (and
the equality/superset extensions) must reproduce the expected file
byte-for-byte, so any behavioural drift — a lost pair, a changed id, a
format change — fails loudly with a diffable file.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.registry import available_algorithms, make_algorithm, prepare_index
from repro.extensions.equality import equality_join_on_index
from repro.extensions.set_index import PatriciaSetIndex
from repro.extensions.superset import superset_join_on_index
from repro.kernels import available_backends, use_backend
from repro.relations.io import read_relation, write_join_result

GOLDEN = Path(__file__).parent / "golden"


@pytest.fixture(params=available_backends())
def kernel_backend(request):
    """Pin the expected bytes under every available kernel backend."""
    with use_backend(request.param):
        yield request.param


@pytest.fixture(scope="module")
def golden_pair():
    r = read_relation(GOLDEN / "r.txt")
    s = read_relation(GOLDEN / "s.txt")
    return r, s


def _assert_bytes_match(pairs, expected_name: str, tmp_path) -> None:
    out = tmp_path / "actual.txt"
    write_join_result(pairs, out)
    expected = (GOLDEN / expected_name).read_bytes()
    assert out.read_bytes() == expected, (
        f"output drifted from tests/golden/{expected_name}"
    )


def test_fixture_exercises_edge_cases(golden_pair):
    """The dataset must keep covering the regression-prone shapes."""
    r, s = golden_pair
    r_sets = [rec.elements for rec in r]
    s_sets = [rec.elements for rec in s]
    assert frozenset() in r_sets and frozenset() in s_sets
    assert len(set(r_sets)) < len(r_sets), "R must contain duplicate sets"
    assert len(set(s_sets)) < len(s_sets), "S must contain duplicate sets"
    universe = frozenset().union(*s_sets)
    assert any(universe <= elems for elems in r_sets), (
        "R must contain a set covering S's whole domain"
    )


@pytest.mark.parametrize("name", available_algorithms())
def test_containment_join_golden(name, kernel_backend, golden_pair, tmp_path):
    r, s = golden_pair
    result = make_algorithm(name).join(r, s)
    assert result.stats.extras.get("kernel_backend") == kernel_backend
    _assert_bytes_match(result.pairs, "expected_containment.txt", tmp_path)


@pytest.mark.parametrize("name", available_algorithms())
def test_prepared_probe_golden(name, kernel_backend, golden_pair, tmp_path):
    r, s = golden_pair
    result = prepare_index(s, algorithm=name).probe_many(r)
    assert result.stats.extras.get("kernel_backend") == kernel_backend
    _assert_bytes_match(result.pairs, "expected_containment.txt", tmp_path)


def test_equality_join_golden(golden_pair, tmp_path):
    r, s = golden_pair
    result = equality_join_on_index(r, PatriciaSetIndex(s))
    _assert_bytes_match(result.pairs, "expected_equality.txt", tmp_path)


def test_superset_join_golden(golden_pair, tmp_path):
    r, s = golden_pair
    result = superset_join_on_index(r, PatriciaSetIndex(s))
    _assert_bytes_match(result.pairs, "expected_superset.txt", tmp_path)


def test_golden_matches_brute_force(golden_pair):
    """The expected file itself must equal the obvious oracle."""
    r, s = golden_pair
    oracle = sorted(
        (rr.rid, ss.rid) for rr in r for ss in s if rr.elements >= ss.elements
    )
    expected = [
        tuple(map(int, line.split()))
        for line in (GOLDEN / "expected_containment.txt").read_text().splitlines()
    ]
    assert expected == oracle
