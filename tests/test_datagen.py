"""Unit tests for distributions, synthetic generation and surrogates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.distributions import PoissonDist, UniformDist, ZipfDist, make_distribution
from repro.datagen.realworld import (
    SURROGATE_SPECS,
    make_surrogate,
    scaled_sizes,
    twitter_surrogate,
)
from repro.datagen.synthetic import SyntheticConfig, generate_pair, generate_relation
from repro.errors import DataGenError
from repro.relations.stats import compute_stats


class TestUniformDist:
    def test_range_respected(self):
        rng = np.random.default_rng(0)
        draws = UniformDist(3, 9).sample(rng, 2000)
        assert draws.min() >= 3 and draws.max() <= 9

    def test_mean(self):
        assert UniformDist(0, 10).mean == 5.0

    def test_invalid_range(self):
        with pytest.raises(DataGenError):
            UniformDist(5, 2)
        with pytest.raises(DataGenError):
            UniformDist(-1, 2)


class TestPoissonDist:
    def test_clipping(self):
        rng = np.random.default_rng(1)
        draws = PoissonDist(4.0, low=1, high=6).sample(rng, 2000)
        assert draws.min() >= 1 and draws.max() <= 6

    def test_mean_close_to_lambda(self):
        rng = np.random.default_rng(2)
        draws = PoissonDist(16.0).sample(rng, 5000)
        assert abs(draws.mean() - 16.0) < 0.5

    def test_invalid(self):
        with pytest.raises(DataGenError):
            PoissonDist(0)
        with pytest.raises(DataGenError):
            PoissonDist(3, low=5, high=2)


class TestZipfDist:
    def test_support(self):
        rng = np.random.default_rng(3)
        draws = ZipfDist(100, s=1.2).sample(rng, 3000)
        assert draws.min() >= 0 and draws.max() < 100

    def test_offset(self):
        rng = np.random.default_rng(4)
        draws = ZipfDist(10, s=1.0, offset=5).sample(rng, 500)
        assert draws.min() >= 5 and draws.max() < 15

    def test_rank_one_most_frequent(self):
        rng = np.random.default_rng(5)
        draws = ZipfDist(50, s=1.2).sample(rng, 10_000)
        counts = np.bincount(draws, minlength=50)
        assert counts[0] == counts.max()
        assert counts[0] > 4 * counts[10]

    def test_zero_skew_is_uniform(self):
        rng = np.random.default_rng(6)
        draws = ZipfDist(20, s=0.0).sample(rng, 20_000)
        counts = np.bincount(draws, minlength=20)
        assert counts.min() > 0.7 * counts.max()

    def test_mean_matches_empirical(self):
        dist = ZipfDist(30, s=1.0)
        rng = np.random.default_rng(7)
        draws = dist.sample(rng, 50_000)
        assert abs(draws.mean() - dist.mean) < 0.2

    def test_invalid(self):
        with pytest.raises(DataGenError):
            ZipfDist(0)
        with pytest.raises(DataGenError):
            ZipfDist(10, s=-1)


class TestMakeDistribution:
    def test_kinds(self):
        assert isinstance(make_distribution("uniform", mean=5, low=1, high=10), UniformDist)
        assert isinstance(make_distribution("poisson", mean=5, low=1, high=10), PoissonDist)
        assert isinstance(make_distribution("zipf", mean=5, low=1, high=10), ZipfDist)

    def test_unknown_kind(self):
        with pytest.raises(DataGenError):
            make_distribution("cauchy", mean=5, low=1, high=10)

    def test_uniform_targets_mean(self):
        dist = make_distribution("uniform", mean=8, low=1, high=100)
        assert abs(dist.mean - 8) <= 1.0


class TestSyntheticConfig:
    def test_validation(self):
        with pytest.raises(DataGenError):
            SyntheticConfig(size=-1, avg_cardinality=4, domain=10)
        with pytest.raises(DataGenError):
            SyntheticConfig(size=10, avg_cardinality=0, domain=10)
        with pytest.raises(DataGenError):
            SyntheticConfig(size=10, avg_cardinality=4, domain=0)
        with pytest.raises(DataGenError):
            SyntheticConfig(size=10, avg_cardinality=20, domain=10)

    def test_with_seed(self):
        cfg = SyntheticConfig(size=10, avg_cardinality=4, domain=64, seed=1)
        assert cfg.with_seed(2).seed == 2
        assert cfg.with_seed(2).size == cfg.size

    def test_label(self):
        cfg = SyntheticConfig(size=10, avg_cardinality=4, domain=64, name="x")
        assert cfg.label() == "x"
        cfg2 = SyntheticConfig(size=10, avg_cardinality=4, domain=64)
        assert "|R|=10" in cfg2.label()


class TestGenerateRelation:
    def test_size_and_determinism(self):
        cfg = SyntheticConfig(size=200, avg_cardinality=8, domain=512, seed=9)
        a = generate_relation(cfg)
        b = generate_relation(cfg)
        assert len(a) == 200
        assert a == b

    def test_different_seeds_differ(self):
        cfg = SyntheticConfig(size=100, avg_cardinality=8, domain=512, seed=9)
        assert generate_relation(cfg) != generate_relation(cfg.with_seed(10))

    def test_average_cardinality_close_to_target(self):
        cfg = SyntheticConfig(size=2000, avg_cardinality=16, domain=4096, seed=11)
        st = compute_stats(generate_relation(cfg))
        assert abs(st.avg_cardinality - 16) < 1.5

    def test_elements_within_domain(self):
        cfg = SyntheticConfig(size=300, avg_cardinality=8, domain=100, seed=12)
        rel = generate_relation(cfg)
        assert rel.max_element() < 100

    def test_cardinality_at_least_one(self):
        cfg = SyntheticConfig(size=300, avg_cardinality=2, domain=50, seed=13)
        assert compute_stats(generate_relation(cfg)).min_cardinality >= 1

    def test_zipf_cardinality_is_right_skewed(self):
        cfg = SyntheticConfig(size=1500, avg_cardinality=64, domain=512,
                              cardinality_dist="zipf", seed=14)
        st = compute_stats(generate_relation(cfg))
        assert st.median_cardinality < st.avg_cardinality

    def test_zipf_elements_skew_popularity(self):
        cfg = SyntheticConfig(size=800, avg_cardinality=6, domain=400,
                              element_dist="zipf", seed=15)
        rel = generate_relation(cfg)
        counts: dict[int, int] = {}
        for rec in rel:
            for e in rec.elements:
                counts[e] = counts.get(e, 0) + 1
        top = max(counts.values())
        assert top > 10 * (sum(counts.values()) / len(counts))

    def test_dense_sets_saturating_domain(self):
        cfg = SyntheticConfig(size=50, avg_cardinality=10, domain=10, seed=16)
        rel = generate_relation(cfg)
        assert all(rec.cardinality <= 10 for rec in rel)

    def test_generate_pair_independent_seeds(self):
        cfg = SyntheticConfig(size=50, avg_cardinality=4, domain=128, seed=17)
        r, s = generate_pair(cfg)
        assert r != s
        assert len(r) == len(s) == 50


class TestSurrogates:
    @pytest.mark.parametrize("name", list(SURROGATE_SPECS))
    def test_shapes_match_table3(self, name):
        spec = SURROGATE_SPECS[name]
        rel = make_surrogate(name, 800, seed=18)
        st = compute_stats(rel)
        assert st.size == 800
        assert st.min_cardinality >= spec.min_cardinality
        # Mean and median within 25% of the published shape.
        assert abs(st.avg_cardinality - spec.mean_cardinality) < 0.25 * spec.mean_cardinality
        assert abs(st.median_cardinality - spec.median_cardinality) <= max(
            2.0, 0.25 * spec.median_cardinality
        )

    def test_relative_ordering_of_cardinalities(self):
        """flickr < orkut < twitter < webbase in average cardinality."""
        means = [
            compute_stats(make_surrogate(n, 300, seed=19)).avg_cardinality
            for n in ("flickr", "orkut", "twitter", "webbase")
        ]
        assert means == sorted(means)

    def test_twitter_domain_is_small(self):
        """Table III: twitter has d = 1318 despite medium cardinality."""
        st = compute_stats(make_surrogate("twitter", 500, seed=20))
        assert st.domain_cardinality < 10 * st.avg_cardinality

    def test_unknown_dataset(self):
        with pytest.raises(DataGenError):
            make_surrogate("netflix", 100)

    def test_invalid_size(self):
        with pytest.raises(DataGenError):
            make_surrogate("flickr", 0)

    def test_determinism(self):
        assert make_surrogate("flickr", 100, seed=3) == make_surrogate("flickr", 100, seed=3)

    def test_scaled_sizes_preserve_ratios(self):
        sizes = scaled_sizes(169)
        assert sizes["webbase"] == 169
        assert sizes["flickr"] == 3550
        assert sizes["orkut"] == 1850
        assert sizes["twitter"] == 370

    def test_twitter_from_graph(self):
        rel = twitter_surrogate(size=60, from_graph=True, seed=21)
        st = compute_stats(rel)
        assert st.size > 0
        assert st.min_cardinality >= 1
