"""Fault-injection tests for the resilient parallel join.

Every recovery path of :class:`ResilientParallelJoin` — retry, pool
re-creation after hard worker death, per-chunk timeout with in-process
fallback, corrupt-result rejection — is exercised deterministically via
the :mod:`repro.testing.faults` wrappers.  Faults travel with the
prepared index into the workers; their triggers are flag files, so they
fire an exact number of times across any mix of processes.

No test sleeps longer than 2 s and none asserts on wall-clock timings.

Set ``REPRO_START_METHOD=fork|spawn`` to pin the pool start method (CI
runs the suite once per method).
"""

from __future__ import annotations

import os

import pytest

from repro.core.registry import set_containment_join
from repro.errors import (
    AlgorithmError,
    InjectedFaultError,
    JoinTimeoutError,
    ReproError,
    RetryExhaustedError,
    WorkerError,
)
from repro.exec.resilient import (
    RESILIENCE_EXTRAS,
    ResilientParallelJoin,
    RetryPolicy,
    resilient_parallel_join,
)
from repro.testing.faults import (
    CorruptingIndex,
    CrashingIndex,
    DyingIndex,
    FaultTrigger,
    SleepingIndex,
)
from tests.conftest import oracle_pairs, random_relation

#: Optional start-method override so CI can drill both fork and spawn.
START_METHOD = os.environ.get("REPRO_START_METHOD") or None


def make_join(**kwargs) -> ResilientParallelJoin:
    kwargs.setdefault("algorithm", "ptsj")
    kwargs.setdefault("start_method", START_METHOD)
    return ResilientParallelJoin(**kwargs)


@pytest.fixture(scope="module")
def rs_pair():
    r = random_relation(60, 6, 40, seed=901)
    s = random_relation(60, 4, 40, seed=902)
    return r, s


@pytest.fixture(scope="module")
def sequential_pairs(rs_pair):
    """The fault-free ground truth, in the sequential join's pair order."""
    r, s = rs_pair
    return set_containment_join(r, s, algorithm="ptsj").pairs


class TestRetryPolicy:
    def test_deterministic_exponential_schedule(self):
        policy = RetryPolicy(max_attempts=4, backoff_seconds=0.1,
                             backoff_multiplier=2.0, backoff_cap_seconds=1.0)
        assert policy.schedule() == [0.1, 0.2, 0.4]
        # Jitter-free: the schedule is reproducible.
        assert policy.schedule() == policy.schedule()

    def test_cap_bounds_every_delay(self):
        policy = RetryPolicy(max_attempts=10, backoff_seconds=0.5,
                             backoff_multiplier=3.0, backoff_cap_seconds=0.8)
        assert all(d <= 0.8 for d in policy.schedule())

    def test_zero_backoff_never_sleeps(self):
        policy = RetryPolicy(max_attempts=5)
        assert policy.schedule() == [0.0] * 4

    @pytest.mark.parametrize("bad", [
        dict(max_attempts=0),
        dict(backoff_seconds=-1.0),
        dict(backoff_multiplier=0.5),
        dict(backoff_cap_seconds=-0.1),
    ])
    def test_invalid_configuration(self, bad):
        with pytest.raises(AlgorithmError):
            RetryPolicy(**bad)

    def test_invalid_timeout(self):
        with pytest.raises(AlgorithmError):
            make_join(timeout_seconds=0.0)


class TestCleanRuns:
    """Without faults, the resilient executor is ParallelJoin plus counters."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_matches_sequential_bit_identical(self, rs_pair, sequential_pairs, workers):
        r, s = rs_pair
        result = make_join(workers=workers, chunks=4).join(r, s)
        assert result.pairs == sequential_pairs

    def test_extras_present_and_zero(self, rs_pair):
        r, s = rs_pair
        result = make_join(workers=2, chunks=4).join(r, s)
        for key in RESILIENCE_EXTRAS:
            assert result.stats.extras[key] == 0

    def test_one_shot_helper(self, rs_pair, sequential_pairs):
        r, s = rs_pair
        result = resilient_parallel_join(r, s, workers=1, start_method=START_METHOD)
        assert result.pairs == sequential_pairs

    def test_empty_probe_relation(self, rs_pair):
        from repro.relations.relation import Relation

        _, s = rs_pair
        assert len(make_join(workers=1).join(Relation([]), s)) == 0


class TestCrashRecovery:
    """An injected worker exception is retried per the policy."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_crash_on_first_attempt_retried(self, rs_pair, sequential_pairs,
                                            tmp_path, workers):
        r, s = rs_pair
        trigger = FaultTrigger(tmp_path, times=1)
        result = make_join(
            workers=workers, chunks=4,
            index_transform=lambda idx: CrashingIndex(idx, trigger),
        ).join(r, s)
        assert result.pairs == sequential_pairs
        assert result.stats.extras["retries"] >= 1
        assert result.stats.extras["fallback_chunks"] == 0
        assert trigger.fired() == 1

    def test_every_chunk_crashing_once_still_completes(self, rs_pair,
                                                       sequential_pairs, tmp_path):
        r, s = rs_pair
        trigger = FaultTrigger(tmp_path, times=4)
        result = make_join(
            workers=2, chunks=4,
            index_transform=lambda idx: CrashingIndex(idx, trigger),
        ).join(r, s)
        assert result.pairs == sequential_pairs
        assert result.stats.extras["retries"] >= 4

    def test_exhausted_retries_fall_back_in_process(self, rs_pair,
                                                    sequential_pairs, tmp_path):
        r, s = rs_pair
        # More firings than the executor has attempts: every pool attempt
        # crashes, so each chunk must finish via the pristine fallback.
        trigger = FaultTrigger(tmp_path, times=100)
        result = make_join(
            workers=1, chunks=2,
            retry_policy=RetryPolicy(max_attempts=2),
            index_transform=lambda idx: CrashingIndex(idx, trigger),
        ).join(r, s)
        assert result.pairs == sequential_pairs
        assert result.stats.extras["fallback_chunks"] == 2
        assert result.stats.extras["retries"] == 2

    def test_no_fallback_raises_retry_exhausted(self, rs_pair, tmp_path):
        r, s = rs_pair
        trigger = FaultTrigger(tmp_path, times=100)
        join = make_join(
            workers=1, chunks=1, fallback=False,
            retry_policy=RetryPolicy(max_attempts=3),
            index_transform=lambda idx: CrashingIndex(idx, trigger),
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            join.join(r, s)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value, WorkerError)
        assert isinstance(excinfo.value.__cause__, InjectedFaultError)


class TestWorkerDeath:
    """A worker dying hard breaks the pool; the pool is re-created."""

    def test_dead_worker_restarts_pool(self, rs_pair, sequential_pairs, tmp_path):
        r, s = rs_pair
        trigger = FaultTrigger(tmp_path, times=1)
        result = make_join(
            workers=2, chunks=4,
            index_transform=lambda idx: DyingIndex(idx, trigger),
        ).join(r, s)
        assert result.pairs == sequential_pairs
        assert result.stats.extras["pool_restarts"] >= 1
        assert result.stats.extras["retries"] >= 1

    def test_dying_index_never_kills_the_parent(self, rs_pair, tmp_path):
        r, s = rs_pair
        trigger = FaultTrigger(tmp_path, times=100)
        # workers=1 probes in the parent; DyingIndex must stay inert there.
        result = make_join(
            workers=1, chunks=2,
            index_transform=lambda idx: DyingIndex(idx, trigger),
        ).join(r, s)
        assert result.pair_set() == oracle_pairs(r, s)
        assert trigger.fired() == 0


class TestTimeouts:
    """A chunk over budget completes via the in-process fallback."""

    def test_slow_chunk_falls_back(self, rs_pair, sequential_pairs, tmp_path):
        r, s = rs_pair
        trigger = FaultTrigger(tmp_path, times=1)
        result = make_join(
            workers=2, chunks=4, timeout_seconds=0.25,
            index_transform=lambda idx: SleepingIndex(idx, trigger,
                                                      sleep_seconds=1.5),
        ).join(r, s)
        assert result.pairs == sequential_pairs
        assert result.stats.extras["timeouts"] >= 1
        assert result.stats.extras["fallback_chunks"] >= 1

    def test_timeout_without_fallback_raises(self, rs_pair, tmp_path):
        r, s = rs_pair
        trigger = FaultTrigger(tmp_path, times=1)
        join = make_join(
            workers=2, chunks=2, timeout_seconds=0.25, fallback=False,
            index_transform=lambda idx: SleepingIndex(idx, trigger,
                                                      sleep_seconds=1.5),
        )
        with pytest.raises(JoinTimeoutError):
            join.join(r, s)

    def test_generous_timeout_never_fires(self, rs_pair, sequential_pairs):
        r, s = rs_pair
        result = make_join(workers=2, chunks=2, timeout_seconds=60.0).join(r, s)
        assert result.pairs == sequential_pairs
        assert result.stats.extras["timeouts"] == 0
        assert result.stats.extras["fallback_chunks"] == 0


class TestCorruptResults:
    """A worker returning alien pairs is caught by validation and retried."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_corrupt_chunk_retried(self, rs_pair, sequential_pairs, tmp_path, workers):
        r, s = rs_pair
        trigger = FaultTrigger(tmp_path, times=1)
        result = make_join(
            workers=workers, chunks=4,
            index_transform=lambda idx: CorruptingIndex(idx, trigger),
        ).join(r, s)
        assert result.pairs == sequential_pairs
        assert result.stats.extras["corrupt_chunks"] >= 1
        assert result.stats.extras["retries"] >= 1

    def test_validation_disabled_lets_corruption_through(self, rs_pair, tmp_path):
        r, s = rs_pair
        trigger = FaultTrigger(tmp_path, times=1)
        result = make_join(
            workers=1, chunks=2, validate_results=False,
            index_transform=lambda idx: CorruptingIndex(idx, trigger, alien_id=-7),
        ).join(r, s)
        assert (-7, -7) in result.pairs
        assert result.stats.extras["corrupt_chunks"] == 0


class TestFaultTrigger:
    def test_fires_exactly_n_times(self, tmp_path):
        trigger = FaultTrigger(tmp_path, times=3)
        assert [trigger.fire() for _ in range(5)] == [True, True, True, False, False]
        assert trigger.fired() == 3

    def test_reset_re_arms(self, tmp_path):
        trigger = FaultTrigger(tmp_path, times=1)
        assert trigger.fire()
        assert not trigger.fire()
        trigger.reset()
        assert trigger.fire()

    def test_independent_names_do_not_interfere(self, tmp_path):
        a = FaultTrigger(tmp_path, name="a", times=1)
        b = FaultTrigger(tmp_path, name="b", times=1)
        assert a.fire()
        assert b.fire()


class TestFaultyIndexTransparency:
    """A spent fault wrapper behaves exactly like the index it wraps."""

    def test_spent_wrapper_is_transparent(self, rs_pair, tmp_path):
        from repro.core.registry import prepare_index

        r, s = rs_pair
        trigger = FaultTrigger(tmp_path, times=0)
        index = prepare_index(s, algorithm="ptsj")
        wrapped = CrashingIndex(index, trigger)
        assert wrapped.probe_many(r).pair_set() == oracle_pairs(r, s)
        assert wrapped.algorithm == index.algorithm
        assert wrapped.signature_bits == index.signature_bits

    def test_wrapper_streams_single_probes(self, rs_pair, tmp_path):
        from repro.core.registry import prepare_index

        r, s = rs_pair
        wrapped = CrashingIndex(prepare_index(s, algorithm="ptsj"),
                                FaultTrigger(tmp_path, times=0))
        record = r.records[0]
        expected = {ss.rid for ss in s if record.elements >= ss.elements}
        assert set(wrapped.probe(record)) == expected


class TestErrorHierarchy:
    def test_new_errors_under_repro_umbrella(self):
        for exc in (WorkerError, JoinTimeoutError, RetryExhaustedError,
                    InjectedFaultError):
            assert issubclass(exc, ReproError)
        assert issubclass(JoinTimeoutError, WorkerError)
        assert issubclass(RetryExhaustedError, WorkerError)

    def test_retry_exhausted_carries_attempts(self):
        assert RetryExhaustedError("boom", attempts=7).attempts == 7
