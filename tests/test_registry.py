"""Unit tests for the algorithm registry and top-level API."""

from __future__ import annotations

import pytest

from repro.core.base import JoinResult
from repro.core.registry import (
    available_algorithms,
    choose_algorithm_name,
    make_algorithm,
    set_containment_join,
)
from repro.errors import AlgorithmError
from repro.relations.relation import Relation
from tests.conftest import TABLE1_EXPECTED


class TestRegistry:
    def test_available_algorithms(self):
        names = available_algorithms()
        assert set(names) >= {"ptsj", "pretti+", "shj", "pretti", "tsj", "nested-loop"}

    @pytest.mark.parametrize("name", ["ptsj", "pretti+", "shj", "pretti", "tsj", "nested-loop"])
    def test_make_each_algorithm(self, name):
        algo = make_algorithm(name)
        assert algo.name == name

    @pytest.mark.parametrize(
        "alias,canonical",
        [("PTSJ", "ptsj"), ("PrettiPlus", "pretti+"), ("pretti_plus", "pretti+"),
         ("NL", "nested-loop"), ("nested_loop", "nested-loop")],
    )
    def test_aliases(self, alias, canonical):
        assert make_algorithm(alias).name == canonical

    def test_unknown_name_raises(self):
        with pytest.raises(AlgorithmError, match="unknown algorithm"):
            make_algorithm("quantum-join")

    def test_kwargs_forwarded(self):
        algo = make_algorithm("ptsj", bits=99)
        assert algo.requested_bits == 99


class TestTopLevelJoin:
    def test_table1_with_every_algorithm(self, table1_profiles, table1_preferences):
        for name in available_algorithms():
            result = set_containment_join(table1_profiles, table1_preferences, algorithm=name)
            assert isinstance(result, JoinResult)
            assert result.pair_set() == TABLE1_EXPECTED, name

    def test_auto_picks_pretti_plus_for_small_sets(self):
        s = Relation.from_sets([{1, 2}] * 10)
        r = Relation.from_sets([{1, 2, 3}])
        result = set_containment_join(r, s, algorithm="auto")
        assert result.stats.algorithm == "pretti+"

    def test_auto_picks_ptsj_for_big_sets(self):
        s = Relation.from_sets([set(range(100))] * 10)
        r = Relation.from_sets([set(range(120))])
        result = set_containment_join(r, s, algorithm="auto")
        assert result.stats.algorithm == "ptsj"

    def test_choose_algorithm_name(self):
        assert choose_algorithm_name(Relation.from_sets([{1}])) == "pretti+"
        assert choose_algorithm_name(Relation.from_sets([set(range(64))])) == "ptsj"

    def test_unknown_algorithm_raises(self, table1_profiles, table1_preferences):
        with pytest.raises(AlgorithmError):
            set_containment_join(table1_profiles, table1_preferences, algorithm="nope")


class TestJoinResultAPI:
    def test_iteration_and_len(self, table1_profiles, table1_preferences):
        result = set_containment_join(table1_profiles, table1_preferences, algorithm="ptsj")
        assert len(result) == 3
        assert set(iter(result)) == TABLE1_EXPECTED

    def test_sorted_pairs(self, table1_profiles, table1_preferences):
        result = set_containment_join(table1_profiles, table1_preferences, algorithm="ptsj")
        assert result.sorted_pairs() == sorted(TABLE1_EXPECTED)

    def test_stats_pairs_synced(self, table1_profiles, table1_preferences):
        result = set_containment_join(table1_profiles, table1_preferences, algorithm="shj")
        assert result.stats.pairs == len(result)

    def test_total_seconds_and_build_fraction(self, table1_profiles, table1_preferences):
        stats = set_containment_join(table1_profiles, table1_preferences, algorithm="pretti").stats
        assert stats.total_seconds >= stats.build_seconds
        assert 0.0 <= stats.build_fraction <= 1.0
