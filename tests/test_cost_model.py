"""Unit tests for the Sec. III-C analytical cost model."""

from __future__ import annotations

import pytest

from repro.errors import SignatureError
from repro.signatures.cost_model import (
    estimate_ptsj_cost,
    expected_candidates,
    expected_candidates_uniform_cardinality,
    expected_trie_height,
    expected_visited_nodes,
    query_cost_upper_bound,
)


class TestExpectedCandidates:
    def test_formula_matches_hand_computation(self):
        # N = |S| * (c_q / b)^c_d = 1000 * (8/64)^4
        assert expected_candidates(1000, 4, 8, 64) == pytest.approx(1000 * (8 / 64) ** 4)

    def test_shrinks_with_signature_length(self):
        values = [expected_candidates(10_000, 8, 8, b) for b in (64, 128, 256, 512)]
        assert values == sorted(values, reverse=True)

    def test_grows_with_query_cardinality(self):
        """Higher-cardinality queries have more results (paper Sec. III-C1)."""
        values = [expected_candidates(10_000, 8, cq, 256) for cq in (4, 8, 16, 32)]
        assert values == sorted(values)

    def test_shrinks_with_data_cardinality(self):
        """Low-cardinality data tend to produce more results."""
        values = [expected_candidates(10_000, cd, 8, 256) for cd in (2, 4, 8)]
        assert values == sorted(values, reverse=True)

    def test_probability_capped_at_one(self):
        assert expected_candidates(100, 3, 1000, 8) == 100

    def test_invalid_inputs(self):
        with pytest.raises(SignatureError):
            expected_candidates(0, 4, 8, 64)
        with pytest.raises(SignatureError):
            expected_candidates(100, 4, 8, 0)

    def test_uniform_cardinality_refinement_is_larger(self):
        """Averaging over c_d in [1, cd] includes easier (smaller) sets, so
        the estimate exceeds the fixed-cardinality one at cd."""
        fixed = expected_candidates(1000, 8, 8, 128)
        uniform = expected_candidates_uniform_cardinality(1000, 8, 8, 128)
        assert uniform > fixed

    def test_uniform_cardinality_saturated(self):
        assert expected_candidates_uniform_cardinality(100, 4, 999, 8) == 100


class TestVisitedNodes:
    def test_grows_with_relation_size(self):
        values = [expected_visited_nodes(s, 16, 256) for s in (2 ** 10, 2 ** 14, 2 ** 18)]
        assert values == sorted(values)

    def test_grows_with_cardinality(self):
        values = [expected_visited_nodes(2 ** 14, c, 1024) for c in (8, 16, 32, 64)]
        assert values == sorted(values)

    def test_shrinks_with_signature_length(self):
        values = [expected_visited_nodes(2 ** 14, 16, b) for b in (64, 256, 1024)]
        assert values == sorted(values, reverse=True)

    def test_trie_height_is_log(self):
        assert expected_trie_height(2 ** 10) == pytest.approx(11.0)


class TestQueryCost:
    def test_scales_linearly_in_r(self):
        one = query_cost_upper_bound(1000, 2 ** 12, 16, 256)
        two = query_cost_upper_bound(2000, 2 ** 12, 16, 256)
        assert two == pytest.approx(2 * one)

    def test_invalid_inputs(self):
        with pytest.raises(SignatureError):
            query_cost_upper_bound(0, 100, 16, 256)


class TestFullEstimate:
    def test_components_positive(self):
        est = estimate_ptsj_cost(2 ** 12, 2 ** 12, 16, 256)
        assert est.create_cost > 0
        assert est.query_cost > 0
        assert est.compare_cost >= 0
        assert est.total == pytest.approx(
            est.create_cost + est.query_cost + est.compare_cost
        )

    def test_interior_minimum_in_b(self):
        """The total cost has a sweet spot in b (the Sec. III-D argument):
        too-short signatures blow up set comparisons, too-long ones blow up
        signature comparisons."""
        lengths = [32, 64, 128, 256, 512, 1024, 4096, 16384]
        totals = [estimate_ptsj_cost(2 ** 14, 2 ** 14, 16, b).total for b in lengths]
        best = totals.index(min(totals))
        assert 0 < best < len(lengths) - 1

    def test_sweet_spot_near_16c(self):
        """The model's optimum should land within the paper's 8c..64c band."""
        c = 16
        lengths = [c * ratio for ratio in (1, 2, 4, 8, 16, 32, 64, 128, 256)]
        totals = [estimate_ptsj_cost(2 ** 14, 2 ** 14, c, b).total for b in lengths]
        best_ratio = lengths[totals.index(min(totals))] // c
        assert 8 <= best_ratio <= 64
